//! # waku-rln — workspace facade
//!
//! Umbrella crate for the reproduction of *Privacy-Preserving
//! Spam-Protected Gossip-Based Routing* (ICDCS 2022): re-exports every
//! layer under one roof so examples and downstream users can depend on a
//! single crate.
//!
//! * [`crypto`] — field, Poseidon, SHA-256, Shamir, Merkle trees
//! * [`zksnark`] — R1CS, the RLN circuit, the simulated SNARK backend
//! * [`rln`] — identities, groups, signals, slashing math
//! * [`model`] — the pure model-checked protocol core (`step`, trace
//!   fuzzer, corpus format)
//! * [`ethsim`] — the simulated chain and membership contract
//! * [`netsim`] — the deterministic discrete-event network simulator
//! * [`gossipsub`] — GossipSub v1.1 with peer scoring
//! * [`relay`] — WAKU-RELAY (anonymous pub/sub)
//! * [`core`] — WAKU-RLN-RELAY itself (the paper's contribution)
//! * [`baselines`] — PoW and peer-scoring comparators + attack library
//! * [`scenarios`] — the declarative scenario engine (thousand-node
//!   adversarial simulations, `simctl`)
//!
//! # Example
//!
//! ```
//! use waku_rln::core::{Testbed, TestbedConfig};
//!
//! let mut testbed = Testbed::build(TestbedConfig {
//!     n_peers: 5,
//!     tree_depth: 10,
//!     degree: 3,
//!     ..Default::default()
//! });
//! testbed.run(8_000, 1_000);
//! testbed.publish(0, b"hi").unwrap();
//! testbed.run(15_000, 1_000);
//! assert!(testbed.delivery_count(b"hi", 0) >= 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use waku_rln_relay as core;
pub use wakurln_baselines as baselines;
pub use wakurln_crypto as crypto;
pub use wakurln_ethsim as ethsim;
pub use wakurln_gossipsub as gossipsub;
pub use wakurln_model as model;
pub use wakurln_netsim as netsim;
pub use wakurln_relay as relay;
pub use wakurln_rln as rln;
pub use wakurln_scenarios as scenarios;
pub use wakurln_zksnark as zksnark;

// ---------------------------------------------------------------------------
// Documentation smoke: every fenced Rust block in the workspace-level
// markdown runs under `cargo test --doc`, so the prose cannot drift from
// the API (the CI docs job builds these alongside `rustdoc -D warnings`,
// which already fails on broken intra-doc links).
// ---------------------------------------------------------------------------

/// Compiled copy of `README.md` (doctest-only).
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// Compiled copy of `PERF.md` (doctest-only).
#[cfg(doctest)]
#[doc = include_str!("../PERF.md")]
pub struct PerfDoctests;

/// Compiled copy of `docs/ARCHITECTURE.md` (doctest-only).
#[cfg(doctest)]
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub struct ArchitectureDoctests;

/// Compiled copy of `docs/SCENARIOS.md` (doctest-only).
#[cfg(doctest)]
#[doc = include_str!("../docs/SCENARIOS.md")]
pub struct ScenariosDoctests;

/// Compiled copy of `docs/MODEL.md` (doctest-only).
#[cfg(doctest)]
#[doc = include_str!("../docs/MODEL.md")]
pub struct ModelDoctests;
