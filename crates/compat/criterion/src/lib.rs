//! Offline compatibility shim for the subset of the `criterion` API this
//! workspace uses (see `crates/compat/README.md`).
//!
//! Each benchmark runs a short warm-up, then samples wall-clock time under
//! a bounded budget and prints the mean `ns/iter` (plus derived
//! throughput when configured). This keeps `cargo bench` targets building
//! and producing honest numbers without registry access; it makes no
//! attempt at criterion's statistical machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so callers can `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n-- group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 20,
            measure_budget: MEASURE_BUDGET,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchId>, mut f: F) {
        run_one("bench", &id.into().0, 20, MEASURE_BUDGET, None, &mut f);
    }
}

/// Throughput annotation for a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark id, optionally parameterized.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> BenchId {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> BenchId {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> BenchId {
        BenchId(id.0)
    }
}

/// Parameterized benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: &str, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
    measure_budget: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget for each benchmark's measurement phase.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measure_budget = budget;
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchId>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.group,
            &id.into().0,
            self.sample_size,
            self.measure_budget,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark with an input handed through to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.group,
            &id.into().0,
            self.sample_size,
            self.measure_budget,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &str,
    sample_size: usize,
    measure_budget: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
        sample_size,
        measure_budget,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{group}/{id}: no iterations recorded");
        return;
    }
    let ns_per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 * 1e9 / ns_per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.0} B/s)", n as f64 * 1e9 / ns_per_iter)
        }
        None => String::new(),
    };
    println!("{group}/{id}: {ns_per_iter:.1} ns/iter{rate}");
}

/// Per-benchmark timing harness.
pub struct Bencher {
    total: Duration,
    iters: u64,
    sample_size: usize,
    measure_budget: Duration,
}

/// Default wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(500);

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warm-up: one untimed run
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 && start.elapsed() >= self.measure_budget {
                break;
            }
            if iters >= self.sample_size as u64 * 64 {
                break;
            }
            if start.elapsed() >= self.measure_budget * 4 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
