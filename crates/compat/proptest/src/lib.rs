//! Offline compatibility shim for the subset of the `proptest` API this
//! workspace uses (see `crates/compat/README.md`).
//!
//! Properties run with a deterministic per-test RNG derived from the test
//! function's name, honoring `ProptestConfig::with_cases`. There is no
//! shrinking: a failing case panics with its case index so it can be
//! reproduced (the RNG stream is a pure function of the test name).

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic RNG keyed by the test name.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<A>(core::marker::PhantomData<A>);

/// Strategy producing arbitrary values of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(core::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<A: Arbitrary, const N: usize> Arbitrary for [A; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| A::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

/// String strategy from a regex-like pattern.
///
/// The shim does not implement regex generation; patterns are
/// approximated by random printable ASCII strings of length 0..=40, which
/// covers the `".{0,40}"`-style patterns used in this workspace.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = rng.gen_range(0usize..=40);
        (0..len)
            .map(|_| char::from(rng.gen_range(0x20u8..0x7f)))
            .collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S>(S);

    /// Generates `None` a quarter of the time, `Some` otherwise (matching
    /// real proptest's default weighting).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests; see the crate docs for semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    let __run = |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                        $body
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(&mut __rng)),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            __case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_expected_shapes() {
        let mut rng = crate::TestRng::deterministic("shapes");
        for _ in 0..100 {
            let v = crate::Strategy::sample(&crate::collection::vec(any::<u8>(), 1..4), &mut rng);
            assert!((1..4).contains(&v.len()));
            let r = crate::Strategy::sample(&(3u64..9), &mut rng);
            assert!((3..9).contains(&r));
            let (a, _b) = crate::Strategy::sample(&(0u64..4, any::<u64>()), &mut rng);
            assert!(a < 4);
            let s = crate::Strategy::sample(&".{0,40}", &mut rng);
            assert!(s.len() <= 40);
            let mapped = crate::Strategy::sample(&any::<u64>().prop_map(|x| x % 2), &mut rng);
            assert!(mapped < 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_property(a in any::<u64>(), b in 0u64..10) {
            prop_assert!(b < 10);
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, 10);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use rand::RngCore;
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
