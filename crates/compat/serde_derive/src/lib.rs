//! No-op `Serialize`/`Deserialize` derives.
//!
//! Nothing in this workspace serializes through serde (all wire formats
//! are hand-written codecs), so the derives only need to make
//! `#[derive(Serialize, Deserialize)]` attributes compile. They expand to
//! nothing; the trait surface lives in the sibling `serde` shim.

use proc_macro::TokenStream;

/// Expands to nothing (see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
