//! Offline compatibility shim for the subset of the `rand` 0.8 API this
//! workspace uses (see `crates/compat/README.md`).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast, and good enough for simulations and
//! tests (it is **not** a cryptographic RNG; neither is the real `StdRng`
//! contractually, which is why the workspace never relies on it for key
//! material security).

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A random number generator core: the minimal interface everything else
/// builds on.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Types sampleable uniformly from an `RngCore` (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges sampleable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw from `[0, bound)` by rejection of the biased tail.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferrable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p >= 1.0 {
            return true;
        }
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            StdRng { s }
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
