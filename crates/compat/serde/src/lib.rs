//! Offline compatibility shim for the serde trait surface this workspace
//! uses (see `crates/compat/README.md`).
//!
//! The workspace's wire formats are hand-written codecs; serde appears
//! only as `#[derive(Serialize, Deserialize)]` markers and one manual
//! byte-oriented impl for the field element. This shim provides exactly
//! that surface: the derives expand to nothing, and the traits below give
//! the manual impls something real to implement against.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A serializable value.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format serializer (byte-oriented subset).
pub trait Serializer: Sized {
    /// Success value.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serializes a raw byte string.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// Serialization-side error support.
pub mod ser {
    use core::fmt;

    /// Errors a serializer can produce.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A deserializable value.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data-format deserializer (byte-oriented subset).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Requests a byte string, driving the given visitor.
    fn deserialize_bytes<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

impl<'de> Deserialize<'de> for u8 {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        // No deserializer implementation exists in this workspace; this
        // impl only satisfies `SeqAccess::next_element::<u8>` bounds.
        Err(<D::Error as de::Error>::custom("unsupported in serde shim"))
    }
}

/// Deserialization-side support types.
pub mod de {
    use super::Deserialize;
    use core::fmt;

    /// Errors a deserializer can produce.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: fmt::Display>(msg: T) -> Self;

        /// Reports a sequence/byte-string of unexpected length.
        fn invalid_length(len: usize, expected: &dyn Expected) -> Self {
            Self::custom(format_args!(
                "invalid length {len}, expected {}",
                ExpectedDisplay(expected)
            ))
        }
    }

    struct ExpectedDisplay<'a>(&'a dyn Expected);

    impl fmt::Display for ExpectedDisplay<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            Expected::fmt(self.0, f)
        }
    }

    /// Something that can describe what input it expected (visitors).
    pub trait Expected {
        /// Writes the expectation, e.g. `"32 little-endian bytes"`.
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
    }

    impl<'de, T: Visitor<'de>> Expected for T {
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.expecting(formatter)
        }
    }

    /// Drives value construction during deserialization.
    pub trait Visitor<'de>: Sized {
        /// The value being built.
        type Value;

        /// Describes the expected input for error messages.
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Visits a raw byte string.
        fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
            Err(E::custom("unexpected byte string"))
        }

        /// Visits a sequence of elements.
        fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
            Err(<A::Error as Error>::custom("unexpected sequence"))
        }
    }

    /// Access to the elements of a sequence being deserialized.
    pub trait SeqAccess<'de> {
        /// Error type.
        type Error: Error;

        /// Returns the next element, or `None` at the end.
        fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
    }
}
