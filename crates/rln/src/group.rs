//! Local (off-chain) view of the RLN membership group.

use crate::identity::Identity;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{
    AppendDelta, FullMerkleTree, MerkleError, MerkleProof, UpdateDelta, EMPTY_LEAF,
};

/// Errors from group bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupError {
    /// Underlying tree error.
    Merkle(MerkleError),
    /// The commitment is already registered.
    AlreadyRegistered(Fr),
    /// No member at the given index.
    NoSuchMember(u64),
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::Merkle(e) => write!(f, "merkle error: {e}"),
            GroupError::AlreadyRegistered(pk) => write!(f, "commitment {pk} already registered"),
            GroupError::NoSuchMember(i) => write!(f, "no member at index {i}"),
        }
    }
}

impl std::error::Error for GroupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GroupError::Merkle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MerkleError> for GroupError {
    fn from(e: MerkleError) -> GroupError {
        GroupError::Merkle(e)
    }
}

/// A full-node view of the membership group: the complete Merkle tree plus
/// a commitment→index map.
///
/// Per §III the on-chain contract stores only the *ordered list* of
/// commitments; each peer replays registration/deletion events into a
/// structure like this one. (Light peers use
/// [`wakurln_crypto::merkle::SyncedPathTree`] instead.)
///
/// # Examples
///
/// ```
/// use wakurln_rln::{Identity, RlnGroup};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut group = RlnGroup::new(20)?;
/// let id = Identity::random(&mut rng);
/// let index = group.register(id.commitment())?;
/// let proof = group.membership_proof(index)?;
/// assert!(proof.verify(group.root(), id.commitment()));
/// # Ok::<(), wakurln_rln::GroupError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RlnGroup {
    tree: FullMerkleTree,
    index_of: HashMap<[u8; 32], u64>,
}

impl RlnGroup {
    /// Creates an empty group over a tree of the given depth.
    ///
    /// # Errors
    ///
    /// Propagates [`MerkleError::UnsupportedDepth`].
    pub fn new(depth: usize) -> Result<RlnGroup, GroupError> {
        Ok(RlnGroup {
            tree: FullMerkleTree::new(depth)?,
            index_of: HashMap::new(),
        })
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.tree.depth()
    }

    /// Current membership root.
    pub fn root(&self) -> Fr {
        self.tree.root()
    }

    /// Number of registered (non-deleted) members.
    pub fn member_count(&self) -> usize {
        self.index_of.len()
    }

    /// Registers a commitment at the next free index.
    ///
    /// # Errors
    ///
    /// * [`GroupError::AlreadyRegistered`] for duplicate commitments —
    ///   mirroring the contract, which rejects double registration.
    /// * [`GroupError::Merkle`] when the tree is full.
    pub fn register(&mut self, commitment: Fr) -> Result<u64, GroupError> {
        let key = commitment.to_bytes_le();
        if self.index_of.contains_key(&key) {
            return Err(GroupError::AlreadyRegistered(commitment));
        }
        let index = self.tree.append(commitment)?;
        self.index_of.insert(key, index);
        Ok(index)
    }

    /// Registers a burst of commitments in one batched tree update
    /// (`O(n + depth)` hashes via
    /// [`FullMerkleTree::append_batch`] instead of `O(n · depth)` for
    /// per-member [`RlnGroup::register`]). Returns the index range
    /// assigned to the batch.
    ///
    /// The whole batch is validated up front and applied atomically:
    /// duplicates (against the group *or* within the batch) and
    /// over-capacity batches leave the group untouched.
    ///
    /// # Errors
    ///
    /// * [`GroupError::AlreadyRegistered`] for the first duplicate found.
    /// * [`GroupError::Merkle`] when the batch exceeds capacity.
    pub fn register_batch(
        &mut self,
        commitments: &[Fr],
    ) -> Result<std::ops::Range<u64>, GroupError> {
        self.check_batch(commitments)?;
        let start = self.tree.append_batch(commitments)?;
        for (offset, commitment) in commitments.iter().enumerate() {
            self.index_of
                .insert(commitment.to_bytes_le(), start + offset as u64);
        }
        Ok(start..start + commitments.len() as u64)
    }

    /// [`RlnGroup::register_batch`], additionally capturing the
    /// [`AppendDelta`] light members apply without re-hashing (see
    /// [`wakurln_crypto::merkle::MemberView`]). Same atomicity.
    ///
    /// # Errors
    ///
    /// As [`RlnGroup::register_batch`].
    pub fn register_batch_with_delta(
        &mut self,
        commitments: &[Fr],
    ) -> Result<(std::ops::Range<u64>, AppendDelta), GroupError> {
        self.check_batch(commitments)?;
        let delta = self.tree.append_batch_with_delta(commitments)?;
        let start = delta.start;
        for (offset, commitment) in commitments.iter().enumerate() {
            self.index_of
                .insert(commitment.to_bytes_le(), start + offset as u64);
        }
        Ok((start..start + commitments.len() as u64, delta))
    }

    fn check_batch(&self, commitments: &[Fr]) -> Result<(), GroupError> {
        let mut batch_keys = Vec::with_capacity(commitments.len());
        for commitment in commitments {
            let key = commitment.to_bytes_le();
            if self.index_of.contains_key(&key) {
                return Err(GroupError::AlreadyRegistered(*commitment));
            }
            batch_keys.push(key);
        }
        batch_keys.sort_unstable();
        // lint:allow(panic-path, reason = "windows(2) yields exactly-two-element slices")
        if batch_keys.windows(2).any(|w| w[0] == w[1]) {
            let dup = commitments
                .iter()
                .enumerate()
                .find(|(i, c)| commitments[..*i].contains(c))
                .map(|(_, c)| *c)
                // lint:allow(panic-path, reason = "guarded: the windows(2) scan above proved a duplicate exists")
                .expect("duplicate exists");
            return Err(GroupError::AlreadyRegistered(dup));
        }
        Ok(())
    }

    /// [`RlnGroup::remove`], additionally capturing the [`UpdateDelta`]
    /// light members apply to follow the deletion.
    ///
    /// # Errors
    ///
    /// As [`RlnGroup::remove`].
    pub fn remove_with_delta(&mut self, index: u64) -> Result<(Fr, UpdateDelta), GroupError> {
        let leaf = self.tree.leaf(index)?;
        if leaf == EMPTY_LEAF {
            return Err(GroupError::NoSuchMember(index));
        }
        let delta = self.tree.set_with_delta(index, EMPTY_LEAF)?;
        self.index_of.remove(&leaf.to_bytes_le());
        Ok((leaf, delta))
    }

    /// Removes the member at `index` (slashing), zeroing its leaf.
    ///
    /// Returns the removed commitment.
    ///
    /// # Errors
    ///
    /// [`GroupError::NoSuchMember`] if the slot is empty or out of range.
    pub fn remove(&mut self, index: u64) -> Result<Fr, GroupError> {
        let leaf = self.tree.leaf(index)?;
        if leaf == EMPTY_LEAF {
            return Err(GroupError::NoSuchMember(index));
        }
        self.tree.remove(index)?;
        self.index_of.remove(&leaf.to_bytes_le());
        Ok(leaf)
    }

    /// Removes a member identified by its *secret key* — the slashing
    /// entry point: anyone who learns `sk` (via double-signaling) can
    /// delete the member.
    ///
    /// Returns the index of the removed member.
    ///
    /// # Errors
    ///
    /// [`GroupError::NoSuchMember`] if `H(sk)` is not registered.
    pub fn remove_by_secret(&mut self, sk: Fr) -> Result<u64, GroupError> {
        let commitment = Identity::from_secret(sk).commitment();
        let index = self
            .index_of
            .get(&commitment.to_bytes_le())
            .copied()
            .ok_or(GroupError::NoSuchMember(u64::MAX))?;
        self.remove(index)?;
        Ok(index)
    }

    /// Index of a commitment, if registered.
    pub fn index_of(&self, commitment: Fr) -> Option<u64> {
        self.index_of.get(&commitment.to_bytes_le()).copied()
    }

    /// Whether a commitment is currently registered.
    pub fn contains(&self, commitment: Fr) -> bool {
        self.index_of.contains_key(&commitment.to_bytes_le())
    }

    /// Authentication path for the member at `index`.
    ///
    /// # Errors
    ///
    /// [`GroupError::Merkle`] for out-of-range indices.
    pub fn membership_proof(&self, index: u64) -> Result<MerkleProof, GroupError> {
        Ok(self.tree.proof(index)?)
    }

    /// The leaf value at `index`.
    ///
    /// # Errors
    ///
    /// [`GroupError::Merkle`] for out-of-range indices.
    pub fn leaf(&self, index: u64) -> Result<Fr, GroupError> {
        Ok(self.tree.leaf(index)?)
    }

    /// Read access to the underlying tree (e.g. for storage accounting).
    pub fn tree(&self) -> &FullMerkleTree {
        &self.tree
    }
}

/// A membership event as emitted by the registry contract and consumed by
/// synchronizing peers (§III "Group Synchronization").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MembershipEvent {
    /// A new member registered with this commitment (appended at `index`).
    Registered {
        /// Assigned leaf index.
        index: u64,
        /// The registered commitment.
        commitment: Fr,
    },
    /// The member at `index` was slashed and removed. Carries the witness
    /// path so light peers can apply the deletion (see
    /// [`wakurln_crypto::merkle::SyncedPathTree`]).
    Slashed {
        /// Leaf index of the removed member.
        index: u64,
        /// The removed commitment.
        commitment: Fr,
        /// Authentication path of the removed leaf at removal time.
        witness: MerkleProof,
    },
}

impl RlnGroup {
    /// Applies a contract event to this local view.
    ///
    /// # Errors
    ///
    /// Propagates registration/removal errors; also fails if a
    /// `Registered` event's index disagrees with the local append order
    /// (events must be applied in order).
    pub fn apply_event(&mut self, event: &MembershipEvent) -> Result<(), GroupError> {
        match event {
            MembershipEvent::Registered { index, commitment } => {
                let assigned = self.register(*commitment)?;
                if assigned != *index {
                    // roll back to keep the view consistent
                    self.remove(assigned)?;
                    return Err(GroupError::Merkle(MerkleError::StaleWitness));
                }
                Ok(())
            }
            MembershipEvent::Slashed { index, .. } => {
                self.remove(*index)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn register_and_prove() {
        let mut g = RlnGroup::new(8).unwrap();
        let id = Identity::from_secret(Fr::from_u64(9));
        let idx = g.register(id.commitment()).unwrap();
        assert_eq!(idx, 0);
        assert!(g.contains(id.commitment()));
        assert_eq!(g.index_of(id.commitment()), Some(0));
        let proof = g.membership_proof(idx).unwrap();
        assert!(proof.verify(g.root(), id.commitment()));
    }

    #[test]
    fn register_batch_matches_sequential_and_is_atomic() {
        let mut rng = StdRng::seed_from_u64(9);
        let ids: Vec<Identity> = (0..17).map(|_| Identity::random(&mut rng)).collect();
        let commitments: Vec<Fr> = ids.iter().map(Identity::commitment).collect();

        let mut sequential = RlnGroup::new(8).unwrap();
        for c in &commitments {
            sequential.register(*c).unwrap();
        }
        let mut batched = RlnGroup::new(8).unwrap();
        let range = batched.register_batch(&commitments).unwrap();
        assert_eq!(range, 0..17);
        assert_eq!(batched.root(), sequential.root());
        assert_eq!(batched.member_count(), 17);
        for (i, c) in commitments.iter().enumerate() {
            assert_eq!(batched.index_of(*c), Some(i as u64));
        }

        // a batch containing an already-registered commitment is rejected
        // without mutating the group
        let root_before = batched.root();
        let fresh = Identity::random(&mut rng).commitment();
        let err = batched
            .register_batch(&[fresh, commitments[0]])
            .unwrap_err();
        assert!(matches!(err, GroupError::AlreadyRegistered(_)));
        assert_eq!(batched.root(), root_before);
        assert!(!batched.contains(fresh));

        // as is a batch with an internal duplicate
        let twin = Identity::random(&mut rng).commitment();
        let err = batched.register_batch(&[twin, twin]).unwrap_err();
        assert_eq!(err, GroupError::AlreadyRegistered(twin));
        assert!(!batched.contains(twin));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut g = RlnGroup::new(8).unwrap();
        let id = Identity::from_secret(Fr::from_u64(9));
        g.register(id.commitment()).unwrap();
        assert!(matches!(
            g.register(id.commitment()),
            Err(GroupError::AlreadyRegistered(_))
        ));
    }

    #[test]
    fn remove_by_secret_slashes_the_right_member() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = RlnGroup::new(8).unwrap();
        let ids: Vec<Identity> = (0..5).map(|_| Identity::random(&mut rng)).collect();
        for id in &ids {
            g.register(id.commitment()).unwrap();
        }
        let removed = g.remove_by_secret(ids[2].secret()).unwrap();
        assert_eq!(removed, 2);
        assert!(!g.contains(ids[2].commitment()));
        assert_eq!(g.member_count(), 4);
        // other members unaffected
        let proof = g.membership_proof(3).unwrap();
        assert!(proof.verify(g.root(), ids[3].commitment()));
    }

    #[test]
    fn remove_unknown_secret_fails() {
        let mut g = RlnGroup::new(8).unwrap();
        assert!(matches!(
            g.remove_by_secret(Fr::from_u64(1)),
            Err(GroupError::NoSuchMember(_))
        ));
    }

    #[test]
    fn double_remove_fails() {
        let mut g = RlnGroup::new(8).unwrap();
        let id = Identity::from_secret(Fr::from_u64(9));
        let idx = g.register(id.commitment()).unwrap();
        g.remove(idx).unwrap();
        assert_eq!(g.remove(idx), Err(GroupError::NoSuchMember(idx)));
    }

    #[test]
    fn event_replay_matches_direct_mutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let ids: Vec<Identity> = (0..4).map(|_| Identity::random(&mut rng)).collect();

        let mut source = RlnGroup::new(8).unwrap();
        let mut replica = RlnGroup::new(8).unwrap();
        let mut events = Vec::new();
        for id in &ids {
            let index = source.register(id.commitment()).unwrap();
            events.push(MembershipEvent::Registered {
                index,
                commitment: id.commitment(),
            });
        }
        let witness = source.membership_proof(1).unwrap();
        source.remove(1).unwrap();
        events.push(MembershipEvent::Slashed {
            index: 1,
            commitment: ids[1].commitment(),
            witness,
        });

        for e in &events {
            replica.apply_event(e).unwrap();
        }
        assert_eq!(replica.root(), source.root());
        assert_eq!(replica.member_count(), source.member_count());
    }

    #[test]
    fn out_of_order_event_rejected() {
        let mut g = RlnGroup::new(8).unwrap();
        let id = Identity::from_secret(Fr::from_u64(1));
        let err = g
            .apply_event(&MembershipEvent::Registered {
                index: 5,
                commitment: id.commitment(),
            })
            .unwrap_err();
        assert!(matches!(err, GroupError::Merkle(MerkleError::StaleWitness)));
        // and the failed apply did not leak state
        assert_eq!(g.member_count(), 0);
    }
}
