//! Shared copy-on-write handle over the canonical membership group.
//!
//! A simulation hosts **one** canonical group tree, no matter how many
//! relays run in it: each registration burst is hashed exactly once at
//! the canonical [`RlnGroup`], yielding the broadcast
//! [`AppendDelta`] / [`UpdateDelta`] that per-node
//! [`MemberView`](wakurln_crypto::merkle::MemberView)s apply with pure
//! lookups. That replaces per-node tree replay (`n` members × `O(n)`
//! hashes) with `O(n + depth)` hashes total — the `n²·depth → n·depth`
//! reduction that makes 100k-node scenarios tractable.
//!
//! [`SharedGroup`] is the handle: [`Clone`] is an `Arc` bump — an `O(1)`
//! immutable snapshot (what soak checkpoints and harness clones take) —
//! while mutation goes through `Arc::make_mut`, copying the tree only
//! when a snapshot is actually outstanding.

use crate::group::{GroupError, RlnGroup};
use std::ops::Range;
use std::sync::Arc;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{AppendDelta, MerkleProof, UpdateDelta};

/// Copy-on-write handle to the one canonical membership tree of a
/// simulation.
///
/// Reads delegate to the shared [`RlnGroup`]; mutators capture the
/// delta that light members replay. Cloning snapshots the group in
/// `O(1)`; the first mutation after a snapshot pays one tree copy.
///
/// # Examples
///
/// ```
/// use wakurln_rln::{Identity, SharedGroup};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut group = SharedGroup::new(12)?;
/// let ids: Vec<Identity> = (0..4).map(|_| Identity::random(&mut rng)).collect();
/// let commitments: Vec<_> = ids.iter().map(Identity::commitment).collect();
///
/// let snapshot = group.clone(); // O(1)
/// let (range, delta) = group.register_batch(&commitments)?;
/// assert_eq!(range, 0..4);
/// assert_eq!(delta.leaves(), &commitments[..]);
/// assert_eq!(snapshot.member_count(), 0); // unaffected
/// # Ok::<(), wakurln_rln::GroupError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SharedGroup {
    inner: Arc<RlnGroup>,
}

impl SharedGroup {
    /// Creates an empty shared group over a tree of the given depth.
    ///
    /// # Errors
    ///
    /// Propagates [`wakurln_crypto::merkle::MerkleError::UnsupportedDepth`].
    pub fn new(depth: usize) -> Result<SharedGroup, GroupError> {
        Ok(SharedGroup {
            inner: Arc::new(RlnGroup::new(depth)?),
        })
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.inner.depth()
    }

    /// Current membership root.
    pub fn root(&self) -> Fr {
        self.inner.root()
    }

    /// Number of registered (non-deleted) members.
    pub fn member_count(&self) -> usize {
        self.inner.member_count()
    }

    /// Index of a commitment, if registered.
    pub fn index_of(&self, commitment: Fr) -> Option<u64> {
        self.inner.index_of(commitment)
    }

    /// Whether a commitment is currently registered.
    pub fn contains(&self, commitment: Fr) -> bool {
        self.inner.contains(commitment)
    }

    /// Authentication path for the member at `index` (slashing evidence).
    ///
    /// # Errors
    ///
    /// [`GroupError::Merkle`] for out-of-range indices.
    pub fn membership_proof(&self, index: u64) -> Result<MerkleProof, GroupError> {
        self.inner.membership_proof(index)
    }

    /// The leaf value at `index`.
    ///
    /// # Errors
    ///
    /// [`GroupError::Merkle`] for out-of-range indices.
    pub fn leaf(&self, index: u64) -> Result<Fr, GroupError> {
        self.inner.leaf(index)
    }

    /// Index the next registration will be assigned.
    pub fn next_index(&self) -> u64 {
        self.inner.tree().next_index()
    }

    /// Read access to the canonical group (storage accounting etc.).
    pub fn group(&self) -> &RlnGroup {
        &self.inner
    }

    /// Whether two handles share the same underlying allocation (i.e.
    /// no copy-on-write has happened between them).
    pub fn ptr_eq(&self, other: &SharedGroup) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Registers a burst of commitments once at the canonical tree,
    /// returning the assigned index range and the broadcast
    /// [`AppendDelta`]. Atomic: errors leave the group untouched.
    ///
    /// # Errors
    ///
    /// As [`RlnGroup::register_batch`].
    pub fn register_batch(
        &mut self,
        commitments: &[Fr],
    ) -> Result<(Range<u64>, AppendDelta), GroupError> {
        Arc::make_mut(&mut self.inner).register_batch_with_delta(commitments)
    }

    /// Removes the member at `index` (slashing), returning the removed
    /// commitment and the broadcast [`UpdateDelta`].
    ///
    /// # Errors
    ///
    /// As [`RlnGroup::remove`].
    pub fn remove(&mut self, index: u64) -> Result<(Fr, UpdateDelta), GroupError> {
        Arc::make_mut(&mut self.inner).remove_with_delta(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Identity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wakurln_crypto::merkle::MemberView;

    fn commitments(n: usize, seed: u64) -> Vec<Fr> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Identity::random(&mut rng).commitment())
            .collect()
    }

    #[test]
    fn snapshot_is_o1_and_isolated_from_later_writes() {
        let mut g = SharedGroup::new(10).unwrap();
        let cs = commitments(6, 1);
        g.register_batch(&cs[..3]).unwrap();
        let snapshot = g.clone();
        assert!(g.ptr_eq(&snapshot), "clone must share the allocation");
        let root_before = snapshot.root();

        g.register_batch(&cs[3..]).unwrap();
        assert!(!g.ptr_eq(&snapshot), "write must have copied");
        assert_eq!(snapshot.root(), root_before);
        assert_eq!(snapshot.member_count(), 3);
        assert_eq!(g.member_count(), 6);
    }

    #[test]
    fn sole_handle_mutates_in_place() {
        let mut g = SharedGroup::new(10).unwrap();
        let probe = g.clone();
        drop(probe);
        let before = Arc::as_ptr(&g.inner);
        g.register_batch(&commitments(2, 2)).unwrap();
        assert_eq!(
            Arc::as_ptr(&g.inner),
            before,
            "no outstanding snapshot ⇒ no copy"
        );
    }

    #[test]
    fn deltas_feed_member_views_to_the_canonical_root() {
        let mut g = SharedGroup::new(10).unwrap();
        let cs = commitments(9, 3);
        let (range, d1) = g.register_batch(&cs[..4]).unwrap();
        assert_eq!(range, 0..4);

        let mut view = MemberView::new(10).unwrap();
        view.apply_append(&d1, Some(2)).unwrap();
        assert_eq!(view.root(), g.root());

        let (_, d2) = g.register_batch(&cs[4..]).unwrap();
        view.apply_append(&d2, None).unwrap();
        let proof = view.own_proof().unwrap();
        assert!(proof.verify(g.root(), cs[2]));

        // slash member 2: the view revokes itself
        let (removed, d3) = g.remove(2).unwrap();
        assert_eq!(removed, cs[2]);
        view.apply_update(&d3).unwrap();
        assert!(view.own_proof().is_none());
        assert_eq!(view.root(), g.root());
        assert!(!g.contains(cs[2]));
    }

    #[test]
    fn failed_batch_leaves_group_and_snapshots_untouched() {
        let mut g = SharedGroup::new(10).unwrap();
        let cs = commitments(3, 4);
        g.register_batch(&cs).unwrap();
        let snapshot = g.clone();
        let err = g.register_batch(&[cs[1]]).unwrap_err();
        assert!(matches!(err, GroupError::AlreadyRegistered(_)));
        assert_eq!(g.root(), snapshot.root());
        assert_eq!(g.member_count(), 3);
    }
}
