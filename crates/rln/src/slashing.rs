//! Spam detection and secret reconstruction (the slashing math).
//!
//! When a routing peer sees two signals with the same `(∅, φ)` pair but
//! different share points, the member double-signaled: combining the two
//! shares reconstructs `sk`, which can then be submitted to the membership
//! contract to delete the member and claim the reward (§III "Routing and
//! Slashing").

use crate::identity::Identity;
use crate::signal::Signal;
use serde::{Deserialize, Serialize};
use wakurln_crypto::field::Fr;
use wakurln_crypto::shamir;

/// The result of comparing two signals that share an internal nullifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DoubleSignalOutcome {
    /// The signals are byte-identical duplicates (normal gossip behaviour,
    /// not spam).
    Duplicate,
    /// Same evaluation point with a different `y`: inconsistent shares.
    /// This cannot be produced by a proof-carrying signal pair for one
    /// `sk` (the circuit pins `y` to `x`), so it indicates forged input.
    InconsistentShares,
    /// Genuine double-signaling: the reconstructed secret key.
    SecretRecovered(Fr),
}

/// Evidence of a slashing, ready to submit to the membership contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlashingEvidence {
    /// The reconstructed secret key.
    pub revealed_secret: Fr,
    /// The commitment `H(sk)` it corresponds to (what the contract looks
    /// up in its registry).
    pub commitment: Fr,
    /// The epoch in which the double-signaling happened.
    pub external_nullifier: Fr,
}

/// Attempts secret reconstruction from two signals with equal internal
/// nullifiers.
///
/// # Panics
///
/// Panics if the two signals do not share `(external, internal)`
/// nullifiers — callers detect the collision via the nullifier map first.
pub fn analyze_double_signal(a: &Signal, b: &Signal) -> DoubleSignalOutcome {
    assert_eq!(
        (a.external_nullifier, a.internal_nullifier),
        (b.external_nullifier, b.internal_nullifier),
        "signals must collide on both nullifiers"
    );
    if a.share == b.share {
        return DoubleSignalOutcome::Duplicate;
    }
    match shamir::recover_line_secret(&a.share, &b.share) {
        Some(sk) => DoubleSignalOutcome::SecretRecovered(sk),
        None => DoubleSignalOutcome::InconsistentShares,
    }
}

/// Builds contract-ready evidence from a recovered secret, verifying that
/// the reconstruction is internally consistent: the secret must re-derive
/// the observed internal nullifier for this epoch.
///
/// Returns `None` if the secret does not explain the nullifier (which
/// would mean the colliding signals were forged — impossible for signals
/// whose proofs verified, asserted by tests).
pub fn build_evidence(sk: Fr, reference: &Signal) -> Option<SlashingEvidence> {
    let identity = Identity::from_secret(sk);
    if identity.internal_nullifier_for(reference.external_nullifier) != reference.internal_nullifier
    {
        return None;
    }
    Some(SlashingEvidence {
        revealed_secret: sk,
        commitment: identity.commitment(),
        external_nullifier: reference.external_nullifier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::RlnGroup;
    use crate::signal::create_signal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wakurln_zksnark::{RlnCircuit, SimSnark};

    fn two_signals(same_message: bool) -> (Signal, Signal, Identity) {
        let mut rng = StdRng::seed_from_u64(17);
        let depth = 10;
        let (pk, _vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let mut group = RlnGroup::new(depth).unwrap();
        let id = Identity::random(&mut rng);
        let index = group.register(id.commitment()).unwrap();
        let proof = group.membership_proof(index).unwrap();
        let epoch = Fr::from_u64(55);
        let s1 =
            create_signal(&id, &proof, group.root(), &pk, epoch, b"msg-one", &mut rng).unwrap();
        let m2: &[u8] = if same_message { b"msg-one" } else { b"msg-two" };
        let s2 = create_signal(&id, &proof, group.root(), &pk, epoch, m2, &mut rng).unwrap();
        (s1, s2, id)
    }

    #[test]
    fn double_signal_recovers_secret() {
        let (s1, s2, id) = two_signals(false);
        match analyze_double_signal(&s1, &s2) {
            DoubleSignalOutcome::SecretRecovered(sk) => assert_eq!(sk, id.secret()),
            other => panic!("expected recovery, got {other:?}"),
        }
    }

    #[test]
    fn identical_message_is_duplicate_not_spam() {
        let (s1, s2, _) = two_signals(true);
        assert_eq!(
            analyze_double_signal(&s1, &s2),
            DoubleSignalOutcome::Duplicate
        );
    }

    #[test]
    fn evidence_is_contract_ready() {
        let (s1, s2, id) = two_signals(false);
        let sk = match analyze_double_signal(&s1, &s2) {
            DoubleSignalOutcome::SecretRecovered(sk) => sk,
            other => panic!("expected recovery, got {other:?}"),
        };
        let ev = build_evidence(sk, &s1).unwrap();
        assert_eq!(ev.commitment, id.commitment());
        assert_eq!(ev.revealed_secret, id.secret());
        assert_eq!(ev.external_nullifier, s1.external_nullifier);
    }

    #[test]
    fn evidence_rejects_wrong_secret() {
        let (s1, _, id) = two_signals(false);
        assert!(build_evidence(id.secret() + Fr::ONE, &s1).is_none());
    }

    #[test]
    #[should_panic(expected = "signals must collide")]
    fn analyze_requires_nullifier_collision() {
        let mut rng = StdRng::seed_from_u64(19);
        let depth = 10;
        let (pk, _vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let mut group = RlnGroup::new(depth).unwrap();
        let id = Identity::random(&mut rng);
        let index = group.register(id.commitment()).unwrap();
        let proof = group.membership_proof(index).unwrap();
        let s1 = create_signal(
            &id,
            &proof,
            group.root(),
            &pk,
            Fr::from_u64(1),
            b"a",
            &mut rng,
        )
        .unwrap();
        let s2 = create_signal(
            &id,
            &proof,
            group.root(),
            &pk,
            Fr::from_u64(2),
            b"b",
            &mut rng,
        )
        .unwrap();
        let _ = analyze_double_signal(&s1, &s2);
    }

    #[test]
    fn honest_single_message_per_epoch_leaks_nothing_reconstructible() {
        // one signal per epoch: shares across different epochs lie on
        // different lines, so combining them does NOT yield the secret
        let mut rng = StdRng::seed_from_u64(23);
        let depth = 10;
        let (pk, _vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let mut group = RlnGroup::new(depth).unwrap();
        let id = Identity::random(&mut rng);
        let index = group.register(id.commitment()).unwrap();
        let proof = group.membership_proof(index).unwrap();
        let s1 = create_signal(
            &id,
            &proof,
            group.root(),
            &pk,
            Fr::from_u64(1),
            b"a",
            &mut rng,
        )
        .unwrap();
        let s2 = create_signal(
            &id,
            &proof,
            group.root(),
            &pk,
            Fr::from_u64(2),
            b"b",
            &mut rng,
        )
        .unwrap();
        let wrong = shamir::recover_line_secret(&s1.share, &s2.share).unwrap();
        assert_ne!(wrong, id.secret());
    }
}
