//! RLN member identities.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use wakurln_crypto::field::Fr;
use wakurln_crypto::poseidon;

/// An RLN identity: the secret key `sk` and its derived public key
/// (identity commitment) `pk = H(sk)`.
///
/// The paper (§II): "The group of authorized users is represented by a
/// Merkle tree called membership tree whose leaves are members public keys
/// pk. […] pks are cryptographic hash of sks."
///
/// # Examples
///
/// ```
/// use wakurln_rln::Identity;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let id = Identity::random(&mut rng);
/// assert_eq!(id.commitment(), Identity::from_secret(id.secret()).commitment());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Identity {
    sk: Fr,
    pk: Fr,
}

impl Identity {
    /// Samples a fresh identity.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Identity {
        Identity::from_secret(Fr::random(rng))
    }

    /// Rebuilds an identity from a known secret key.
    pub fn from_secret(sk: Fr) -> Identity {
        Identity {
            sk,
            pk: poseidon::hash1(sk),
        }
    }

    /// The secret key. Handle with care: revealing it (or double-signaling,
    /// which leaks it) makes the member slashable.
    pub fn secret(&self) -> Fr {
        self.sk
    }

    /// The public identity commitment `pk = H(sk)` — the membership-tree
    /// leaf and the value registered on the contract.
    pub fn commitment(&self) -> Fr {
        self.pk
    }

    /// The epoch-bound Shamir slope `a1 = H(sk, external_nullifier)`.
    pub fn slope_for(&self, external_nullifier: Fr) -> Fr {
        poseidon::hash2(self.sk, external_nullifier)
    }

    /// The internal nullifier `φ = H(H(sk, ∅))` for an external nullifier.
    pub fn internal_nullifier_for(&self, external_nullifier: Fr) -> Fr {
        poseidon::hash1(self.slope_for(external_nullifier))
    }

    /// Serialized secret-key size in bytes (the paper's §IV: "Each peer
    /// persists a 32B public and secret keys").
    pub const SECRET_BYTES: usize = 32;
    /// Serialized public-key size in bytes.
    pub const PUBLIC_BYTES: usize = 32;
}

impl std::fmt::Debug for Identity {
    /// Deliberately omits the secret key.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Identity")
            .field("pk", &self.pk)
            .field("sk", &"<redacted>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn commitment_is_poseidon_of_secret() {
        let id = Identity::from_secret(Fr::from_u64(5));
        assert_eq!(id.commitment(), poseidon::hash1(Fr::from_u64(5)));
    }

    #[test]
    fn random_identities_are_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Identity::random(&mut rng);
        let b = Identity::random(&mut rng);
        assert_ne!(a.commitment(), b.commitment());
        assert_ne!(a.secret(), b.secret());
    }

    #[test]
    fn nullifier_changes_per_epoch_but_not_per_message() {
        let id = Identity::from_secret(Fr::from_u64(7));
        let n1 = id.internal_nullifier_for(Fr::from_u64(100));
        let n2 = id.internal_nullifier_for(Fr::from_u64(100));
        let n3 = id.internal_nullifier_for(Fr::from_u64(101));
        assert_eq!(n1, n2);
        assert_ne!(n1, n3);
    }

    #[test]
    fn nullifier_differs_between_identities() {
        let a = Identity::from_secret(Fr::from_u64(1));
        let b = Identity::from_secret(Fr::from_u64(2));
        assert_ne!(
            a.internal_nullifier_for(Fr::from_u64(5)),
            b.internal_nullifier_for(Fr::from_u64(5))
        );
    }

    #[test]
    fn debug_redacts_secret() {
        let id = Identity::from_secret(Fr::from_u64(5));
        let s = format!("{id:?}");
        assert!(s.contains("<redacted>"));
        assert!(!s.contains(&format!("{}", Fr::from_u64(5))));
    }

    #[test]
    fn key_sizes_match_paper() {
        let id = Identity::from_secret(Fr::from_u64(5));
        assert_eq!(id.secret().to_bytes_le().len(), Identity::SECRET_BYTES);
        assert_eq!(id.commitment().to_bytes_le().len(), Identity::PUBLIC_BYTES);
    }
}
