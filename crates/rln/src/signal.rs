//! RLN signals: creation and stateless verification.
//!
//! A signal is the tuple `(m, ∅, φ, [sk], π)` from the paper's §II: the
//! message, the external nullifier (epoch), the internal nullifier, one
//! Shamir share of the sender's secret key, and the zkSNARK proof that all
//! of it is well-formed with respect to the membership root.

use crate::identity::Identity;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::MerkleProof;
use wakurln_crypto::poseidon;
use wakurln_crypto::shamir::Share;
use wakurln_zksnark::{
    Proof, ProveError, ProvingKey, RlnCircuit, RlnPublicInputs, RlnWitness, SimSnark, VerifyingKey,
};

/// A complete RLN signal, ready to be wrapped in a routing-layer message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    /// The application message `m`.
    pub message: Vec<u8>,
    /// The external nullifier `∅` (the epoch, as a field element).
    pub external_nullifier: Fr,
    /// The internal nullifier `φ = H(H(sk, ∅))`.
    pub internal_nullifier: Fr,
    /// The disclosed Shamir share `[sk] = (x, y)`.
    pub share: Share,
    /// The membership root the proof was generated against.
    pub root: Fr,
    /// The zkSNARK proof `π`.
    pub proof: Proof,
}

impl Signal {
    /// Reassembles the public-input vector this signal's proof is bound to.
    pub fn public_inputs(&self) -> RlnPublicInputs {
        RlnPublicInputs {
            root: self.root,
            external_nullifier: self.external_nullifier,
            x: self.share.x,
            y: self.share.y,
            internal_nullifier: self.internal_nullifier,
        }
    }

    /// Serialized wire overhead of the RLN fields on top of the raw
    /// message (nullifiers, share, root, proof) — the per-message cost the
    /// paper's "light computational overhead" claim is about.
    pub fn overhead_bytes(&self) -> usize {
        32  // external nullifier
            + 32 // internal nullifier
            + 64 // share (x, y)
            + 32 // root
            + self.proof.size_bytes()
    }
}

/// Outcome of stateless signal verification (proof + integrity checks);
/// the stateful epoch/nullifier-map checks live in the routing layer
/// (`waku-rln-relay`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalValidity {
    /// Proof verifies and the share matches the message hash.
    Valid,
    /// The share's evaluation point does not equal `H(m)` — the sender
    /// lied about which message the share covers.
    MessageMismatch,
    /// The zkSNARK proof failed verification.
    InvalidProof,
}

/// Creates a signal for `message` in `epoch` (as field element), proving
/// membership of `identity` under the tree root embedded in
/// `membership_proof`.
///
/// # Errors
///
/// Propagates [`ProveError`] when the witness is inconsistent (wrong
/// depth, stale path, non-member).
pub fn create_signal<R: RngCore + ?Sized>(
    identity: &Identity,
    membership_proof: &MerkleProof,
    root: Fr,
    proving_key: &ProvingKey,
    external_nullifier: Fr,
    message: &[u8],
    rng: &mut R,
) -> Result<Signal, ProveError> {
    let x = poseidon::hash_bytes_to_field(message);
    let (public, _a1) = RlnCircuit::derive_public(identity.secret(), root, external_nullifier, x);
    let witness = RlnWitness::new(identity.secret(), membership_proof);
    let proof = SimSnark::prove(proving_key, &public, &witness, rng)?;
    Ok(Signal {
        message: message.to_vec(),
        external_nullifier,
        internal_nullifier: public.internal_nullifier,
        share: Share {
            x: public.x,
            y: public.y,
        },
        root,
        proof,
    })
}

/// Statelessly verifies a signal against an accepted membership root.
///
/// Checks, in order: the share evaluation point is really `H(m)` (binding
/// the share to the routed message), then the zkSNARK proof. Epoch
/// freshness and double-signaling detection are the routing layer's job.
pub fn verify_signal(
    verifying_key: &VerifyingKey,
    expected_root: Fr,
    signal: &Signal,
) -> SignalValidity {
    if signal.share.x != poseidon::hash_bytes_to_field(&signal.message) {
        return SignalValidity::MessageMismatch;
    }
    if signal.root != expected_root {
        return SignalValidity::InvalidProof;
    }
    if !SimSnark::verify(verifying_key, &signal.public_inputs(), &signal.proof) {
        return SignalValidity::InvalidProof;
    }
    SignalValidity::Valid
}

/// Statelessly verifies a batch of signals against one accepted root,
/// fanning zkSNARK verification out across worker threads (with the
/// `parallel` feature; inline otherwise). Returns per-signal validity in
/// input order — equivalent to mapping [`verify_signal`].
pub fn verify_signal_batch(
    verifying_key: &VerifyingKey,
    expected_root: Fr,
    signals: &[&Signal],
) -> Vec<SignalValidity> {
    wakurln_zksnark::parallel::par_map(signals, 4, |signal| {
        verify_signal(verifying_key, expected_root, signal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::RlnGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        group: RlnGroup,
        id: Identity,
        index: u64,
        pk: ProvingKey,
        vk: VerifyingKey,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(11);
        let depth = 10;
        let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let mut group = RlnGroup::new(depth).unwrap();
        let id = Identity::random(&mut rng);
        group
            .register(Identity::random(&mut rng).commitment())
            .unwrap();
        let index = group.register(id.commitment()).unwrap();
        Fixture {
            group,
            id,
            index,
            pk,
            vk,
            rng,
        }
    }

    fn make_signal(f: &mut Fixture, epoch: u64, msg: &[u8]) -> Signal {
        let proof = f.group.membership_proof(f.index).unwrap();
        create_signal(
            &f.id,
            &proof,
            f.group.root(),
            &f.pk,
            Fr::from_u64(epoch),
            msg,
            &mut f.rng,
        )
        .unwrap()
    }

    #[test]
    fn valid_signal_verifies() {
        let mut f = fixture();
        let sig = make_signal(&mut f, 1, b"hello");
        assert_eq!(
            verify_signal(&f.vk, f.group.root(), &sig),
            SignalValidity::Valid
        );
    }

    #[test]
    fn tampered_message_detected() {
        let mut f = fixture();
        let mut sig = make_signal(&mut f, 1, b"hello");
        sig.message = b"hijacked".to_vec();
        assert_eq!(
            verify_signal(&f.vk, f.group.root(), &sig),
            SignalValidity::MessageMismatch
        );
    }

    #[test]
    fn tampered_nullifier_detected() {
        let mut f = fixture();
        let mut sig = make_signal(&mut f, 1, b"hello");
        sig.internal_nullifier += Fr::ONE;
        assert_eq!(
            verify_signal(&f.vk, f.group.root(), &sig),
            SignalValidity::InvalidProof
        );
    }

    #[test]
    fn tampered_share_detected() {
        let mut f = fixture();
        let mut sig = make_signal(&mut f, 1, b"hello");
        sig.share.y += Fr::ONE;
        assert_eq!(
            verify_signal(&f.vk, f.group.root(), &sig),
            SignalValidity::InvalidProof
        );
    }

    #[test]
    fn wrong_root_detected() {
        let mut f = fixture();
        let sig = make_signal(&mut f, 1, b"hello");
        // group moves on: new member registers
        let newcomer = Identity::random(&mut f.rng);
        f.group.register(newcomer.commitment()).unwrap();
        assert_eq!(
            verify_signal(&f.vk, f.group.root(), &sig),
            SignalValidity::InvalidProof
        );
    }

    #[test]
    fn non_member_cannot_create() {
        let mut f = fixture();
        let outsider = Identity::from_secret(Fr::from_u64(31337));
        let someone_elses_path = f.group.membership_proof(f.index).unwrap();
        let err = create_signal(
            &outsider,
            &someone_elses_path,
            f.group.root(),
            &f.pk,
            Fr::from_u64(1),
            b"spam",
            &mut f.rng,
        )
        .unwrap_err();
        assert!(matches!(err, ProveError::Unsatisfied(_)));
    }

    #[test]
    fn two_messages_same_epoch_share_nullifier_and_reveal_secret() {
        // the end-to-end spam-detection math at the signal level
        let mut f = fixture();
        let s1 = make_signal(&mut f, 7, b"first");
        let s2 = make_signal(&mut f, 7, b"second");
        assert_eq!(s1.internal_nullifier, s2.internal_nullifier);
        let sk = wakurln_crypto::shamir::recover_line_secret(&s1.share, &s2.share).unwrap();
        assert_eq!(sk, f.id.secret());
    }

    #[test]
    fn batch_verification_matches_individual() {
        let mut f = fixture();
        let mut signals = Vec::new();
        for epoch in 1..=5 {
            signals.push(make_signal(&mut f, epoch, b"batched"));
        }
        signals[1].share.y += Fr::ONE; // tamper
        signals[3].message = b"swapped".to_vec(); // message mismatch
        let refs: Vec<&Signal> = signals.iter().collect();
        let batch = verify_signal_batch(&f.vk, f.group.root(), &refs);
        let individual: Vec<SignalValidity> = signals
            .iter()
            .map(|s| verify_signal(&f.vk, f.group.root(), s))
            .collect();
        assert_eq!(batch, individual);
        assert_eq!(batch[0], SignalValidity::Valid);
        assert_eq!(batch[1], SignalValidity::InvalidProof);
        assert_eq!(batch[3], SignalValidity::MessageMismatch);
    }

    #[test]
    fn overhead_is_constant() {
        let mut f = fixture();
        let small = make_signal(&mut f, 1, b"x");
        let large = make_signal(&mut f, 2, &vec![0u8; 4096]);
        assert_eq!(small.overhead_bytes(), large.overhead_bytes());
        // a few hundred bytes, suitable for resource-restricted devices
        assert!(small.overhead_bytes() < 512);
    }
}
