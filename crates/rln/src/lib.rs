//! # wakurln-rln
//!
//! The Rate-Limiting Nullifier framework (the paper's §II preliminaries),
//! assembled from the crypto and zkSNARK substrates:
//!
//! * [`identity`] — member secrets and identity commitments,
//! * [`group`] — the off-chain membership view and contract events,
//! * [`signal`] — signal creation (`(m, ∅, φ, [sk], π)`) and verification,
//! * [`slashing`] — double-signal analysis and secret reconstruction.
//!
//! The routing integration (epochs, nullifier maps, gossip validation) is
//! the `waku-rln-relay` crate.
//!
//! # Example: one membership proof, one message, one epoch
//!
//! ```
//! use wakurln_rln::{Identity, RlnGroup, create_signal, verify_signal, SignalValidity};
//! use wakurln_zksnark::{RlnCircuit, SimSnark};
//! use wakurln_crypto::field::Fr;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let depth = 16;
//! let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
//!
//! let mut group = RlnGroup::new(depth)?;
//! let id = Identity::random(&mut rng);
//! let index = group.register(id.commitment())?;
//!
//! let signal = create_signal(
//!     &id,
//!     &group.membership_proof(index)?,
//!     group.root(),
//!     &pk,
//!     Fr::from_u64(1_654_041_600), // the epoch
//!     b"hello anonymous world",
//!     &mut rng,
//! ).unwrap();
//!
//! assert_eq!(verify_signal(&vk, group.root(), &signal), SignalValidity::Valid);
//! # Ok::<(), wakurln_rln::GroupError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod group;
pub mod identity;
pub mod shared;
pub mod signal;
pub mod slashing;

pub use group::{GroupError, MembershipEvent, RlnGroup};
pub use identity::Identity;
pub use shared::SharedGroup;
pub use signal::{create_signal, verify_signal, verify_signal_batch, Signal, SignalValidity};
pub use slashing::{analyze_double_signal, build_evidence, DoubleSignalOutcome, SlashingEvidence};
