//! E1 — Proof generation time vs. membership-tree depth.
//!
//! Paper §IV: "Generating membership proof to a group size of 2³² takes
//! ≈ 0.5 s on an iPhone 8."
//!
//! We sweep the tree depth (group capacity 2^depth) and measure full
//! honest proving: witness synthesis over the real RLN R1CS circuit,
//! constraint checking, and proof assembly. The expected *shape* is
//! linear growth with depth (the Merkle gadget dominates); absolute times
//! differ from the authors' BN254/Groth16-on-iPhone figures (see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wakurln_bench::{banner, row, ProveFixture};
use wakurln_zksnark::RlnCircuit;

fn bench_proof_generation(c: &mut Criterion) {
    banner(
        "E1: proof generation vs group size",
        "≈0.5 s at 2^32 members (iPhone 8); linear in tree depth",
    );
    row(&[
        "depth".into(),
        "group capacity".into(),
        "constraints".into(),
    ]);
    for depth in [10usize, 16, 20, 24, 32] {
        row(&[
            format!("{depth}"),
            format!("2^{depth}"),
            format!("{}", RlnCircuit::new(depth).constraint_count()),
        ]);
    }

    let mut group = c.benchmark_group("e1_proof_generation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for depth in [10usize, 16, 20, 24, 32] {
        let mut fixture = ProveFixture::new(depth, 7, 42);
        let mut epoch = 0u64;
        group.bench_with_input(BenchmarkId::new("prove", depth), &depth, |b, _| {
            b.iter(|| {
                epoch += 1;
                fixture.signal(epoch, b"benchmark message")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_proof_generation);
criterion_main!(benches);
