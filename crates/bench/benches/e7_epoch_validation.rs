//! E7 — Epoch validation: the `Thr = D/T` window.
//!
//! Paper §III: "The routing peer also validates the epoch of the incoming
//! message against its local epoch to see if their difference exceeds a
//! threshold Thr in which case the message is considered invalid and gets
//! dropped […]. Epoch validation prevents a newly registered peer from
//! spamming the system by messaging for all the past epochs."
//!
//! The table sweeps the forged-epoch offset and reports whether the
//! message achieved majority delivery — the acceptance curve must be a
//! sharp window of width `2·Thr + 1` centred on the current epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use waku_rln_relay::{EpochScheme, Testbed, TestbedConfig};
use wakurln_baselines::epoch_replay_attack;
use wakurln_bench::{banner, row};

fn acceptance_curve() {
    banner(
        "E7: epoch-window acceptance curve (T = 10 s, D = 20 s, Thr = 2)",
        "past/future epochs beyond Thr are dropped network-wide",
    );
    let mut tb = Testbed::build(TestbedConfig {
        n_peers: 10,
        tree_depth: 10,
        degree: 4,
        seed: 21,
        epoch: EpochScheme::new(10, 20_000),
        ..Default::default()
    });
    tb.run(8_000, 1_000);

    let offsets = [-100i64, -10, -3, -2, -1, 0, 1, 2, 3, 10];
    let results = epoch_replay_attack(&mut tb, 0, &offsets);
    row(&[
        "epoch offset".into(),
        "majority delivery".into(),
        "expected".into(),
    ]);
    let thr = 2i64;
    for (offset, delivered) in &results {
        let expected = offset.abs() <= thr;
        row(&[
            format!("{offset:+}"),
            format!("{delivered}"),
            format!("{expected}"),
        ]);
        assert_eq!(
            *delivered, expected,
            "offset {offset}: delivered={delivered}, expected={expected}"
        );
    }

    // per-validator drop accounting
    let dropped: u64 = (0..10)
        .map(|i| {
            tb.net
                .node(wakurln_netsim::NodeId(i))
                .validator()
                .stats()
                .epoch_out_of_window
        })
        .sum();
    println!("out-of-window drops across validators: {dropped}");
}

fn bench_epoch_check(c: &mut Criterion) {
    acceptance_curve();

    let mut group = c.benchmark_group("e7_epoch_check");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    let scheme = EpochScheme::new(10, 20_000);
    group.bench_function("within_window", |b| {
        let mut e = 0u64;
        b.iter(|| {
            e += 1;
            scheme.within_window(1_000_000, 1_000_000 + (e % 5))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_epoch_check);
criterion_main!(benches);
