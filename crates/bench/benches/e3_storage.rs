//! E3 — Per-peer storage costs.
//!
//! Paper §IV: "Each peer persists a 32B public and secret keys and a
//! ≈ 3.89 MB prover key. A membership tree with depth 20 requires 67 MB
//! storage which can be optimized to 0.128 KB using [9]."
//!
//! The table below reports measured sizes for: identity keys, the modeled
//! prover/verifier keys, the constant proof, and the three tree
//! representations (full, append-only frontier, reference-[9] own-path).
//! The criterion section times the light tree's per-event maintenance
//! work, showing the optimization costs O(depth) time per membership
//! event.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use wakurln_bench::{banner, row, ProveFixture};
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{FullMerkleTree, IncrementalMerkleTree, SyncedPathTree};
use wakurln_rln::Identity;

fn human(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.2} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

fn storage_table() {
    banner(
        "E3: per-peer storage",
        "32B keys; ~3.89MB prover key; depth-20 tree: 67MB full vs 0.128KB optimized",
    );

    let mut rng = StdRng::seed_from_u64(1);
    let id = Identity::random(&mut rng);
    row(&["artifact".into(), "measured".into(), "paper".into()]);
    row(&[
        "secret key".into(),
        human(id.secret().to_bytes_le().len()),
        "32 B".into(),
    ]);
    row(&[
        "public key".into(),
        human(id.commitment().to_bytes_le().len()),
        "32 B".into(),
    ]);

    let fixture = ProveFixture::new(20, 0, 1);
    row(&[
        "prover key (d=20)".into(),
        human(fixture.proving_key.size_bytes()),
        "3.89 MB".into(),
    ]);
    row(&[
        "verifier key".into(),
        human(fixture.verifying_key.size_bytes()),
        "(small const)".into(),
    ]);
    let mut f = ProveFixture::new(20, 0, 2);
    let sig = f.signal(1, b"m");
    row(&[
        "proof".into(),
        human(sig.proof.size_bytes()),
        "(const, ~128-192B)".into(),
    ]);

    println!();
    row(&["tree (depth 20)".into(), "measured".into(), "paper".into()]);
    let full = FullMerkleTree::new(20).expect("depth ok");
    row(&[
        "full tree".into(),
        human(full.storage_bytes()),
        "67 MB".into(),
    ]);
    let frontier = IncrementalMerkleTree::new(20).expect("depth ok");
    row(&[
        "frontier only".into(),
        human(frontier.storage_bytes()),
        "-".into(),
    ]);
    let mut light = SyncedPathTree::new(20).expect("depth ok");
    light.register_own(Fr::from_u64(1)).expect("capacity");
    row(&[
        "own-path (ref [9])".into(),
        human(light.storage_bytes()),
        "0.128 KB".into(),
    ]);
    let reduction = full.storage_bytes() as f64 / light.storage_bytes() as f64;
    println!("reduction factor: {reduction:.0}x (paper: ~520,000x vs 67MB)");
}

fn bench_light_tree_maintenance(c: &mut Criterion) {
    storage_table();

    let mut group = c.benchmark_group("e3_light_tree_event_cost");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for depth in [16usize, 20, 32] {
        group.bench_with_input(BenchmarkId::new("apply_append", depth), &depth, |b, &d| {
            let mut tree = SyncedPathTree::new(d).expect("depth ok");
            tree.register_own(Fr::from_u64(1)).expect("capacity");
            let mut i = 2u64;
            b.iter(|| {
                i += 1;
                tree.apply_append(Fr::from_u64(i)).expect("capacity")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_light_tree_maintenance);
criterion_main!(benches);
