//! E6 — Spam protection head-to-head: WAKU-RLN-RELAY vs GossipSub peer
//! scoring vs Proof-of-Work.
//!
//! Paper §I: peer scoring "is prone to censorship and inexpensive attacks
//! where millions of bots can be deployed"; PoW "is computationally
//! expensive hence not suitable for resource-constrained devices"; RLN
//! "controls spammers globally […] has built-in economic incentives where
//! spammers are financially punished".
//!
//! One scenario — 11 honest peers publish once each, one attacker floods
//! 8 distinct messages inside an epoch — run under all three schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wakurln_baselines::{
    run_peer_scoring, run_pow, run_rln, sybil_cost, PowScenario, Scenario, SchemeOutcome, DEVICES,
};
use wakurln_bench::{banner, row};
use wakurln_ethsim::types::ETHER;

fn print_outcome(out: &SchemeOutcome) {
    row(&[
        out.scheme.to_string(),
        format!("{:.0}%", out.honest_delivery_rate * 100.0),
        format!("{:.0}%", out.spam_delivery_rate * 100.0),
        format!("{}", out.attacker_globally_excluded),
        format!("{}", out.attacker_fined),
        format!("{:.0}", out.relayer_cpu_micros_mean),
    ]);
}

fn comparison_table() {
    banner(
        "E6: spam protection comparison (11 honest, 1 attacker, k=8 flood)",
        "RLN: global removal + fine; scoring: spam sails through; PoW: throttles phones, not GPUs",
    );
    row(&[
        "scheme".into(),
        "honest delivery".into(),
        "spam delivery".into(),
        "globally excluded".into(),
        "fined".into(),
        "relayer cpu µs".into(),
    ]);
    let scenario = Scenario::default();
    print_outcome(&run_rln(scenario));
    print_outcome(&run_peer_scoring(scenario));
    print_outcome(&run_pow(PowScenario {
        difficulty_bits: 24, // sized so a phone cannot seal in an epoch
        ..Default::default()
    }));
    print_outcome(&run_pow(PowScenario {
        difficulty_bits: 16, // phone-affordable — and attacker-affordable
        ..Default::default()
    }));

    println!();
    banner(
        "E6b: Sybil economics (cost to field 1M bot identities)",
        "'Sybil attack is also mitigated by making registration expensive'",
    );
    let costs = sybil_cost(1_000_000, ETHER);
    row(&["scheme".into(), "identity cost (wei)".into()]);
    row(&["waku-rln-relay".into(), format!("{}", costs.rln_wei)]);
    row(&["peer-scoring".into(), format!("{}", costs.peer_scoring_wei)]);
    row(&["proof-of-work".into(), format!("{}", costs.pow_wei)]);

    println!();
    banner(
        "E6c: PoW publish feasibility by device (difficulty 22, epoch 10 s)",
        "PoW 'not suitable for resource-constrained devices'",
    );
    row(&["device".into(), "hash rate".into(), "msgs/epoch".into()]);
    for device in DEVICES {
        row(&[
            device.name.to_string(),
            format!("{:.0}/s", device.hash_rate_hz),
            format!("{:.3}", device.seals_per_epoch(22, 10)),
        ]);
    }
}

fn bench_schemes(c: &mut Criterion) {
    comparison_table();

    let mut group = c.benchmark_group("e6_scheme_scenario_runtime");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    group.bench_function("peer_scoring_scenario", |b| {
        b.iter(|| {
            run_peer_scoring(Scenario {
                honest_peers: 7,
                spam_k: 4,
                seed: 3,
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
