//! E4 — Gas: off-chain tree (registry contract) vs on-chain tree.
//!
//! Paper §III: "This design choice enables constant complexity
//! registration and deletion operations (as opposed to logarithmic
//! complexity in on-chain tree storage) hence optimizing gas consumption
//! by an order of magnitude."
//!
//! The table sweeps tree depth (group capacity) and reports the gas of
//! `register` and `slash`/`remove` under both contract designs, plus the
//! ratio. Registry gas must be flat; tree gas must grow linearly with
//! depth; the ratio at practical depths must exceed 10×.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wakurln_bench::{banner, row};
use wakurln_crypto::field::Fr;
use wakurln_crypto::poseidon;
use wakurln_ethsim::gas::{GasMeter, TX_BASE};
use wakurln_ethsim::types::{Address, ETHER};
use wakurln_ethsim::{MembershipContract, OnChainTreeContract};

fn registry_register_gas(member_index: u64) -> u64 {
    let mut contract = MembershipContract::new(ETHER, 50);
    let mut events = Vec::new();
    // pre-populate to the requested size
    for i in 0..member_index {
        let mut m = GasMeter::new();
        contract
            .register(
                Address::BURN,
                ETHER,
                Fr::from_u64(1_000_000 + i),
                &mut m,
                &mut events,
            )
            .expect("unique");
    }
    let mut meter = GasMeter::new();
    meter.charge(TX_BASE);
    contract
        .register(
            Address::BURN,
            ETHER,
            Fr::from_u64(7),
            &mut meter,
            &mut events,
        )
        .expect("unique");
    meter.used()
}

fn registry_slash_gas(prefill: u64) -> u64 {
    let mut contract = MembershipContract::new(ETHER, 50);
    let mut events = Vec::new();
    for i in 0..prefill {
        let mut m = GasMeter::new();
        contract
            .register(
                Address::BURN,
                ETHER,
                Fr::from_u64(1_000_000 + i),
                &mut m,
                &mut events,
            )
            .expect("unique");
    }
    let sk = Fr::from_u64(7);
    let mut m = GasMeter::new();
    contract
        .register(
            Address::BURN,
            ETHER,
            poseidon::hash1(sk),
            &mut m,
            &mut events,
        )
        .expect("unique");
    struct NoopEnv;
    impl wakurln_ethsim::contracts::BalanceEnv for NoopEnv {
        fn credit(&mut self, _: Address, _: u128) {}
    }
    let mut meter = GasMeter::new();
    meter.charge(TX_BASE);
    contract
        .slash(Address::BURN, sk, &mut meter, &mut events, &mut NoopEnv)
        .expect("registered");
    meter.used()
}

fn tree_gas(depth: usize) -> (u64, u64) {
    let mut contract = OnChainTreeContract::new(ETHER, depth).expect("depth ok");
    let mut events = Vec::new();
    let sk = Fr::from_u64(7);
    let mut reg = GasMeter::new();
    reg.charge(TX_BASE);
    contract
        .register(
            Address::BURN,
            ETHER,
            poseidon::hash1(sk),
            &mut reg,
            &mut events,
        )
        .expect("capacity");
    let mut rem = GasMeter::new();
    rem.charge(TX_BASE);
    contract
        .remove(Address::BURN, 0, sk, &mut rem, &mut events)
        .expect("registered");
    (reg.used(), rem.used())
}

fn gas_table() {
    banner(
        "E4: gas — registry (paper design) vs on-chain tree (original RLN)",
        "O(1) vs O(log n); 'optimizing gas consumption by an order of magnitude'",
    );
    row(&[
        "depth".into(),
        "registry reg".into(),
        "tree reg".into(),
        "ratio".into(),
        "registry slash".into(),
        "tree remove".into(),
        "ratio".into(),
    ]);
    let reg_registry = registry_register_gas(0);
    let slash_registry = registry_slash_gas(0);
    for depth in [10usize, 16, 20, 24, 32] {
        let (reg_tree, rem_tree) = tree_gas(depth);
        row(&[
            format!("{depth}"),
            format!("{reg_registry}"),
            format!("{reg_tree}"),
            format!("{:.1}x", reg_tree as f64 / reg_registry as f64),
            format!("{slash_registry}"),
            format!("{rem_tree}"),
            format!("{:.1}x", rem_tree as f64 / slash_registry as f64),
        ]);
    }
    // constancy check across group sizes
    println!();
    row(&["group size".into(), "registry reg gas".into()]);
    for size in [0u64, 16, 256, 1024] {
        row(&[
            format!("{size}"),
            format!("{}", registry_register_gas(size)),
        ]);
    }
}

fn bench_contract_execution(c: &mut Criterion) {
    gas_table();

    let mut group = c.benchmark_group("e4_contract_execution");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("registry_register", |b| {
        let mut contract = MembershipContract::new(ETHER, 50);
        let mut events = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut m = GasMeter::new();
            contract
                .register(Address::BURN, ETHER, Fr::from_u64(i), &mut m, &mut events)
                .expect("unique")
        });
    });
    group.bench_function("tree_register_depth20", |b| {
        let mut contract = OnChainTreeContract::new(ETHER, 20).expect("depth ok");
        let mut events = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut m = GasMeter::new();
            contract
                .register(Address::BURN, ETHER, Fr::from_u64(i), &mut m, &mut events)
                .expect("capacity")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_contract_execution);
criterion_main!(benches);
