//! E5 — Message propagation: p2p gossip vs on-chain messaging.
//!
//! Paper §III: "we achieve higher message propagation speed as opposed to
//! the on-chain case where messages should be mined before being visible
//! to the network. Moreover, we save our users the gas price that they
//! have to otherwise pay to insert their messages to the contract."
//!
//! The table publishes 20 messages under each design on a 100-peer
//! network and reports visibility-latency percentiles (gossip: time until
//! 95% of peers hold the message; on-chain: time until the message is in
//! a mined block every peer can read) plus the per-message gas.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wakurln_bench::{banner, row};
use wakurln_ethsim::types::{Address, CallData, ETHER};
use wakurln_ethsim::{Chain, ChainConfig};
use wakurln_gossipsub::AcceptAll;
use wakurln_netsim::{topology, Network, NodeId, UniformLatency};
use wakurln_relay::{WakuMessage, WakuRelayNode};

const N_PEERS: usize = 100;
const N_MESSAGES: usize = 20;

/// Gossip: per-message time until 95% coverage.
fn gossip_latencies(seed: u64) -> Vec<u64> {
    let adjacency = topology::random_regular(N_PEERS, 6, seed);
    let mut net: Network<WakuRelayNode<AcceptAll>> = Network::new(
        UniformLatency {
            min_ms: 20,
            max_ms: 120,
        },
        seed,
    );
    for peers in adjacency {
        net.add_node(WakuRelayNode::with_defaults(peers, AcceptAll));
    }
    net.run_until(10_000); // mesh formation

    let mut latencies = Vec::new();
    for m in 0..N_MESSAGES {
        let publisher = m % N_PEERS;
        let payload = format!("e5-message-{m}").into_bytes();
        let publish_time = net.now();
        let msg = WakuMessage::new("/e5", payload.clone());
        net.invoke(NodeId(publisher), |node, ctx| node.publish(ctx, &msg));
        net.run_until(net.now() + 20_000);
        // coverage timestamp: the 95th-percentile arrival time
        let mut arrivals: Vec<u64> = (0..N_PEERS)
            .filter(|i| *i != publisher)
            .filter_map(|i| {
                net.node(NodeId(i))
                    .waku_deliveries()
                    .iter()
                    .find(|(w, _)| w.payload == payload)
                    .map(|(_, at)| *at - publish_time)
            })
            .collect();
        arrivals.sort_unstable();
        if arrivals.len() >= (N_PEERS - 1) * 95 / 100 {
            let p95 = arrivals[(arrivals.len() - 1) * 95 / 100];
            latencies.push(p95);
        }
    }
    latencies
}

/// On-chain: per-message time from submission to inclusion in a block.
fn onchain_latencies(seed: u64) -> (Vec<u64>, u64) {
    let mut chain = Chain::new(ChainConfig::default());
    let sender = Address::from_label("poster");
    chain.fund(sender, 100 * ETHER);
    let mut latencies = Vec::new();
    let mut gas_per_message = 0;
    let mut t = 1_000u64; // ms
    for m in 0..N_MESSAGES {
        // stagger submissions pseudo-randomly within block intervals
        t += 1_700 + (seed + m as u64) * 977 % 9_000;
        chain.advance_to(t / 1000);
        let submit_ms = t;
        chain
            .submit(
                sender,
                0,
                CallData::Post {
                    payload: format!("e5-onchain-{m}").into_bytes(),
                },
            )
            .expect("funded");
        // visible at the next mined block
        let mined_at_ms = chain.next_block_time() * 1000;
        let receipts = chain.advance_to(chain.next_block_time());
        gas_per_message = receipts.last().expect("mined").gas_used;
        latencies.push(mined_at_ms - submit_ms);
        t = mined_at_ms;
    }
    (latencies, gas_per_message)
}

fn stats(lat: &[f64]) -> (f64, f64, f64) {
    let mut s = lat.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    let p50 = s[(s.len() - 1) / 2];
    let p95 = s[(s.len() - 1) * 95 / 100];
    (mean, p50, p95)
}

fn propagation_table() {
    banner(
        "E5: propagation latency — gossip vs on-chain (100 peers, 20 msgs)",
        "off-chain p2p beats mined messages; senders pay no gas",
    );
    let gossip = gossip_latencies(11);
    let (onchain, gas) = onchain_latencies(11);
    let g: Vec<f64> = gossip.iter().map(|v| *v as f64).collect();
    let o: Vec<f64> = onchain.iter().map(|v| *v as f64).collect();
    let (gm, g50, g95) = stats(&g);
    let (om, o50, o95) = stats(&o);
    row(&[
        "design".into(),
        "mean ms".into(),
        "p50 ms".into(),
        "p95 ms".into(),
        "gas/msg".into(),
    ]);
    row(&[
        "gossip (95% cover)".into(),
        format!("{gm:.0}"),
        format!("{g50:.0}"),
        format!("{g95:.0}"),
        "0".into(),
    ]);
    row(&[
        "on-chain (mined)".into(),
        format!("{om:.0}"),
        format!("{o50:.0}"),
        format!("{o95:.0}"),
        format!("{gas}"),
    ]);
    println!("speedup (mean): {:.1}x", om / gm);
    assert!(om > gm, "gossip must beat mining latency");
}

fn bench_propagation(c: &mut Criterion) {
    propagation_table();

    // supporting microbench: simulator throughput for one full publish
    let mut group = c.benchmark_group("e5_simulation_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("small_net_publish_round", |b| {
        b.iter(|| {
            let adjacency = topology::random_regular(20, 4, 3);
            let mut net: Network<WakuRelayNode<AcceptAll>> = Network::new(
                UniformLatency {
                    min_ms: 10,
                    max_ms: 50,
                },
                3,
            );
            for peers in adjacency {
                net.add_node(WakuRelayNode::with_defaults(peers, AcceptAll));
            }
            net.run_until(5_000);
            let msg = WakuMessage::new("/bench", b"x".to_vec());
            net.invoke(NodeId(0), |node, ctx| node.publish(ctx, &msg));
            net.run_until(15_000);
            net.metrics().counter("delivered_app")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
