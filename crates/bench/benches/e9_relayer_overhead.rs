//! E9 — Per-message relayer overhead: the full RLN validation pipeline
//! vs PoW verification vs plain relaying.
//!
//! Paper §I/§IV: WAKU-RLN-RELAY's "light computational overhead makes it
//! suitable for resource-limited environments" — the router-side cost is
//! one constant-time proof verification plus O(1) epoch and nullifier-map
//! checks per message, regardless of group size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use waku_rln_relay::{decode_signal, encode_signal, CostModel, EpochScheme, RlnValidator};
use wakurln_baselines::pow;
use wakurln_bench::{banner, row, ProveFixture};
use wakurln_gossipsub::ValidationResult;

fn overhead_table() {
    banner(
        "E9: relayer-side per-message validation overhead",
        "RLN validation is constant across group sizes; suitable for weak devices",
    );
    // modeled device costs (paper's iPhone 8 numbers)
    let cost = CostModel::default();
    row(&["check".into(), "modeled µs (iPhone-8 profile)".into()]);
    row(&[
        "proof verify".into(),
        format!("{}", cost.verify_proof_micros),
    ]);
    row(&["epoch check".into(), format!("{}", cost.epoch_check_micros)]);
    row(&[
        "nullifier check".into(),
        format!("{}", cost.nullifier_check_micros),
    ]);
    row(&[
        "sk reconstruction".into(),
        format!("{}", cost.reconstruct_micros),
    ]);
}

fn bench_relayer_overhead(c: &mut Criterion) {
    overhead_table();

    let mut group = c.benchmark_group("e9_relayer_overhead");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    // full RLN pipeline (decode + verify + epoch + nullifier map), across
    // group sizes — the series must be flat (constant overhead)
    for depth in [10usize, 20, 32] {
        let mut fixture = ProveFixture::new(depth, 7, 9);
        let scheme = EpochScheme::default();
        let root = fixture.tree.root();
        let vk = fixture.verifying_key.clone();
        // pre-encode many distinct signals so the nullifier map sees fresh
        // entries (epoch varies)
        let signals: Vec<Vec<u8>> = (0..64u64)
            .map(|i| {
                let epoch = scheme.epoch_at_ms(0) + (i % 3);
                encode_signal(epoch, &fixture.signal(epoch, format!("m{i}").as_bytes()))
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("rln_full_pipeline", depth),
            &depth,
            |b, _| {
                let mut validator =
                    RlnValidator::new(vk.clone(), scheme, root, CostModel::default());
                let mut i = 0usize;
                b.iter(|| {
                    let wire = decode_signal(&signals[i % signals.len()]).expect("well-formed");
                    i += 1;
                    validator.validate_wire(0, &wire)
                });
            },
        );
    }

    // PoW verification (one hash)
    let (envelope, _) = pow::seal(b"pow message", 12);
    group.bench_function("pow_verify", |b| {
        b.iter(|| pow::verify(&envelope, 12));
    });

    // plain relay (no validation at all): baseline floor
    group.bench_function("plain_relay_noop", |b| {
        b.iter(|| ValidationResult::Accept);
    });

    group.finish();
}

criterion_group!(benches, bench_relayer_overhead);
criterion_main!(benches);
