//! E0 — Supporting microbenchmarks of the cryptographic substrate.
//!
//! Not a paper table by itself, but the per-primitive costs that explain
//! E1/E2/E3: field multiplication, Poseidon permutations, Merkle
//! operations, Shamir reconstruction, and SHA-256 throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::{FullMerkleTree, IncrementalMerkleTree};
use wakurln_crypto::poseidon;
use wakurln_crypto::sha256::Sha256;
use wakurln_crypto::shamir;

fn bench_field(c: &mut Criterion) {
    let mut group = c.benchmark_group("e0_field");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fr::random(&mut rng);
    let b = Fr::random(&mut rng);
    group.bench_function("mul", |bench| bench.iter(|| a * b));
    group.bench_function("add", |bench| bench.iter(|| a + b));
    group.bench_function("square", |bench| bench.iter(|| a.square()));
    group.bench_function("inverse", |bench| bench.iter(|| a.inverse()));
    group.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e0_hashes");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    let a = Fr::from_u64(1);
    let b = Fr::from_u64(2);
    group.bench_function("poseidon_hash1", |bench| bench.iter(|| poseidon::hash1(a)));
    group.bench_function("poseidon_hash2", |bench| {
        bench.iter(|| poseidon::hash2(a, b))
    });
    // fast path (flat params + sparse partial rounds) vs the reference
    // permutation — the tentpole's headline comparison
    group.bench_function("poseidon_permute_fast_t3", |bench| {
        let fp = poseidon::fast_params(3);
        let mut state = [Fr::ZERO, a, b];
        bench.iter(|| {
            poseidon::permute_fast::<3>(fp, &mut state);
            state[0]
        })
    });
    group.bench_function("poseidon_permute_reference_t3", |bench| {
        let params = poseidon::params(3);
        let mut state = vec![Fr::ZERO, a, b];
        bench.iter(|| {
            poseidon::permute_with(params, &mut state);
            state[0]
        })
    });
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &size, |bench, _| {
            bench.iter(|| Sha256::digest(&data));
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("e0_merkle");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for depth in [10usize, 16, 20] {
        group.bench_with_input(BenchmarkId::new("full_set", depth), &depth, |bench, &d| {
            let mut tree = FullMerkleTree::new(d).expect("depth ok");
            let mut i = 0u64;
            bench.iter(|| {
                i = (i + 1) % tree.capacity();
                tree.set(i, Fr::from_u64(i)).expect("in range")
            });
        });
        group.bench_with_input(
            BenchmarkId::new("incremental_append", depth),
            &depth,
            |bench, &d| {
                let mut tree = IncrementalMerkleTree::new(d).expect("depth ok");
                let mut i = 0u64;
                bench.iter(|| {
                    if tree.len() == tree.capacity() {
                        tree = IncrementalMerkleTree::new(d).expect("depth ok");
                    }
                    i += 1;
                    tree.append(Fr::from_u64(i)).expect("capacity")
                });
            },
        );
        // batched ingestion: one O(n + depth) pass per 256-leaf burst
        group.bench_with_input(
            BenchmarkId::new("incremental_append_batch256", depth),
            &depth,
            |bench, &d| {
                let leaves: Vec<Fr> = (0..256u64).map(Fr::from_u64).collect();
                let mut tree = IncrementalMerkleTree::new(d).expect("depth ok");
                bench.iter(|| {
                    if tree.capacity() - tree.len() < 256 {
                        tree = IncrementalMerkleTree::new(d).expect("depth ok");
                    }
                    tree.append_batch(&leaves).expect("capacity")
                });
            },
        );
    }
    group.bench_function("proof_verify_depth20", |bench| {
        let mut tree = FullMerkleTree::new(20).expect("depth ok");
        tree.append(Fr::from_u64(5)).expect("capacity");
        let proof = tree.proof(0).expect("in range");
        let root = tree.root();
        bench.iter(|| proof.verify(root, Fr::from_u64(5)));
    });
    group.finish();
}

fn bench_shamir(c: &mut Criterion) {
    let mut group = c.benchmark_group("e0_shamir");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    let sk = Fr::from_u64(123);
    let a1 = Fr::from_u64(456);
    let s1 = shamir::share_on_line(sk, a1, Fr::from_u64(1));
    let s2 = shamir::share_on_line(sk, a1, Fr::from_u64(2));
    group.bench_function("share_on_line", |bench| {
        bench.iter(|| shamir::share_on_line(sk, a1, Fr::from_u64(3)))
    });
    group.bench_function("recover_secret", |bench| {
        bench.iter(|| shamir::recover_line_secret(&s1, &s2))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_field,
    bench_hashes,
    bench_merkle,
    bench_shamir
);
criterion_main!(benches);
