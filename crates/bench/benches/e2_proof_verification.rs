//! E2 — Proof verification time vs. group size.
//!
//! Paper §IV: "Proof verification run time is constant and takes ≈ 30 ms"
//! (iPhone 8), independent of the group size.
//!
//! We verify honest signals across tree depths and expect a *flat* series
//! — constant-size proofs verified by a constant number of operations —
//! in contrast to E1's linear growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wakurln_bench::{banner, ProveFixture};
use wakurln_rln::{verify_signal, SignalValidity};

fn bench_proof_verification(c: &mut Criterion) {
    banner(
        "E2: proof verification vs group size",
        "constant ≈30 ms regardless of group size (flat series)",
    );

    let mut group = c.benchmark_group("e2_proof_verification");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for depth in [10usize, 16, 20, 24, 32] {
        let mut fixture = ProveFixture::new(depth, 7, 42);
        let signal = fixture.signal(1, b"benchmark message");
        let root = fixture.tree.root();
        let vk = fixture.verifying_key.clone();
        assert_eq!(verify_signal(&vk, root, &signal), SignalValidity::Valid);
        group.bench_with_input(BenchmarkId::new("verify", depth), &depth, |b, _| {
            b.iter(|| verify_signal(&vk, root, &signal));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_proof_verification);
criterion_main!(benches);
