//! E8 — The nullifier map: detection correctness, throughput, and bounded
//! memory.
//!
//! Paper §III: routers keep `(φ, [sk])` records "for the past Thr epochs"
//! — double-signaling detection must be exact within that window, and the
//! map's memory must be bounded by window size times traffic rate, not by
//! history length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use waku_rln_relay::{NullifierMap, NullifierOutcome};
use wakurln_bench::{banner, row};
use wakurln_crypto::field::Fr;
use wakurln_crypto::shamir::Share;

fn share(x: u64) -> Share {
    Share {
        x: Fr::from_u64(x),
        y: Fr::from_u64(x.wrapping_mul(31).wrapping_add(7)),
    }
}

fn memory_table() {
    banner(
        "E8: nullifier-map memory vs Thr (1000 members messaging/epoch)",
        "state bounded to the last Thr epochs; older entries collected",
    );
    row(&[
        "Thr".into(),
        "epochs tracked".into(),
        "entries".into(),
        "bytes".into(),
    ]);
    for thr in [1u64, 2, 5, 10, 50] {
        let mut map = NullifierMap::new();
        // 200 epochs of traffic from 1000 members, gc per epoch
        for epoch in 0..200u64 {
            for member in 0..1000u64 {
                map.insert(epoch, Fr::from_u64(member * 1000 + epoch), share(member));
            }
            map.gc(epoch, thr);
        }
        row(&[
            format!("{thr}"),
            format!("{}", map.tracked_epochs()),
            format!("{}", map.len()),
            format!("{}", map.memory_bytes()),
        ]);
        assert!(map.tracked_epochs() as u64 <= thr + 1);
    }

    println!();
    banner(
        "E8b: detection exactness (10k signals, 1% double-signalers)",
        "every double-signal in-window detected; zero false positives",
    );
    let mut map = NullifierMap::new();
    let mut detected = 0u64;
    let mut expected = 0u64;
    for i in 0..10_000u64 {
        let epoch = i / 1000;
        let member = i % 1000;
        let nullifier = Fr::from_u64(member * 10_000 + epoch);
        let outcome = map.insert(epoch, nullifier, share(i));
        assert_eq!(outcome, NullifierOutcome::Fresh, "false positive at {i}");
        if member % 100 == 0 {
            // this member double-signals
            expected += 1;
            let second = map.insert(epoch, nullifier, share(i + 777_777));
            if matches!(second, NullifierOutcome::DoubleSignal { .. }) {
                detected += 1;
            }
        }
    }
    row(&["double-signals".into(), "detected".into()]);
    row(&[format!("{expected}"), format!("{detected}")]);
    assert_eq!(detected, expected, "missed detections");
}

fn bench_map_ops(c: &mut Criterion) {
    memory_table();

    let mut group = c.benchmark_group("e8_nullifier_map_ops");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for preload in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("insert_into_preloaded", preload),
            &preload,
            |b, &n| {
                let mut map = NullifierMap::new();
                for i in 0..n {
                    map.insert(1, Fr::from_u64(i), share(i));
                }
                let mut k = n;
                b.iter(|| {
                    k += 1;
                    map.insert(1, Fr::from_u64(k), share(k))
                });
            },
        );
    }
    group.bench_function("gc_200_epochs", |b| {
        b.iter(|| {
            let mut map = NullifierMap::new();
            for epoch in 0..200u64 {
                map.insert(epoch, Fr::from_u64(epoch), share(epoch));
            }
            map.gc(200, 2);
            map.tracked_epochs()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_map_ops);
criterion_main!(benches);
