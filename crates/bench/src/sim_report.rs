//! The `BENCH_sim.json` scheduler thread-sweep report.
//!
//! Runs one built-in scenario at a fixed `(nodes, seed)` across a sweep
//! of scheduler worker-thread counts and reports wall-clock time,
//! event throughput, the speedup relative to one thread, and the
//! per-phase split of where the wall clock went (registration sync /
//! event dispatch / post-traffic drain). Before any
//! number is reported, the sweep **asserts the scheduler's determinism
//! contract**: every thread count must produce a byte-identical
//! `ScenarioReport` — a sweep that bought speed by changing the
//! simulation would be worthless.
//!
//! Caveat recorded in the output: on a single-core host (like the
//! 1-core container this repository is usually built in) the worker
//! pool timeshares one CPU, so `speedup_vs_1_thread ≈ 1.0` by design;
//! the sweep shows real wall-clock wins only where
//! `host_parallelism > 1`. The determinism assertion is meaningful
//! everywhere.

use std::time::Instant;
use wakurln_scenarios::{builtin, ScenarioReport, BUILTIN_NAMES};

/// Configuration for one sweep.
#[derive(Clone, Debug)]
pub struct SimReportConfig {
    /// Built-in scenario name (see [`BUILTIN_NAMES`]).
    pub scenario: String,
    /// Honest-peer count.
    pub nodes: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Thread counts to sweep, in order.
    pub threads: Vec<usize>,
    /// Repetitions per thread count (best run reported, damping
    /// scheduler noise on shared machines).
    pub reps: usize,
}

impl Default for SimReportConfig {
    fn default() -> SimReportConfig {
        SimReportConfig {
            scenario: "baseline".to_string(),
            nodes: 1000,
            seed: 2022,
            threads: vec![1, 2, 4, 8],
            reps: 1,
        }
    }
}

/// One row of the sweep.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Scheduler worker threads.
    pub threads: usize,
    /// Best wall-clock time over the repetitions, milliseconds.
    pub wall_ms: u64,
    /// Events dispatched per wall-clock second.
    pub events_per_sec: f64,
    /// `wall_ms(threads = 1) / wall_ms(this row)`.
    pub speedup_vs_1_thread: f64,
    /// Host time the best run spent syncing chain events into peers
    /// (registration bursts, slashings, resync replays), milliseconds.
    pub registration_sync_ms: u64,
    /// Host time the best run spent dispatching simulation events,
    /// milliseconds.
    pub dispatch_ms: u64,
    /// Host time the best run spent draining in-flight traffic after
    /// the last scheduled action, milliseconds.
    pub drain_ms: u64,
}

/// The full report.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// Honest-peer count.
    pub nodes: usize,
    /// Seed.
    pub seed: u64,
    /// Simulated duration, milliseconds.
    pub sim_duration_ms: u64,
    /// Events one run dispatches (identical across thread counts).
    pub events_dispatched: u64,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// the context without which the speedup column cannot be read.
    pub host_parallelism: usize,
    /// Whether every thread count produced byte-identical report JSON.
    /// The runner panics if not, so a written report always says `true`;
    /// the field keeps the claim explicit in the artifact.
    pub determinism_byte_identical: bool,
    /// Delivery rate of the swept run, parsed back from the reference
    /// report bytes via [`ScenarioReport::from_json`] — sanity context
    /// for the throughput numbers (a fast run of a broken scenario is
    /// worthless), and a live consumer of the report round-trip path.
    pub delivery_rate: f64,
    /// Wire messages of the swept run (same parsed reference report).
    pub messages_sent: u64,
    /// Sweep rows, in the order requested.
    pub sweep: Vec<SweepRow>,
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics on an unknown scenario name, or — the determinism contract —
/// when two thread counts disagree on the report bytes.
pub fn run(config: &SimReportConfig) -> SimReport {
    assert!(!config.threads.is_empty(), "sweep needs thread counts");
    assert!(config.reps >= 1, "need at least one repetition");
    let base = builtin(&config.scenario, config.nodes, config.seed).unwrap_or_else(|| {
        panic!(
            "unknown scenario {:?}; one of {}",
            config.scenario,
            BUILTIN_NAMES.join(", ")
        )
    });
    let mut reference: Option<String> = None;
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut events_dispatched = 0u64;
    for &threads in &config.threads {
        let mut spec = base.clone();
        spec.threads = threads.max(1); // 0 would re-auto-detect and blur the sweep
        let mut best_wall = u64::MAX;
        let mut best_phases = waku_rln_relay::PhaseTimings::default();
        for _ in 0..config.reps {
            let started = Instant::now();
            let (report, tb) = wakurln_scenarios::run_scenario_detailed(&spec);
            let wall = started.elapsed().as_millis().max(1) as u64;
            if wall < best_wall {
                best_wall = wall;
                best_phases = tb.phase_timings();
            }
            events_dispatched = tb.net.events_dispatched();
            let json = report.to_json();
            match &reference {
                None => reference = Some(json),
                Some(reference) => assert_eq!(
                    reference, &json,
                    "determinism violated: threads={threads} changed the report"
                ),
            }
        }
        rows.push(SweepRow {
            threads: spec.threads,
            wall_ms: best_wall,
            events_per_sec: 0.0,      // filled once events are known
            speedup_vs_1_thread: 0.0, // filled against row 0
            registration_sync_ms: best_phases.registration_sync_ns / 1_000_000,
            dispatch_ms: best_phases.dispatch_ns / 1_000_000,
            drain_ms: best_phases.drain_ns / 1_000_000,
        });
    }
    // the speedup base is the threads=1 row wherever it sits in the
    // sweep order (falling back to the first row when 1 wasn't swept)
    let reference_json = reference.as_deref().expect("at least one run");
    let parsed = ScenarioReport::from_json(reference_json)
        .expect("bench_sim reports round-trip through ScenarioReport::from_json");
    let base_wall = rows
        .iter()
        .find(|r| r.threads == 1)
        .unwrap_or(&rows[0])
        .wall_ms;
    for row in &mut rows {
        row.events_per_sec = events_dispatched as f64 * 1000.0 / row.wall_ms as f64;
        row.speedup_vs_1_thread = base_wall as f64 / row.wall_ms as f64;
    }
    SimReport {
        scenario: config.scenario.clone(),
        nodes: config.nodes,
        seed: config.seed,
        sim_duration_ms: base.duration_ms(),
        events_dispatched,
        host_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        determinism_byte_identical: reference.is_some(),
        delivery_rate: parsed.delivery_rate,
        messages_sent: parsed.messages_sent,
        sweep: rows,
    }
}

impl SimReport {
    /// Serializes as stable JSON (hand-rolled; fixed field order and
    /// float formatting, like every other `BENCH_*.json` artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"bench_sim/v2\",\n");
        out.push_str(&format!("  \"scenario\": \"{}\",\n", self.scenario));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"sim_duration_ms\": {},\n",
            self.sim_duration_ms
        ));
        out.push_str(&format!(
            "  \"events_dispatched\": {},\n",
            self.events_dispatched
        ));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!(
            "  \"determinism_byte_identical\": {},\n",
            self.determinism_byte_identical
        ));
        out.push_str(&format!(
            "  \"delivery_rate\": {:.6},\n",
            self.delivery_rate
        ));
        out.push_str(&format!("  \"messages_sent\": {},\n", self.messages_sent));
        out.push_str("  \"sweep\": [\n");
        for (i, row) in self.sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"wall_ms\": {}, \"events_per_sec\": {:.1}, \"speedup_vs_1_thread\": {:.3}, \"registration_sync_ms\": {}, \"dispatch_ms\": {}, \"drain_ms\": {}}}{}\n",
                row.threads,
                row.wall_ms,
                row.events_per_sec,
                row.speedup_vs_1_thread,
                row.registration_sync_ms,
                row.dispatch_ms,
                row.drain_ms,
                if i + 1 < self.sweep.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable sweep table (stderr companion of the JSON).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} @ {} nodes, seed {}: {} events over {} sim-ms (host parallelism {})\n",
            self.scenario,
            self.nodes,
            self.seed,
            self.events_dispatched,
            self.sim_duration_ms,
            self.host_parallelism,
        );
        for row in &self.sweep {
            out.push_str(&format!(
                "  threads {:>2}: {:>8} ms  {:>12.0} events/s  {:>6.3}x  (sync {} ms, dispatch {} ms, drain {} ms)\n",
                row.threads,
                row.wall_ms,
                row.events_per_sec,
                row.speedup_vs_1_thread,
                row.registration_sync_ms,
                row.dispatch_ms,
                row.drain_ms,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_has_stable_schema_and_determinism() {
        let report = run(&SimReportConfig {
            scenario: "baseline".to_string(),
            nodes: 10,
            seed: 7,
            threads: vec![1, 2],
            reps: 1,
        });
        assert!(report.determinism_byte_identical);
        assert_eq!(report.sweep.len(), 2);
        assert!(report.events_dispatched > 0);
        let json = report.to_json();
        for field in [
            "\"schema\": \"bench_sim/v2\"",
            "\"determinism_byte_identical\": true",
            "\"host_parallelism\"",
            "\"delivery_rate\"",
            "\"sweep\"",
            "\"speedup_vs_1_thread\"",
            "\"registration_sync_ms\"",
            "\"dispatch_ms\"",
            "\"drain_ms\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(report.delivery_rate > 0.5, "swept run did not deliver");
    }

    #[test]
    fn speedup_base_is_the_threads_1_row_regardless_of_sweep_order() {
        let report = run(&SimReportConfig {
            scenario: "baseline".to_string(),
            nodes: 10,
            seed: 7,
            threads: vec![2, 1],
            reps: 1,
        });
        let one = report.sweep.iter().find(|r| r.threads == 1).expect("swept");
        assert!((one.speedup_vs_1_thread - 1.0).abs() < 1e-9);
    }
}
