//! The `BENCH_crypto.json` throughput report.
//!
//! Measures the four tentpole hot paths — Poseidon hashing (fast vs
//! reference), batched Merkle ingestion (vs sequential), proof
//! generation, and proof verification (single vs batch) — and serializes
//! the result as a flat JSON object so the numbers can be tracked across
//! commits. The `bench_crypto` binary runs this with a real measurement
//! budget; the smoke test runs it with a tiny one to pin the schema.

use crate::ProveFixture;
use std::time::{Duration, Instant};
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::IncrementalMerkleTree;
use wakurln_crypto::poseidon;
use wakurln_rln::{verify_signal, verify_signal_batch, Signal, SignalValidity};
use wakurln_zksnark::{RlnCircuit, RlnWitness, SimSnark};

/// Configuration for one report run.
#[derive(Clone, Copy, Debug)]
pub struct ReportConfig {
    /// Wall-clock budget per measured section.
    pub section_budget: Duration,
    /// Membership tree depth for the proving/verification sections.
    pub tree_depth: usize,
    /// Leaves per batched Merkle append.
    pub merkle_batch: usize,
    /// Signals per verification batch.
    pub verify_batch: usize,
}

impl Default for ReportConfig {
    fn default() -> ReportConfig {
        ReportConfig {
            section_budget: Duration::from_millis(1500),
            tree_depth: 16,
            merkle_batch: 1024,
            verify_batch: 32,
        }
    }
}

/// The measured throughput numbers (also see `BENCH_crypto.json`).
#[derive(Clone, Debug)]
pub struct CryptoReport {
    /// Fast-path width-3 Poseidon permutations per second.
    pub poseidon_fast_hashes_per_sec: f64,
    /// Reference width-3 Poseidon permutations per second.
    pub poseidon_reference_hashes_per_sec: f64,
    /// Fast ÷ reference.
    pub poseidon_speedup: f64,
    /// Leaves per second through `append_batch` (depth-20 tree).
    pub batch_append_leaves_per_sec: f64,
    /// Leaves per second through sequential `append` (depth-20 tree).
    pub sequential_append_leaves_per_sec: f64,
    /// Batched ÷ sequential.
    pub batch_append_speedup: f64,
    /// Poseidon invocations for one sequential 1024-leaf ingest.
    pub sequential_hash_invocations_per_1024: u64,
    /// Poseidon invocations for one batched 1024-leaf ingest.
    pub batched_hash_invocations_per_1024: u64,
    /// Sequential ÷ batched invocation counts.
    pub hash_invocation_ratio: f64,
    /// Single-threaded proofs per second.
    pub prove_per_sec: f64,
    /// Proofs per second through the parallel `prove_batch` path.
    pub prove_batch_per_sec: f64,
    /// Single verifications per second.
    pub verify_per_sec: f64,
    /// Verifications per second through `verify_signal_batch`.
    pub verify_batch_per_sec: f64,
    /// Tree depth the proving sections used.
    pub tree_depth: usize,
    /// Worker threads available to the parallel paths.
    pub threads: usize,
}

/// Runs `op` (which reports how many units it processed) until `budget`
/// elapses; returns units per second.
fn units_per_sec(budget: Duration, mut op: impl FnMut() -> usize) -> f64 {
    op(); // warm-up, untimed
    let start = Instant::now();
    let mut units = 0usize;
    loop {
        units += op();
        if start.elapsed() >= budget {
            break;
        }
    }
    units as f64 / start.elapsed().as_secs_f64()
}

/// Runs the full measurement suite.
pub fn run(config: ReportConfig) -> CryptoReport {
    let budget = config.section_budget;

    // -- Poseidon: fast vs reference ------------------------------------
    let fast_params = poseidon::fast_params(3);
    let reference_params = poseidon::params(3);
    let mut state = [Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)];
    let poseidon_fast = units_per_sec(budget, || {
        for _ in 0..64 {
            poseidon::permute_fast::<3>(fast_params, &mut state);
        }
        64
    });
    let mut ref_state = vec![Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)];
    let poseidon_reference = units_per_sec(budget, || {
        for _ in 0..64 {
            poseidon::permute_with(reference_params, &mut ref_state);
        }
        64
    });

    // -- Merkle ingestion: batched vs sequential ------------------------
    let depth = 20;
    let leaves: Vec<Fr> = (0..config.merkle_batch as u64).map(Fr::from_u64).collect();
    let mut batch_tree = IncrementalMerkleTree::new(depth).expect("depth ok");
    let batch_append = units_per_sec(budget, || {
        if batch_tree.capacity() - batch_tree.len() < leaves.len() as u64 {
            batch_tree = IncrementalMerkleTree::new(depth).expect("depth ok");
        }
        batch_tree.append_batch(&leaves).expect("capacity");
        leaves.len()
    });
    let mut seq_tree = IncrementalMerkleTree::new(depth).expect("depth ok");
    let sequential_append = units_per_sec(budget, || {
        if seq_tree.capacity() - seq_tree.len() < leaves.len() as u64 {
            seq_tree = IncrementalMerkleTree::new(depth).expect("depth ok");
        }
        for leaf in &leaves {
            seq_tree.append(*leaf).expect("capacity");
        }
        leaves.len()
    });

    // hash-invocation accounting at the canonical batch size 1024
    let leaves_1024: Vec<Fr> = (0..1024u64).map(Fr::from_u64).collect();
    let mut tree = IncrementalMerkleTree::new(depth).expect("depth ok");
    let before = poseidon::permutation_count();
    for leaf in &leaves_1024 {
        tree.append(*leaf).expect("capacity");
    }
    let sequential_invocations = poseidon::permutation_count() - before;
    let mut tree = IncrementalMerkleTree::new(depth).expect("depth ok");
    let before = poseidon::permutation_count();
    tree.append_batch(&leaves_1024).expect("capacity");
    let batched_invocations = poseidon::permutation_count() - before;

    // -- Proving --------------------------------------------------------
    let mut fixture = ProveFixture::new(config.tree_depth, 8, 42);
    let mut epoch = 0u64;
    let prove = units_per_sec(budget, || {
        epoch += 1;
        let _ = fixture.signal(epoch, b"bench-prove");
        1
    });

    let proof = fixture.tree.own_proof().expect("registered");
    let root = fixture.tree.root();
    let jobs: Vec<_> = (0..config.verify_batch as u64)
        .map(|i| {
            let (public, _) = RlnCircuit::derive_public(
                fixture.identity.secret(),
                root,
                Fr::from_u64(10_000 + i),
                Fr::from_u64(i),
            );
            (public, RlnWitness::new(fixture.identity.secret(), &proof))
        })
        .collect();
    let prove_batch = units_per_sec(budget, || {
        let results = SimSnark::prove_batch(&fixture.proving_key, &jobs, &mut fixture.rng);
        assert!(results.iter().all(Result::is_ok), "batch prove failed");
        results.len()
    });

    // -- Verification ---------------------------------------------------
    let signals: Vec<Signal> = (0..config.verify_batch as u64)
        .map(|i| fixture.signal(20_000 + i, b"bench-verify"))
        .collect();
    let vk = fixture.verifying_key.clone();
    let verify = units_per_sec(budget, || {
        let validity = verify_signal(&vk, root, &signals[0]);
        assert_eq!(validity, SignalValidity::Valid);
        1
    });
    let refs: Vec<&Signal> = signals.iter().collect();
    let verify_batch = units_per_sec(budget, || {
        let verdicts = verify_signal_batch(&vk, root, &refs);
        assert!(verdicts.iter().all(|v| *v == SignalValidity::Valid));
        verdicts.len()
    });

    CryptoReport {
        poseidon_fast_hashes_per_sec: poseidon_fast,
        poseidon_reference_hashes_per_sec: poseidon_reference,
        poseidon_speedup: poseidon_fast / poseidon_reference,
        batch_append_leaves_per_sec: batch_append,
        sequential_append_leaves_per_sec: sequential_append,
        batch_append_speedup: batch_append / sequential_append,
        sequential_hash_invocations_per_1024: sequential_invocations,
        batched_hash_invocations_per_1024: batched_invocations,
        hash_invocation_ratio: sequential_invocations as f64 / batched_invocations as f64,
        prove_per_sec: prove,
        prove_batch_per_sec: prove_batch,
        verify_per_sec: verify,
        verify_batch_per_sec: verify_batch,
        tree_depth: config.tree_depth,
        threads: wakurln_zksnark::parallel::max_threads(),
    }
}

impl CryptoReport {
    /// Serializes as a flat JSON object (hand-rolled; the workspace has no
    /// serde data formats).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut field = |key: &str, value: String| {
            out.push_str(&format!("  \"{key}\": {value},\n"));
        };
        field(
            "poseidon_fast_hashes_per_sec",
            format!("{:.1}", self.poseidon_fast_hashes_per_sec),
        );
        field(
            "poseidon_reference_hashes_per_sec",
            format!("{:.1}", self.poseidon_reference_hashes_per_sec),
        );
        field("poseidon_speedup", format!("{:.3}", self.poseidon_speedup));
        field(
            "batch_append_leaves_per_sec",
            format!("{:.1}", self.batch_append_leaves_per_sec),
        );
        field(
            "sequential_append_leaves_per_sec",
            format!("{:.1}", self.sequential_append_leaves_per_sec),
        );
        field(
            "batch_append_speedup",
            format!("{:.3}", self.batch_append_speedup),
        );
        field(
            "sequential_hash_invocations_per_1024",
            self.sequential_hash_invocations_per_1024.to_string(),
        );
        field(
            "batched_hash_invocations_per_1024",
            self.batched_hash_invocations_per_1024.to_string(),
        );
        field(
            "hash_invocation_ratio",
            format!("{:.3}", self.hash_invocation_ratio),
        );
        field("prove_per_sec", format!("{:.2}", self.prove_per_sec));
        field(
            "prove_batch_per_sec",
            format!("{:.2}", self.prove_batch_per_sec),
        );
        field("verify_per_sec", format!("{:.1}", self.verify_per_sec));
        field(
            "verify_batch_per_sec",
            format!("{:.1}", self.verify_batch_per_sec),
        );
        field("tree_depth", self.tree_depth.to_string());
        out.push_str(&format!("  \"threads\": {}\n}}\n", self.threads));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance smoke test: every field of `BENCH_crypto.json` is
    /// present and positive, the batched append saves ≥ 5× the hash
    /// invocations at batch size 1024, and the JSON schema is stable.
    #[test]
    fn report_fields_present_and_positive() {
        let report = run(ReportConfig {
            section_budget: Duration::from_millis(5),
            tree_depth: 10,
            merkle_batch: 64,
            verify_batch: 4,
        });
        assert!(report.poseidon_fast_hashes_per_sec > 0.0);
        assert!(report.poseidon_reference_hashes_per_sec > 0.0);
        assert!(report.poseidon_speedup > 0.0);
        assert!(report.batch_append_leaves_per_sec > 0.0);
        assert!(report.sequential_append_leaves_per_sec > 0.0);
        assert!(report.batch_append_speedup > 0.0);
        assert!(report.sequential_hash_invocations_per_1024 > 0);
        assert!(report.batched_hash_invocations_per_1024 > 0);
        assert!(
            report.hash_invocation_ratio >= 5.0,
            "batched append must use ≥5× fewer hashes, got {:.2}×",
            report.hash_invocation_ratio
        );
        assert!(report.prove_per_sec > 0.0);
        assert!(report.prove_batch_per_sec > 0.0);
        assert!(report.verify_per_sec > 0.0);
        assert!(report.verify_batch_per_sec > 0.0);
        assert!(report.threads >= 1);

        let json = report.to_json();
        for key in [
            "poseidon_fast_hashes_per_sec",
            "poseidon_reference_hashes_per_sec",
            "poseidon_speedup",
            "batch_append_leaves_per_sec",
            "sequential_append_leaves_per_sec",
            "batch_append_speedup",
            "sequential_hash_invocations_per_1024",
            "batched_hash_invocations_per_1024",
            "hash_invocation_ratio",
            "prove_per_sec",
            "prove_batch_per_sec",
            "verify_per_sec",
            "verify_batch_per_sec",
            "tree_depth",
            "threads",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }
}
