//! `bench_sim` — emit `BENCH_sim.json`, the sharded-scheduler
//! thread-count sweep.
//!
//! ```text
//! bench_sim [--scenario NAME] [--nodes N] [--seed S]
//!           [--threads T1,T2,..] [--reps R] [--out PATH]
//! ```
//!
//! Defaults: `baseline`, 1000 nodes, seed 2022, threads `1,2,4,8`,
//! 1 repetition, `BENCH_sim.json`. Every thread count must reproduce the
//! same `ScenarioReport` byte for byte — the run aborts otherwise. See
//! `PERF.md` for how to read the numbers (notably: a 1-core host shows
//! ≈1.0× by construction).

use wakurln_bench::sim_report::{run, SimReportConfig};

fn usage() -> ! {
    eprintln!("usage: bench_sim [--scenario NAME] [--nodes N] [--seed S]");
    eprintln!("                 [--threads T1,T2,..] [--reps R] [--out PATH]");
    std::process::exit(2)
}

fn main() {
    let mut config = SimReportConfig::default();
    let mut out_path = "BENCH_sim.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rest = args.iter();
    while let Some(flag) = rest.next() {
        let mut value = |what: &str| -> String {
            rest.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        let parse_usize = |raw: String, what: &str| -> usize {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{what} needs an integer, got: {raw}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scenario" => config.scenario = value("--scenario"),
            "--nodes" => config.nodes = parse_usize(value("--nodes"), "--nodes"),
            "--seed" => config.seed = parse_usize(value("--seed"), "--seed") as u64,
            "--reps" => config.reps = parse_usize(value("--reps"), "--reps").max(1),
            "--threads" => {
                let raw = value("--threads");
                let parsed: Option<Vec<usize>> =
                    raw.split(',').map(|v| v.trim().parse().ok()).collect();
                match parsed {
                    Some(v) if !v.is_empty() => config.threads = v,
                    _ => {
                        eprintln!("--threads needs a comma-separated integer list, got: {raw}");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out_path = value("--out"),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    eprintln!(
        "bench_sim: {} @ {} nodes, seed {}, threads {:?}, {} rep(s)...",
        config.scenario, config.nodes, config.seed, config.threads, config.reps
    );
    let report = run(&config);
    eprint!("{}", report.summary());
    let json = report.to_json();
    print!("{json}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
