//! Emits `BENCH_pipeline.json`: batched validation pipeline vs the
//! serial §III validator on the relay wire workload (batch-size sweep,
//! wall-clock and modeled-cost throughput, tail latency, cache hit
//! rate). See `PERF.md` ("Batched validation") for the protocol.
//!
//! Usage: `cargo run --release -p wakurln-bench --bin bench_pipeline
//! [-- --dup-factor N] [--publishers N] [--rounds N] [--reps N]
//! [--out PATH]`.

use wakurln_bench::pipeline_report::{run, PipelineReportConfig};

fn main() {
    let mut config = PipelineReportConfig::default();
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut args = std::env::args().skip(1);
    let parse = |value: Option<String>, what: &str| -> usize {
        value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{what} needs an integer");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dup-factor" => config.dup_factor = parse(args.next(), "--dup-factor"),
            "--publishers" => config.publishers = parse(args.next(), "--publishers"),
            "--rounds" => config.rounds = parse(args.next(), "--rounds"),
            "--reps" => config.repetitions = parse(args.next(), "--reps"),
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_pipeline [--dup-factor N] [--publishers N] \
                     [--rounds N] [--reps N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "measuring batched validation: {} publishers x {} rounds, dup factor {}, {} reps...",
        config.publishers, config.rounds, config.dup_factor, config.repetitions
    );
    let report = run(config);
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write report");
    print!("{json}");
    eprintln!("wrote {out_path}");
    eprintln!(
        "wall: serial {:.0} msg/s -> batch-64 {:.0} msg/s ({:.2}x) | calibrated device: {:.1} -> {:.1} msg/s ({:.1}x) | {} proofs for {} frames ({:.0}% skipped)",
        report.serial_msgs_per_sec,
        report.msgs_per_sec_at_64,
        report.speedup_at_64,
        report.device_msgs_per_sec_serial,
        report.device_msgs_per_sec_at_64,
        report.modeled_cpu_speedup_at_64,
        report.proofs_verified_at_64,
        report.workload_messages,
        report.cache_hit_rate_at_64 * 100.0,
    );
}
