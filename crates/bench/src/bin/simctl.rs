//! `simctl` — run scenario simulations from the command line.
//!
//! ```text
//! simctl list
//! simctl run <scenario> [--nodes N] [--seed S] [--threads T] [--progress]
//!                       [--spam-rate PCT] [--churn-rate PCT]
//!                       [--adversary-fraction PCT] [--publish-jitter MS]
//!                       [--out PATH]
//! simctl sweep <scenario> --nodes N1,N2,.. [--seeds S1,S2,..] [--threads T]
//!                         [--spam-rate PCT] [--churn-rate PCT]
//!                         [--adversary-fraction PCT1,PCT2,..]
//!                         [--publish-jitter MS] [--out PATH]
//! simctl soak [--sim-hours H] [--checkpoint-every N] [--nodes N]
//!             [--seed S] [--threads T] [--out PATH]
//! ```
//!
//! `run` executes one built-in scenario (default 1000 nodes, seed 2022)
//! and prints its `ScenarioReport` JSON to stdout; `sweep` runs the
//! cartesian product of node counts, seeds and (when given) adversary
//! fractions, and prints a JSON array. `--adversary-fraction` sets the
//! colluding passive-observer share of the honest population (percent;
//! 0 disables surveillance) and `--publish-jitter` the publisher-side
//! first-hop forward-delay countermeasure — together they trace the
//! privacy/latency trade-off curve of the `anonymity_*` report section.
//! `--threads` sets the sharded scheduler's worker count (0 =
//! auto-detect; any value yields byte-identical reports), and
//! `--progress` prints per-simulated-second throughput to stderr so long
//! 10k-node runs are not silent. See `docs/SCENARIOS.md`.
//!
//! `soak` runs the simulated-days leak harness
//! (`wakurln_scenarios::soak`): `--sim-hours` simulated hours of
//! continuous traffic in one-hour segments, streaming one JSONL
//! [`SoakDelta`](wakurln_scenarios::SoakDelta) line per segment and
//! checkpointing the whole world by deep clone every
//! `--checkpoint-every` segments (each restored checkpoint must replay
//! byte-identical to the live run). Exits nonzero when a boundedness
//! invariant or a checkpoint replay fails.
//!
//! When a run's drain hard-stops with more events queued than the
//! steady-state timer load of a live mesh, `simctl` prints a warning and
//! exits nonzero (after emitting the report): the network did not
//! settle, so downstream consumers should not trust the tail metrics.

use wakurln_scenarios::soak::run_soak_bounded;
use wakurln_scenarios::{
    builtin, run_scenario, run_scenario_with_progress, ChurnAction, ChurnEvent, Progress,
    ScenarioReport, ScenarioSpec, SoakBounds, SoakConfig, SpamSpec, SurveillanceSpec,
    BUILTIN_NAMES,
};

fn usage() -> ! {
    eprintln!("usage: simctl list");
    eprintln!("       simctl run <scenario> [--nodes N] [--seed S] [--threads T] [--progress]");
    eprintln!("                             [--spam-rate PCT] [--churn-rate PCT]");
    eprintln!("                             [--adversary-fraction PCT] [--publish-jitter MS]");
    eprintln!("                             [--out PATH]");
    eprintln!("       simctl sweep <scenario> --nodes N1,N2,.. [--seeds S1,S2,..] [--threads T]");
    eprintln!("                               [--spam-rate PCT] [--churn-rate PCT]");
    eprintln!("                               [--adversary-fraction PCT1,PCT2,..]");
    eprintln!("                               [--publish-jitter MS] [--out PATH]");
    eprintln!("       simctl soak [--sim-hours H] [--checkpoint-every N] [--nodes N]");
    eprintln!("                   [--seed S] [--threads T] [--out PATH]");
    eprintln!("scenarios: {}", BUILTIN_NAMES.join(", "));
    std::process::exit(2)
}

/// CLI overrides applied on top of a built-in spec.
#[derive(Default)]
struct Overrides {
    /// Percentage of honest peers that double-signal (replaces the
    /// scenario's own spam block when set).
    spam_rate_pct: Option<f64>,
    /// Percentage of honest peers that crash mid-run (replaces the
    /// scenario's own churn schedule when set).
    churn_rate_pct: Option<f64>,
    /// Scheduler worker threads (0 = auto). Purely a wall-clock knob:
    /// reports are byte-identical for every value.
    threads: Option<usize>,
    /// Publisher-side first-hop forward-delay countermeasure,
    /// milliseconds (0 disables).
    publish_jitter_ms: Option<u64>,
}

fn apply_overrides(spec: &mut ScenarioSpec, overrides: &Overrides) {
    if let Some(threads) = overrides.threads {
        spec.threads = threads;
    }
    if let Some(jitter) = overrides.publish_jitter_ms {
        spec.publish_jitter_ms = jitter;
    }
    // rate 0 means "no attack" — the control row of a sweep — not "one
    // attacker"; only positive rates round up to at least one
    if let Some(pct) = overrides.spam_rate_pct {
        if pct <= 0.0 {
            spec.spam = None;
        } else {
            let spammers = ((spec.honest as f64 * pct / 100.0).round() as usize).max(1);
            spec.spam = Some(SpamSpec {
                spammers,
                burst: spec.spam.map(|s| s.burst).unwrap_or(6),
                at_ms: spec.spam.map(|s| s.at_ms).unwrap_or(15_000),
            });
            spec.drain_ms = spec.drain_ms.max(60_000);
        }
    }
    if let Some(pct) = overrides.churn_rate_pct {
        if pct <= 0.0 {
            spec.churn = Vec::new();
        } else {
            let peers = ((spec.honest as f64 * pct / 100.0).round() as usize).max(1);
            spec.churn = vec![ChurnEvent {
                at_ms: 20_000,
                action: ChurnAction::Crash { peers },
            }];
            spec.drain_ms = spec.drain_ms.max(60_000);
        }
    }
}

fn build_spec(
    name: &str,
    nodes: usize,
    seed: u64,
    adversary_fraction_pct: Option<f64>,
    overrides: &Overrides,
) -> ScenarioSpec {
    let Some(mut spec) = builtin(name, nodes, seed) else {
        eprintln!("unknown scenario: {name}");
        eprintln!("scenarios: {}", BUILTIN_NAMES.join(", "));
        std::process::exit(2);
    };
    apply_overrides(&mut spec, overrides);
    // swept axis: the colluding passive-observer share (percent). 0 is
    // the no-surveillance control row, mirroring --spam-rate semantics.
    if let Some(pct) = adversary_fraction_pct {
        if pct <= 0.0 {
            spec.surveillance = None;
        } else {
            spec.surveillance = Some(SurveillanceSpec {
                observer_fraction: pct / 100.0,
            });
        }
    }
    // an impossible flag combination (e.g. --nodes 1) is a usage error,
    // not a crash: map the spec validation panic to the exit-2 contract
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the backtrace banner out of stderr
    let check = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.validate()));
    std::panic::set_hook(default_hook);
    if let Err(panic) = check {
        let reason = panic
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| panic.downcast_ref::<&str>().copied())
            .unwrap_or("invalid scenario parameters");
        eprintln!("invalid parameters for {name}: {reason}");
        std::process::exit(2);
    }
    spec
}

fn parse_list(value: &str, what: &str) -> Vec<u64> {
    let parsed: Option<Vec<u64>> = value.split(',').map(|v| v.trim().parse().ok()).collect();
    match parsed {
        Some(v) if !v.is_empty() => v,
        _ => {
            eprintln!("{what} needs a comma-separated integer list, got: {value}");
            std::process::exit(2);
        }
    }
}

fn parse_f64_list(value: &str, what: &str) -> Vec<f64> {
    let parsed: Option<Vec<f64>> = value.split(',').map(|v| v.trim().parse().ok()).collect();
    match parsed {
        Some(v) if !v.is_empty() => v,
        _ => {
            eprintln!("{what} needs a comma-separated number list, got: {value}");
            std::process::exit(2);
        }
    }
}

fn emit(json: &str, out_path: Option<&str>) {
    print!("{json}");
    if let Some(path) = out_path {
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
}

/// How many events may legitimately sit in the queue when the drain's
/// hard stop fires: a live mesh keeps one armed heartbeat per peer (two
/// with the pipeline's flush timer) forever, plus headroom for timers
/// caught mid-rearm. Pending events beyond this mean the network was cut
/// off while real work — not steady-state timers — was still queued.
fn hard_stop_allowance(report: &ScenarioReport, spec: &ScenarioSpec) -> u64 {
    let live = report.peers_final_live;
    let timers_per_peer = if spec.pipeline.is_some() { 2 } else { 1 };
    live * timers_per_peer + live / 10 + 16
}

/// Warns on stderr when the drain hard-stopped with more than the
/// steady-state timer load still queued. Returns whether it did.
fn warn_on_hard_stop(report: &ScenarioReport, spec: &ScenarioSpec) -> bool {
    let allowance = hard_stop_allowance(report, spec);
    if report.drain_quiescent || report.drain_pending_events <= allowance {
        return false;
    }
    eprintln!(
        "warning: {} drain hard-stopped with {} events still queued \
         (steady-state allowance {} for {} live peers) — the network did not settle",
        report.scenario, report.drain_pending_events, allowance, report.peers_final_live,
    );
    true
}

/// Runs one spec, optionally streaming a per-simulated-second progress
/// line to stderr (throttled to roughly one line per wall-second).
fn execute(spec: &ScenarioSpec, progress: bool) -> wakurln_scenarios::ScenarioReport {
    if !progress {
        return run_scenario(spec);
    }
    let mut last_print_wall = 0u64;
    let mut last = (0u64, 0u64); // (sim_ms, events) at the last line
    run_scenario_with_progress(spec, |p: &Progress| {
        let due = p.wall_ms.saturating_sub(last_print_wall) >= 1_000 || p.sim_ms >= p.total_ms;
        if !due {
            return;
        }
        let dsim = p.sim_ms - last.0;
        let devents = p.events_dispatched - last.1;
        let events_per_sim_s = if dsim > 0 {
            devents as f64 * 1000.0 / dsim as f64
        } else {
            0.0
        };
        let wall_rate = if p.wall_ms > 0 {
            p.sim_ms as f64 / p.wall_ms as f64
        } else {
            0.0
        };
        eprintln!(
            "  progress: {:>6.1}s / {:.1}s sim | {} events | {:.0} events/sim-s | {:.2} sim-ms/wall-ms",
            p.sim_ms as f64 / 1000.0,
            p.total_ms as f64 / 1000.0,
            p.events_dispatched,
            events_per_sim_s,
            wall_rate,
        );
        last_print_wall = p.wall_ms;
        last = (p.sim_ms, p.events_dispatched);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        usage()
    };
    if command == "list" {
        for name in BUILTIN_NAMES {
            println!("{name}");
        }
        return;
    }
    if command == "soak" {
        run_soak_command(&args[1..]);
        return;
    }
    if command != "run" && command != "sweep" {
        usage();
    }
    let Some(scenario) = args.get(1).map(String::as_str) else {
        usage()
    };

    let mut nodes: Vec<u64> = vec![1000];
    let mut seeds: Vec<u64> = vec![2022];
    // None = keep the scenario's own surveillance block
    let mut adversary_fractions: Vec<Option<f64>> = vec![None];
    let mut overrides = Overrides::default();
    let mut out_path: Option<String> = None;
    let mut progress = false;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        let mut value = |what: &str| -> String {
            rest.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--nodes" => nodes = parse_list(&value("--nodes"), "--nodes"),
            "--seed" | "--seeds" => seeds = parse_list(&value("--seeds"), "--seeds"),
            "--spam-rate" => {
                overrides.spam_rate_pct = Some(value("--spam-rate").parse().unwrap_or_else(|_| {
                    eprintln!("--spam-rate needs a number (percent)");
                    std::process::exit(2);
                }))
            }
            "--churn-rate" => {
                overrides.churn_rate_pct =
                    Some(value("--churn-rate").parse().unwrap_or_else(|_| {
                        eprintln!("--churn-rate needs a number (percent)");
                        std::process::exit(2);
                    }))
            }
            "--threads" => {
                overrides.threads = Some(value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs an integer (0 = auto)");
                    std::process::exit(2);
                }))
            }
            "--adversary-fraction" => {
                adversary_fractions = parse_f64_list(
                    &value("--adversary-fraction"),
                    "--adversary-fraction (percent)",
                )
                .into_iter()
                .map(Some)
                .collect();
            }
            "--publish-jitter" => {
                overrides.publish_jitter_ms =
                    Some(value("--publish-jitter").parse().unwrap_or_else(|_| {
                        eprintln!("--publish-jitter needs an integer (milliseconds)");
                        std::process::exit(2);
                    }))
            }
            "--progress" => progress = true,
            "--out" => out_path = Some(value("--out")),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    if command == "run" {
        if nodes.len() != 1 || seeds.len() != 1 || adversary_fractions.len() != 1 {
            eprintln!(
                "`run` takes a single node count, seed and adversary fraction; \
                 use `sweep` for lists"
            );
            std::process::exit(2);
        }
        let spec = build_spec(
            scenario,
            nodes[0] as usize,
            seeds[0],
            adversary_fractions[0],
            &overrides,
        );
        eprintln!(
            "running {scenario}: {} peers, seed {}, {} ms simulated...",
            spec.initial_peers(),
            spec.seed,
            spec.duration_ms()
        );
        let report = execute(&spec, progress);
        eprintln!("{}", report.summary_line());
        emit(&report.to_json(), out_path.as_deref());
        if warn_on_hard_stop(&report, &spec) {
            std::process::exit(1);
        }
        return;
    }

    // sweep: cartesian product of node counts, seeds and adversary
    // fractions (the last axis is a single no-op entry unless
    // --adversary-fraction was given)
    let total = nodes.len() * seeds.len() * adversary_fractions.len();
    let mut reports = Vec::with_capacity(total);
    let mut hard_stopped = false;
    for n in &nodes {
        for s in &seeds {
            for f in &adversary_fractions {
                let spec = build_spec(scenario, *n as usize, *s, *f, &overrides);
                let observers = match spec.surveillance {
                    Some(_) => format!(", {} observers", spec.observer_count()),
                    None => String::new(),
                };
                eprintln!(
                    "[{}/{}] {scenario}: {} peers, seed {s}{observers}...",
                    reports.len() + 1,
                    total,
                    spec.initial_peers(),
                );
                let report = execute(&spec, progress);
                eprintln!("  {}", report.summary_line());
                hard_stopped |= warn_on_hard_stop(&report, &spec);
                reports.push(report);
            }
        }
    }
    let mut json = String::from("[\n");
    for (i, report) in reports.iter().enumerate() {
        // indent each object two spaces to keep the array readable
        let object = report.to_json();
        let object = object.trim_end();
        for line in object.lines() {
            json.push_str("  ");
            json.push_str(line);
            json.push('\n');
        }
        if i + 1 < reports.len() {
            json.truncate(json.trim_end().len());
            json.push_str(",\n");
        }
    }
    json.push_str("]\n");
    emit(&json, out_path.as_deref());
    if hard_stopped {
        std::process::exit(1);
    }
}

/// The `soak` subcommand: simulated-days leak harness with streaming
/// JSONL deltas and checkpoint/restore byte-identity verification.
fn run_soak_command(args: &[String]) {
    let mut config = SoakConfig::default();
    let mut out_path: Option<String> = None;
    let mut rest = args.iter();
    while let Some(flag) = rest.next() {
        let mut value = |what: &str| -> String {
            rest.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        let parse_u64 = |raw: String, what: &str| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{what} needs an integer, got: {raw}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--sim-hours" => {
                config.total_ms = parse_u64(value("--sim-hours"), "--sim-hours") * 3_600_000
            }
            "--checkpoint-every" => {
                config.checkpoint_every =
                    parse_u64(value("--checkpoint-every"), "--checkpoint-every")
            }
            "--nodes" => config.nodes = parse_u64(value("--nodes"), "--nodes") as usize,
            "--seed" => config.seed = parse_u64(value("--seed"), "--seed"),
            "--threads" => config.threads = parse_u64(value("--threads"), "--threads") as usize,
            "--out" => out_path = Some(value("--out")),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if config.nodes < 2 || config.segments() == 0 {
        eprintln!("soak needs at least 2 nodes and 1 simulated hour");
        std::process::exit(2);
    }
    eprintln!(
        "soaking {} peers for {} simulated hours (checkpoint every {} segments), seed {}...",
        config.nodes,
        config.total_ms / 3_600_000,
        config.checkpoint_every,
        config.seed,
    );
    let started = std::time::Instant::now();
    let mut lines = String::new();
    let outcome = run_soak_bounded(&config, &SoakBounds::default(), &mut |delta| {
        let line = delta.to_json_line();
        println!("{line}");
        lines.push_str(&line);
        lines.push('\n');
        eprintln!(
            "  segment {}/{}: sim {}h, {} published, {} delivered, nullifier max {} B{}",
            delta.segment + 1,
            config.segments(),
            delta.sim_ms / 3_600_000,
            delta.published,
            delta.deliveries,
            delta.nullifier_map_max_bytes,
            if delta.checkpoint_verified {
                " [checkpoint verified]"
            } else {
                ""
            },
        );
    });
    if let Some(path) = &out_path {
        std::fs::write(path, &lines).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
    eprintln!(
        "soak done: {} simulated hours, {} segments, {} checkpoints verified, \
         {} published, {} delivered, wall {:.1}s",
        outcome.sim_ms / 3_600_000,
        outcome.segments,
        outcome.checkpoints_verified,
        outcome.published,
        outcome.deliveries,
        started.elapsed().as_secs_f64(),
    );
    if !outcome.clean() {
        for v in &outcome.violations {
            eprintln!("violation: {v}");
        }
        std::process::exit(1);
    }
}
