//! Emits `BENCH_crypto.json`: throughput of the crypto-pipeline hot paths
//! (Poseidon fast vs reference, batched vs sequential Merkle ingestion,
//! proof generation, single vs batch verification).
//!
//! Usage: `cargo run --release -p wakurln-bench --bin bench_crypto
//! [-- --budget-ms N] [--out PATH]`. See `PERF.md` for the measurement
//! protocol.

use std::time::Duration;
use wakurln_bench::crypto_report::{run, ReportConfig};

fn main() {
    let mut config = ReportConfig::default();
    let mut out_path = String::from("BENCH_crypto.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget-ms" => {
                let Some(ms) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--budget-ms needs an integer (milliseconds)");
                    std::process::exit(2);
                };
                config.section_budget = Duration::from_millis(ms);
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                out_path = path;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_crypto [--budget-ms N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "measuring crypto pipeline (budget {:?}/section, depth {}, {} threads)...",
        config.section_budget,
        config.tree_depth,
        wakurln_zksnark::parallel::max_threads(),
    );
    let report = run(config);
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write report");
    print!("{json}");
    eprintln!("wrote {out_path}");
    eprintln!(
        "poseidon fast/reference: {:.2}x | merkle batch/seq: {:.2}x ({:.1}x fewer hashes) | prove batch/single: {:.2}x | verify batch/single: {:.2}x",
        report.poseidon_speedup,
        report.batch_append_speedup,
        report.hash_invocation_ratio,
        report.prove_batch_per_sec / report.prove_per_sec.max(f64::MIN_POSITIVE),
        report.verify_batch_per_sec / report.verify_per_sec.max(f64::MIN_POSITIVE),
    );
}
