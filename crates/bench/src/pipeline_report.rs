//! The `BENCH_pipeline.json` batched-validation throughput report.
//!
//! Measures the staged batch pipeline
//! ([`waku_rln_relay::pipeline`]) against the serial per-message
//! validator on a **relay wire workload**: the stream of RLN frames a
//! relay's validation layer must absorb, reproduced from the scenario
//! engine's traffic shape. Honest publishers send one unique signal per
//! epoch round; each signal crosses the validator `dup_factor` times —
//! the default of 6 matches the GossipSub mesh degree (`mesh_n`), i.e.
//! the fan-in a relay faces when message-id dedup above the validator is
//! bypassed (adversarially re-wrapped envelopes produce fresh message
//! ids around the same signal) or expired (`seen_ttl_ms`). A
//! double-signaling spam burst rides along, replayed at the same factor.
//!
//! The serial §III validator pays a full proof verification for every
//! copy; the pipeline resolves copies from its statement-digest cache
//! and batch-dedup before any zkSNARK work, so the sweep isolates
//! exactly what stage 2 buys. Outcome equality with the serial validator
//! is asserted on every run before numbers are reported.
//!
//! Two throughput series are emitted. The **wall-clock** series times
//! this process — but the simulated backend verifies with a µs-scale
//! MAC, three orders of magnitude cheaper than the ≈30 ms pairing check
//! the paper measures on devices, so wall-clock understates the win.
//! The **calibrated device** series (`device_msgs_per_sec_*`) prices
//! each message with the workspace's [`CostModel`] (full verification
//! charged only where the zkSNARK actually ran) — the apples-to-apples
//! relay-throughput comparison, consistent with every other E6/E9 CPU
//! number in this repository.

use std::time::{Duration, Instant};
use waku_rln_relay::{
    encode_signal, CostModel, EpochScheme, PipelineConfig, RlnValidator, ValidationStats,
    WireSignal,
};
use wakurln_gossipsub::{SubmitOutcome, Topic, Validator};
use wakurln_relay::WakuMessage;
use wakurln_rln::{create_signal, Identity, RlnGroup};
use wakurln_zksnark::{RlnCircuit, SimSnark};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for one report run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineReportConfig {
    /// Honest publishers per round.
    pub publishers: usize,
    /// Publish rounds (one epoch apart).
    pub rounds: usize,
    /// Copies of every signal crossing the validator (mesh fan-in /
    /// replay amplification).
    pub dup_factor: usize,
    /// Double-signaling spammers.
    pub spammers: usize,
    /// Distinct messages per spammer inside one epoch.
    pub spam_burst: usize,
    /// Membership tree depth.
    pub tree_depth: usize,
    /// Measurement repetitions per configuration (the best run is
    /// reported, damping scheduler noise on shared machines).
    pub repetitions: usize,
    /// Determinism seed for identities, proofs and stream shuffling.
    pub seed: u64,
}

impl Default for PipelineReportConfig {
    fn default() -> PipelineReportConfig {
        PipelineReportConfig {
            publishers: 24,
            rounds: 3,
            dup_factor: 6,
            spammers: 2,
            spam_burst: 4,
            tree_depth: 12,
            repetitions: 3,
            seed: 2022,
        }
    }
}

/// One row of the batch-size sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepRow {
    /// `max_batch` used.
    pub batch: usize,
    /// Wall-clock messages per second through the pipeline.
    pub msgs_per_sec: f64,
    /// Wall-clock speedup over the serial validator.
    pub speedup: f64,
    /// Modeled device CPU per message, microseconds (cost-model
    /// accounting: full verification charge only where the zkSNARK
    /// actually ran).
    pub modeled_cpu_per_msg: f64,
}

/// The measured pipeline numbers (also see `BENCH_pipeline.json`).
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Total frames in the wire workload.
    pub workload_messages: usize,
    /// Distinct signals in the workload.
    pub unique_signals: usize,
    /// Copies per signal.
    pub dup_factor: usize,
    /// Wall-clock messages per second through the serial validator.
    pub serial_msgs_per_sec: f64,
    /// 99th-percentile serial per-message validation latency, µs.
    pub serial_p99_us: f64,
    /// Modeled device CPU per message on the serial path, µs.
    pub serial_modeled_cpu_per_msg: f64,
    /// Messages per second a paper-calibrated device (§IV: ≈30 ms per
    /// proof verification) sustains on the serial path —
    /// `1e6 / serial_modeled_cpu_per_msg`. The simulation's wall clock
    /// replaces the pairing check with a µs-scale MAC, so this modeled
    /// series, not the wall-clock one, is the apples-to-apples
    /// relay-throughput claim.
    pub device_msgs_per_sec_serial: f64,
    /// Messages per second the calibrated device sustains through the
    /// pipeline at `max_batch = 64`.
    pub device_msgs_per_sec_at_64: f64,
    /// The batch-size sweep.
    pub sweep: Vec<SweepRow>,
    /// Wall-clock messages per second at `max_batch = 64`.
    pub msgs_per_sec_at_64: f64,
    /// Wall-clock speedup over serial at `max_batch = 64`.
    pub speedup_at_64: f64,
    /// 99th-percentile per-message decision latency inside a batch-64
    /// flush, µs (flush wall time ÷ batch length, tail over flushes).
    pub pipeline_p99_us_at_64: f64,
    /// Modeled CPU speedup at batch 64 (serial ÷ pipeline).
    pub modeled_cpu_speedup_at_64: f64,
    /// zkSNARK verifications the batch-64 run executed.
    pub proofs_verified_at_64: u64,
    /// Fraction of frames resolved without proof work at batch 64.
    pub cache_hit_rate_at_64: f64,
    /// Worker threads available to the batch verification fan-out.
    pub threads: usize,
}

/// The generated wire workload: arrival-stamped encoded frames plus the
/// validator template both measured paths start from.
struct Workload {
    /// `(arrival_ms, encoded WakuMessage frame)`, in arrival order.
    frames: Vec<(u64, Vec<u8>)>,
    unique: usize,
    validator: RlnValidator,
}

/// Builds the scenario-shaped wire workload (see module docs).
fn build_workload(config: &PipelineReportConfig) -> Workload {
    let scheme = EpochScheme::new(10, 20_000);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (pk, vk) = SimSnark::setup(RlnCircuit::new(config.tree_depth), &mut rng);
    let mut group = RlnGroup::new(config.tree_depth).expect("depth ok");
    let n_ids = config.publishers + config.spammers;
    let ids: Vec<(Identity, u64)> = (0..n_ids)
        .map(|_| {
            let id = Identity::random(&mut rng);
            let index = group.register(id.commitment()).expect("capacity");
            (id, index)
        })
        .collect();

    let wire = |member: usize, now_ms: u64, msg: &[u8], rng: &mut StdRng| -> WireSignal {
        let (id, index) = &ids[member];
        let epoch = scheme.epoch_at_ms(now_ms);
        let signal = create_signal(
            id,
            &group.membership_proof(*index).expect("member"),
            group.root(),
            &pk,
            scheme.to_field(epoch),
            msg,
            rng,
        )
        .expect("honest witness proves");
        WireSignal { epoch, signal }
    };

    // honest rounds: every publisher sends one unique message per epoch
    let mut uniques: Vec<(u64, WireSignal)> = Vec::new();
    for round in 0..config.rounds {
        let base = 11_000 + round as u64 * 10_000;
        for p in 0..config.publishers {
            let now = base + p as u64 % 1_000;
            let msg = format!("r{round}-p{p}");
            uniques.push((now, wire(p, now, msg.as_bytes(), &mut rng)));
        }
    }
    // the spam burst: each spammer double-signals `spam_burst` distinct
    // messages inside the first round's epoch
    for s in 0..config.spammers {
        for k in 0..config.spam_burst {
            let now = 12_000 + (s * config.spam_burst + k) as u64;
            let msg = format!("spam-{s}-{k}");
            uniques.push((
                now,
                wire(config.publishers + s, now, msg.as_bytes(), &mut rng),
            ));
        }
    }

    // replay-amplify: every signal crosses the validator dup_factor times
    let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
    for (now, w) in &uniques {
        let payload = encode_signal(w.epoch, &w.signal);
        for copy in 0..config.dup_factor {
            let frame = WakuMessage::new("/bench/1/chat/proto", payload.clone()).encode();
            frames.push((now + copy as u64 * 37, frame));
        }
    }
    // deterministic interleave, then restore arrival order
    frames.shuffle(&mut rng);
    frames.sort_by_key(|(now, _)| *now);

    let empty_validator = RlnValidator::new(vk, scheme, group.root(), CostModel::default());
    Workload {
        frames,
        unique: uniques.len(),
        validator: empty_validator,
    }
}

/// p99 of a latency sample set, in microseconds.
fn p99_us(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[(samples.len() - 1) * 99 / 100]
}

/// One serial measurement pass; returns (elapsed, p99 µs, modeled cost,
/// final stats).
fn run_serial(workload: &Workload) -> (Duration, f64, u64, ValidationStats) {
    let topic = Topic::new("t");
    let mut validator = workload.validator.clone();
    let mut latencies: Vec<f64> = Vec::with_capacity(workload.frames.len());
    let mut modeled = 0u64;
    let start = Instant::now();
    for (now, frame) in &workload.frames {
        let t0 = Instant::now();
        let _ = validator.validate(*now, &topic, frame);
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        modeled += validator.last_cost_micros();
    }
    let elapsed = start.elapsed();
    (elapsed, p99_us(&mut latencies), modeled, validator.stats())
}

/// One pipelined measurement pass at `max_batch = batch`.
struct PipedRun {
    elapsed: Duration,
    per_msg_p99_us: f64,
    modeled: u64,
    stats: ValidationStats,
    proofs_verified: u64,
    resolved_without_proof: u64,
}

fn run_piped(workload: &Workload, batch: usize) -> PipedRun {
    let topic = Topic::new("t");
    let mut validator = workload.validator.clone();
    validator.enable_pipeline(PipelineConfig {
        max_batch: batch,
        ..PipelineConfig::default()
    });
    let mut flush_latencies: Vec<f64> = Vec::new();
    let mut modeled = 0u64;
    let mut decided = 0usize;
    let start = Instant::now();
    for (now, frame) in &workload.frames {
        match validator.submit(*now, &topic, frame) {
            SubmitOutcome::Decided(_) => {
                decided += 1;
                modeled += validator.last_cost_micros();
            }
            SubmitOutcome::Deferred(_) => {}
        }
        if validator.flush_due() {
            let t0 = Instant::now();
            let decisions = validator.flush(*now);
            let dt = t0.elapsed().as_secs_f64() * 1e6;
            flush_latencies.push(dt / decisions.len().max(1) as f64);
            decided += decisions.len();
            modeled += decisions.iter().map(|d| d.cost_micros).sum::<u64>();
        }
    }
    let end = workload.frames.last().map(|(now, _)| *now).unwrap_or(0);
    let decisions = validator.flush(end);
    decided += decisions.len();
    modeled += decisions.iter().map(|d| d.cost_micros).sum::<u64>();
    let elapsed = start.elapsed();
    assert_eq!(decided, workload.frames.len(), "pipeline lost messages");
    let ps = validator.pipeline_stats().expect("pipeline enabled");
    PipedRun {
        elapsed,
        per_msg_p99_us: p99_us(&mut flush_latencies),
        modeled,
        stats: validator.stats(),
        proofs_verified: ps.proofs_verified,
        resolved_without_proof: ps.cache_hits + ps.batch_dedup_hits + ps.root_window_skips,
    }
}

/// Batch sizes the sweep visits.
pub const SWEEP_BATCHES: [usize; 6] = [1, 8, 16, 32, 64, 128];

/// Runs the full measurement suite.
///
/// # Panics
///
/// Panics if the pipeline's outcomes diverge from the serial validator
/// on the generated workload — the report must never describe a
/// non-equivalent configuration.
pub fn run(config: PipelineReportConfig) -> PipelineReport {
    let workload = build_workload(&config);
    let n = workload.frames.len();
    let reps = config.repetitions.max(1);

    let mut serial_best: Option<(Duration, f64, u64, ValidationStats)> = None;
    for _ in 0..reps {
        let run = run_serial(&workload);
        if serial_best.as_ref().is_none_or(|b| run.0 < b.0) {
            serial_best = Some(run);
        }
    }
    let (serial_elapsed, serial_p99, serial_modeled, serial_stats) =
        serial_best.expect("at least one repetition");
    let serial_mps = n as f64 / serial_elapsed.as_secs_f64();

    let mut sweep = Vec::new();
    let mut at_64: Option<PipedRun> = None;
    for batch in SWEEP_BATCHES {
        let mut best: Option<PipedRun> = None;
        for _ in 0..reps {
            let run = run_piped(&workload, batch);
            assert_eq!(
                run.stats, serial_stats,
                "pipeline diverged from serial at batch {batch}"
            );
            if best.as_ref().is_none_or(|b| run.elapsed < b.elapsed) {
                best = Some(run);
            }
        }
        let best = best.expect("at least one repetition");
        let mps = n as f64 / best.elapsed.as_secs_f64();
        sweep.push(SweepRow {
            batch,
            msgs_per_sec: mps,
            speedup: mps / serial_mps,
            modeled_cpu_per_msg: best.modeled as f64 / n as f64,
        });
        if batch == 64 {
            at_64 = Some(best);
        }
    }
    let at_64 = at_64.expect("sweep visits 64");
    let row_64 = sweep
        .iter()
        .find(|r| r.batch == 64)
        .copied()
        .expect("sweep visits 64");

    PipelineReport {
        workload_messages: n,
        unique_signals: workload.unique,
        dup_factor: config.dup_factor,
        serial_msgs_per_sec: serial_mps,
        serial_p99_us: serial_p99,
        serial_modeled_cpu_per_msg: serial_modeled as f64 / n as f64,
        device_msgs_per_sec_serial: 1e6 * n as f64 / serial_modeled as f64,
        device_msgs_per_sec_at_64: 1e6 * n as f64 / at_64.modeled.max(1) as f64,
        msgs_per_sec_at_64: row_64.msgs_per_sec,
        speedup_at_64: row_64.speedup,
        pipeline_p99_us_at_64: at_64.per_msg_p99_us,
        modeled_cpu_speedup_at_64: serial_modeled as f64 / at_64.modeled.max(1) as f64,
        proofs_verified_at_64: at_64.proofs_verified,
        cache_hit_rate_at_64: at_64.resolved_without_proof as f64 / n as f64,
        sweep,
        threads: wakurln_zksnark::parallel::max_threads(),
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

impl PipelineReport {
    /// Serializes as stable JSON (fixed field order and float format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"workload_messages\": {},\n",
            self.workload_messages
        ));
        out.push_str(&format!("  \"unique_signals\": {},\n", self.unique_signals));
        out.push_str(&format!("  \"dup_factor\": {},\n", self.dup_factor));
        out.push_str(&format!(
            "  \"serial_msgs_per_sec\": {},\n",
            json_f64(self.serial_msgs_per_sec)
        ));
        out.push_str(&format!(
            "  \"serial_p99_us\": {},\n",
            json_f64(self.serial_p99_us)
        ));
        out.push_str(&format!(
            "  \"serial_modeled_cpu_per_msg\": {},\n",
            json_f64(self.serial_modeled_cpu_per_msg)
        ));
        out.push_str(&format!(
            "  \"device_msgs_per_sec_serial\": {},\n",
            json_f64(self.device_msgs_per_sec_serial)
        ));
        out.push_str(&format!(
            "  \"device_msgs_per_sec_at_64\": {},\n",
            json_f64(self.device_msgs_per_sec_at_64)
        ));
        out.push_str("  \"sweep\": [\n");
        for (i, row) in self.sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"batch\": {}, \"msgs_per_sec\": {}, \"speedup\": {}, \"modeled_cpu_per_msg\": {}}}{}\n",
                row.batch,
                json_f64(row.msgs_per_sec),
                json_f64(row.speedup),
                json_f64(row.modeled_cpu_per_msg),
                if i + 1 < self.sweep.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"msgs_per_sec_at_64\": {},\n",
            json_f64(self.msgs_per_sec_at_64)
        ));
        out.push_str(&format!(
            "  \"speedup_at_64\": {},\n",
            json_f64(self.speedup_at_64)
        ));
        out.push_str(&format!(
            "  \"pipeline_p99_us_at_64\": {},\n",
            json_f64(self.pipeline_p99_us_at_64)
        ));
        out.push_str(&format!(
            "  \"modeled_cpu_speedup_at_64\": {},\n",
            json_f64(self.modeled_cpu_speedup_at_64)
        ));
        out.push_str(&format!(
            "  \"proofs_verified_at_64\": {},\n",
            self.proofs_verified_at_64
        ));
        out.push_str(&format!(
            "  \"cache_hit_rate_at_64\": {},\n",
            json_f64(self.cache_hit_rate_at_64)
        ));
        out.push_str(&format!("  \"threads\": {}\n", self.threads));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Schema smoke: a tiny workload exercises every field, outcome
    /// equality is asserted inside `run`, and the dedup stages must beat
    /// the serial path even at this size.
    #[test]
    fn report_schema_and_amortization_smoke() {
        let report = run(PipelineReportConfig {
            publishers: 4,
            rounds: 2,
            dup_factor: 4,
            spammers: 1,
            spam_burst: 2,
            tree_depth: 10,
            repetitions: 1,
            seed: 7,
        });
        assert_eq!(report.workload_messages, report.unique_signals * 4);
        assert!(report.serial_msgs_per_sec > 0.0);
        assert_eq!(report.sweep.len(), SWEEP_BATCHES.len());
        // duplicates never reach the verifier: exactly one verification
        // per unique signal
        assert_eq!(report.proofs_verified_at_64, report.unique_signals as u64);
        assert!(report.cache_hit_rate_at_64 > 0.5);
        // modeled amortization is deterministic: only uniques pay the
        // 30 ms verification charge
        assert!(report.modeled_cpu_speedup_at_64 > 2.0);
        assert!(report.device_msgs_per_sec_at_64 > report.device_msgs_per_sec_serial * 2.0);
        // wall-clock must not collapse (loose: shared-container noise)
        assert!(
            report.speedup_at_64 > 0.5,
            "batch 64 wall speedup only {:.2}",
            report.speedup_at_64
        );
        let json = report.to_json();
        for field in [
            "workload_messages",
            "serial_msgs_per_sec",
            "device_msgs_per_sec_serial",
            "device_msgs_per_sec_at_64",
            "sweep",
            "speedup_at_64",
            "modeled_cpu_speedup_at_64",
            "cache_hit_rate_at_64",
            "threads",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }
}
