//! # wakurln-bench
//!
//! Shared helpers for the experiment benches (`benches/e*.rs`), each of
//! which regenerates one row-set of the paper's evaluation (see
//! `EXPERIMENTS.md` at the workspace root for the experiment ↔ paper-claim
//! mapping).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crypto_report;
pub mod pipeline_report;
pub mod sim_report;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::SyncedPathTree;
use wakurln_rln::{create_signal, Identity, Signal};
use wakurln_zksnark::{ProvingKey, RlnCircuit, SimSnark, VerifyingKey};

/// Prints an experiment banner so bench output reads as a report.
pub fn banner(experiment: &str, claim: &str) {
    println!();
    println!("================================================================");
    println!("{experiment}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Prints one aligned table row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>18}")).collect();
    println!("{}", line.join(" |"));
}

/// A ready-made RLN proving fixture at a given tree depth.
///
/// Uses the O(depth) [`SyncedPathTree`] so fixtures scale to the paper's
/// depth-32 (2³²-member) groups without materializing the tree.
pub struct ProveFixture {
    /// The member identity.
    pub identity: Identity,
    /// The member's leaf index.
    pub index: u64,
    /// The light membership tree holding our own path.
    pub tree: SyncedPathTree,
    /// Proving key for the depth.
    pub proving_key: ProvingKey,
    /// Verifying key for the depth.
    pub verifying_key: VerifyingKey,
    /// Deterministic RNG for proof randomness.
    pub rng: StdRng,
}

impl ProveFixture {
    /// Builds the fixture. `depth` is the membership-tree depth (group
    /// capacity `2^depth`); `extra_members` other members register before
    /// us.
    pub fn new(depth: usize, extra_members: u64, seed: u64) -> ProveFixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let (proving_key, verifying_key) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let mut tree = SyncedPathTree::new(depth).expect("valid depth");
        for i in 0..extra_members {
            tree.apply_append(Fr::from_u64(10_000 + i))
                .expect("capacity");
        }
        let identity = Identity::random(&mut rng);
        let index = tree.register_own(identity.commitment()).expect("capacity");
        ProveFixture {
            identity,
            index,
            tree,
            proving_key,
            verifying_key,
            rng,
        }
    }

    /// Creates a signal for `message` in `epoch`.
    pub fn signal(&mut self, epoch: u64, message: &[u8]) -> Signal {
        create_signal(
            &self.identity,
            &self.tree.own_proof().expect("registered"),
            self.tree.root(),
            &self.proving_key,
            Fr::from_u64(epoch),
            message,
            &mut self.rng,
        )
        .expect("honest witness proves")
    }
}

/// Hashes a message to the field (re-export for benches).
pub fn message_hash(message: &[u8]) -> Fr {
    wakurln_crypto::poseidon::hash_bytes_to_field(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakurln_rln::{verify_signal, SignalValidity};

    #[test]
    fn fixture_produces_verifiable_signals() {
        let mut f = ProveFixture::new(10, 3, 1);
        let sig = f.signal(5, b"bench");
        assert_eq!(
            verify_signal(&f.verifying_key, f.tree.root(), &sig),
            SignalValidity::Valid
        );
    }

    #[test]
    fn fixture_scales_to_depth_32() {
        // the paper's 2^32 group size — O(depth) memory makes this cheap
        let mut f = ProveFixture::new(32, 100, 2);
        let sig = f.signal(1, b"deep");
        assert_eq!(
            verify_signal(&f.verifying_key, f.tree.root(), &sig),
            SignalValidity::Valid
        );
    }
}
