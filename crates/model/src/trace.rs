//! Adversarial trace harness: schedule generator, invariant checker,
//! delta-debugging shrinker and the line-based corpus format.
//!
//! A **trace** is a list of [`TraceStep`]s — abstract protocol inputs
//! (who signals, at what claimed epoch, which message, with a valid or
//! mutated proof, at what local time) that [`fabricate_input`] lowers
//! into concrete [`Input`]s using the real RLN share algebra
//! (`y = sk + a₁·x`, `φ = H(a₁)`), so double-signal reconstruction in
//! the model recovers real secrets. [`replay`] runs a trace through
//! [`crate::apply`] while checking four machine-readable invariants
//! after every step:
//!
//! 1. **Boundedness** — the nullifier map tracks only epochs within
//!    `Thr` of the newest locally observed insertion epoch (at most
//!    `2·Thr + 1` epochs), so per-peer state cannot leak (§III's
//!    bounded nullifier map).
//! 2. **At-most-one-verdict** — at most one `Accept` per
//!    `(member, epoch)` statement, ever (the rate limit itself).
//! 3. **Slashing soundness** — every detection corresponds to a
//!    ground-truth double-signal: the trace really contains two
//!    distinct proof-valid messages for that `(member, epoch)`, and
//!    the evidence re-derives the member's commitment.
//! 4. **GC safety** — garbage collection never drops an entry whose
//!    epoch is still inside the acceptance window of the current local
//!    epoch.
//!
//! [`generate_trace`] produces seeded adversarial schedules (epoch
//! skews, replays, mutated proofs, bursts and clock jumps);
//! [`shrink_trace`] delta-debugs a failing trace to a locally minimal
//! one; [`format_trace`]/[`parse_trace`] round-trip traces through the
//! plain-text corpus format replayed from `tests/corpus/` in CI.

use crate::machine::{apply, CostModel, Input, Outcome, State};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use wakurln_crypto::field::Fr;
use wakurln_crypto::poseidon;
use wakurln_crypto::shamir::share_on_line;
use wakurln_rln::{Identity, Signal};
use wakurln_zksnark::Proof;

use crate::epoch::EpochScheme;

/// The root every fabricated signal claims. The model never checks
/// roots itself (that is the stateless stage, summarized by
/// [`Input::proof_ok`]); states built by the harness use this root so
/// snapshots stay comparable.
pub const TRACE_ROOT: u64 = 1;

/// Static parameters of a trace: the epoch scheme and the membership
/// universe. Members are indexed `0..members`; each index maps to a
/// deterministic RLN identity, so traces are self-contained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceParams {
    /// Epoch length `T`, seconds.
    pub epoch_secs: u64,
    /// Maximum accepted clock skew + delay `D`, milliseconds
    /// (`Thr = ⌈D/T⌉`).
    pub max_delay_ms: u64,
    /// Number of distinct member identities the trace may use.
    pub members: usize,
}

impl TraceParams {
    /// The epoch scheme these parameters induce.
    pub fn scheme(&self) -> EpochScheme {
        EpochScheme::new(self.epoch_secs, self.max_delay_ms)
    }

    /// The deterministic identity of member `index` (derived by hashing
    /// a fixed tag with the index, so every replay of a trace sees the
    /// same secrets).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.members`.
    pub fn member_identity(&self, index: usize) -> Identity {
        assert!(index < self.members, "member index out of range");
        let sk = poseidon::hash2(Fr::from_u64(0x7261_6365), Fr::from_u64(index as u64));
        Identity::from_secret(sk)
    }

    /// A fresh model state matching these parameters (root
    /// [`TRACE_ROOT`], default cost model).
    pub fn initial_state(&self) -> State {
        State::new(
            self.scheme(),
            Fr::from_u64(TRACE_ROOT),
            CostModel::default(),
        )
    }
}

/// One abstract protocol input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// The receiving peer's local clock, milliseconds.
    pub now_ms: u64,
    /// Which member signals (index into the trace's identity universe).
    pub member: usize,
    /// The epoch number the sender claims (may be skewed off the local
    /// epoch, or a replay of a long-gone one).
    pub epoch: u64,
    /// Message selector: same `(member, epoch, msg)` is the same wire
    /// message (a gossip duplicate); same `(member, epoch)` with a
    /// different `msg` is a rate violation.
    pub msg: u64,
    /// Whether the stateless proof check passes. `false` models a
    /// mutated share / forged proof that verification catches.
    pub proof_ok: bool,
}

/// Lowers an abstract step into a concrete [`Input`] carrying a real
/// RLN signal: the member's true share on the line `y = sk + a₁·x` when
/// `proof_ok`, or a mutated share (which proof verification would
/// reject) when not.
pub fn fabricate_input(params: &TraceParams, step: &TraceStep) -> Input {
    let id = params.member_identity(step.member);
    let external = Fr::from_u64(step.epoch);
    let message = format!("m{}-e{}-{}", step.member, step.epoch, step.msg).into_bytes();
    let x = poseidon::hash_bytes_to_field(&message);
    let slope = id.slope_for(external);
    let mut share = share_on_line(id.secret(), slope, x);
    if !step.proof_ok {
        // a mutated share: off the member's line, so the zkSNARK check
        // the `proof_ok` bit summarizes would fail
        share.y += Fr::from_u64(1);
    }
    Input {
        now_ms: step.now_ms,
        epoch: step.epoch,
        signal: Signal {
            message,
            external_nullifier: external,
            internal_nullifier: id.internal_nullifier_for(external),
            share,
            root: Fr::from_u64(TRACE_ROOT),
            proof: Proof {
                elements: [[0u8; 32]; 4],
                binding: [0u8; 32],
            },
        },
        proof_ok: step.proof_ok,
        verify_cost: CostModel::default().verify_proof_micros,
    }
}

/// A broken invariant found while replaying a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Index of the step after which the invariant failed.
    pub step_index: usize,
    /// Human-readable description of the violated invariant.
    pub description: String,
}

/// Replays `steps` from a fresh state, checking the module-level
/// invariants after every step. Returns the final state, or the first
/// violation.
pub fn replay(params: &TraceParams, steps: &[TraceStep]) -> Result<State, InvariantViolation> {
    let mut state = params.initial_state();
    let thr = state.epoch_scheme.threshold();
    // ground truth: distinct proof-valid messages sent per statement
    let mut sent: HashMap<(usize, u64), HashSet<u64>> = HashMap::new();
    let mut accepted: HashSet<(usize, u64)> = HashSet::new();
    // newest local epoch at which an insertion actually happened
    let mut last_insert_epoch: Option<u64> = None;

    for (i, step) in steps.iter().enumerate() {
        let fail = |description: String| InvariantViolation {
            step_index: i,
            description,
        };
        let pre_counts: Vec<(u64, usize)> = state
            .nullifier_map
            .epoch_numbers()
            .map(|e| (e, state.nullifier_map.entries_at(e)))
            .collect();
        let detections_before = state.detections.len();

        let input = fabricate_input(params, step);
        let verdict = apply(&mut state, &input);

        let local = state.epoch_scheme.epoch_at_ms(step.now_ms);
        let inserted = step.proof_ok && state.epoch_scheme.within_window(local, step.epoch);
        if step.proof_ok {
            sent.entry((step.member, step.epoch))
                .or_default()
                .insert(step.msg);
        }
        if inserted {
            last_insert_epoch = Some(local);
        }

        // invariant 2: at most one Accept per (member, epoch)
        if verdict.outcome == Outcome::Accept && !accepted.insert((step.member, step.epoch)) {
            return Err(fail(format!(
                "second Accept for member {} epoch {}",
                step.member, step.epoch
            )));
        }

        // invariant 1: nullifier-map boundedness around the newest
        // insertion's local epoch
        if let Some(anchor) = last_insert_epoch {
            for e in state.nullifier_map.epoch_numbers() {
                if e.abs_diff(anchor) > thr {
                    return Err(fail(format!(
                        "tracked epoch {e} outside window [{}, {}]",
                        anchor.saturating_sub(thr),
                        anchor + thr
                    )));
                }
            }
        }
        let tracked = state.nullifier_map.tracked_epochs();
        if tracked as u64 > 2 * thr + 1 {
            return Err(fail(format!(
                "{tracked} epochs tracked, bound is {}",
                2 * thr + 1
            )));
        }

        // invariant 4: GC never drops an in-window entry. Insertion can
        // only grow a slot, so any shrink below the pre-step count for a
        // still-in-window epoch is a wrongful collection.
        for (e, count) in &pre_counts {
            if *e >= local.saturating_sub(thr) && state.nullifier_map.entries_at(*e) < *count {
                return Err(fail(format!(
                    "GC dropped entries for in-window epoch {e} (local {local}, thr {thr})"
                )));
            }
        }

        // invariant 3: slashing soundness
        if state.detections.len() > detections_before {
            // lint:allow(panic-path, reason = "guarded: this branch runs only when detections grew, so last() is the new entry")
            let detection = state.detections.last().expect("just pushed");
            let truth = sent.get(&(step.member, step.epoch));
            if truth.map_or(0, HashSet::len) < 2 {
                return Err(fail(format!(
                    "detection without a ground-truth double-signal for member {} epoch {}",
                    step.member, step.epoch
                )));
            }
            let id = params.member_identity(step.member);
            if detection.evidence.commitment != id.commitment() {
                return Err(fail(format!(
                    "evidence commitment does not re-derive member {}'s commitment",
                    step.member
                )));
            }
            if detection.evidence.revealed_secret != id.secret() {
                return Err(fail(format!(
                    "recovered secret is not member {}'s secret",
                    step.member
                )));
            }
        }
    }
    Ok(state)
}

/// Generates a seeded adversarial schedule of `len` steps: mostly
/// honest traffic with epoch skews up to `Thr + 2`, ~10% mutated
/// proofs, small message ranges (forcing duplicates and rate
/// violations), occasional multi-epoch clock jumps and occasional
/// replays of earlier steps at the current time.
pub fn generate_trace(params: &TraceParams, seed: u64, len: usize) -> Vec<TraceStep> {
    let scheme = params.scheme();
    let thr = scheme.threshold();
    let epoch_ms = params.epoch_secs * 1000;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_5eed_7ace_0005_u64);
    let mut now_ms: u64 = 1_000;
    let mut steps: Vec<TraceStep> = Vec::with_capacity(len);
    for _ in 0..len {
        // clock: usually a small advance, sometimes a multi-epoch jump
        now_ms += if rng.gen_bool(0.05) {
            rng.gen_range(epoch_ms..=epoch_ms * (thr + 3))
        } else {
            rng.gen_range(0..=epoch_ms / 2)
        };
        if rng.gen_bool(0.1) {
            if let Some(prior) = steps.get(rng.gen_range(0..steps.len().max(1))).copied() {
                // replay an earlier wire message at the current time
                steps.push(TraceStep { now_ms, ..prior });
                continue;
            }
        }
        let local = scheme.epoch_at_ms(now_ms);
        let skew = rng.gen_range(0..=thr + 2);
        let epoch = if rng.gen_bool(0.5) {
            local + skew
        } else {
            local.saturating_sub(skew)
        };
        steps.push(TraceStep {
            now_ms,
            member: rng.gen_range(0..params.members),
            epoch,
            msg: rng.gen_range(0..4),
            proof_ok: rng.gen_bool(0.9),
        });
    }
    steps
}

/// Delta-debugging shrinker: given a trace for which `still_fails`
/// holds, returns a locally minimal sub-trace that still fails. Tries
/// removing exponentially shrinking chunks, then single steps, until a
/// fixed point.
pub fn shrink_trace(
    steps: &[TraceStep],
    mut still_fails: impl FnMut(&[TraceStep]) -> bool,
) -> Vec<TraceStep> {
    let mut current = steps.to_vec();
    debug_assert!(still_fails(&current));
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut shrunk = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                shrunk = true;
                // retry the same window against the shorter trace
            } else {
                start = end;
            }
        }
        if !shrunk {
            if chunk == 1 {
                return current;
            }
            chunk = chunk.div_ceil(2).max(1);
        }
    }
}

/// Serializes a trace in the corpus format: a header of
/// `epoch_secs` / `max_delay_ms` / `members` lines followed by one
/// `step <now_ms> <member> <epoch> <msg> <0|1>` line per step. Lines
/// starting with `#` and blank lines are comments.
pub fn format_trace(params: &TraceParams, steps: &[TraceStep]) -> String {
    let mut out = String::new();
    out.push_str(&format!("epoch_secs {}\n", params.epoch_secs));
    out.push_str(&format!("max_delay_ms {}\n", params.max_delay_ms));
    out.push_str(&format!("members {}\n", params.members));
    for s in steps {
        out.push_str(&format!(
            "step {} {} {} {} {}\n",
            s.now_ms,
            s.member,
            s.epoch,
            s.msg,
            u8::from(s.proof_ok)
        ));
    }
    out
}

/// Parses the corpus format written by [`format_trace`].
pub fn parse_trace(text: &str) -> Result<(TraceParams, Vec<TraceStep>), String> {
    let mut epoch_secs = None;
    let mut max_delay_ms = None;
    let mut members = None;
    let mut steps = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        // lint:allow(panic-path, reason = "guarded: blank lines are skipped above, so a first token exists")
        let key = words.next().expect("non-empty line has a first word");
        let mut next_u64 = |name: &str| -> Result<u64, String> {
            words
                .next()
                .ok_or_else(|| format!("line {}: missing {name}", lineno + 1))?
                .parse::<u64>()
                .map_err(|e| format!("line {}: bad {name}: {e}", lineno + 1))
        };
        match key {
            "epoch_secs" => epoch_secs = Some(next_u64("epoch_secs")?),
            "max_delay_ms" => max_delay_ms = Some(next_u64("max_delay_ms")?),
            "members" => members = Some(next_u64("members")?),
            "step" => {
                let now_ms = next_u64("now_ms")?;
                let member = next_u64("member")? as usize;
                let epoch = next_u64("epoch")?;
                let msg = next_u64("msg")?;
                let proof_ok = match next_u64("proof_ok")? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(format!(
                            "line {}: proof_ok must be 0/1, got {other}",
                            lineno + 1
                        ))
                    }
                };
                steps.push(TraceStep {
                    now_ms,
                    member,
                    epoch,
                    msg,
                    proof_ok,
                });
            }
            other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
        }
        if words.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
    }
    let params = TraceParams {
        epoch_secs: epoch_secs.ok_or("missing epoch_secs header")?,
        max_delay_ms: max_delay_ms.ok_or("missing max_delay_ms header")?,
        members: members.ok_or("missing members header")? as usize,
    };
    if params.epoch_secs == 0 {
        return Err("epoch_secs must be nonzero".into());
    }
    if params.members == 0 {
        return Err("members must be nonzero".into());
    }
    for (i, s) in steps.iter().enumerate() {
        if s.member >= params.members {
            return Err(format!("step {i}: member {} out of range", s.member));
        }
    }
    Ok((params, steps))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TraceParams {
        TraceParams {
            epoch_secs: 10,
            max_delay_ms: 20_000, // Thr = 2
            members: 4,
        }
    }

    #[test]
    fn fabricated_double_signal_recovers_the_secret() {
        let p = params();
        let local = p.scheme().epoch_at_ms(5_000);
        let steps = [
            TraceStep {
                now_ms: 5_000,
                member: 1,
                epoch: local,
                msg: 0,
                proof_ok: true,
            },
            TraceStep {
                now_ms: 5_500,
                member: 1,
                epoch: local,
                msg: 1,
                proof_ok: true,
            },
        ];
        let state = replay(&p, &steps).expect("no invariant violated");
        assert_eq!(state.detections.len(), 1);
        assert_eq!(
            state.detections[0].evidence.revealed_secret,
            p.member_identity(1).secret()
        );
    }

    #[test]
    fn generated_traces_uphold_all_invariants() {
        let p = params();
        for seed in 0..20 {
            let steps = generate_trace(&p, seed, 400);
            assert_eq!(steps.len(), 400);
            replay(&p, &steps).unwrap_or_else(|v| {
                panic!("seed {seed}: step {}: {}", v.step_index, v.description)
            });
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let p = params();
        assert_eq!(generate_trace(&p, 7, 100), generate_trace(&p, 7, 100));
        assert_ne!(generate_trace(&p, 7, 100), generate_trace(&p, 8, 100));
    }

    #[test]
    fn corpus_format_round_trips() {
        let p = params();
        let steps = generate_trace(&p, 3, 50);
        let text = format_trace(&p, &steps);
        let (p2, steps2) = parse_trace(&text).expect("parses");
        assert_eq!(p, p2);
        assert_eq!(steps, steps2);
    }

    #[test]
    fn parse_rejects_malformed_corpora() {
        assert!(parse_trace("step 1 0 0 0 1\n").is_err(), "missing header");
        let header = "epoch_secs 10\nmax_delay_ms 20000\nmembers 2\n";
        assert!(
            parse_trace(&format!("{header}step 1 5 0 0 1\n")).is_err(),
            "member range"
        );
        assert!(
            parse_trace(&format!("{header}step 1 0 0 0 2\n")).is_err(),
            "proof_ok"
        );
        assert!(
            parse_trace(&format!("{header}step 1 0 0 0\n")).is_err(),
            "arity"
        );
        assert!(
            parse_trace(&format!("{header}step 1 0 0 0 1 9\n")).is_err(),
            "trailing"
        );
        assert!(
            parse_trace(&format!("{header}bogus 3\n")).is_err(),
            "unknown key"
        );
        assert!(parse_trace("# only comments\n\n").is_err(), "empty");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\nepoch_secs 10\n\nmax_delay_ms 20000\nmembers 1\n# trailer\n";
        let (p, steps) = parse_trace(text).expect("parses");
        assert_eq!(p.members, 1);
        assert!(steps.is_empty());
    }

    #[test]
    fn shrinker_reaches_a_local_minimum() {
        let p = params();
        let local = p.scheme().epoch_at_ms(5_000);
        // plant a double-signal inside honest noise, then shrink against
        // "replay ends with a detection"
        let mut steps = generate_trace(&p, 11, 60);
        steps.retain(|s| !s.proof_ok || s.msg == 0); // remove organic doubles
        steps.push(TraceStep {
            now_ms: 600_000,
            member: 0,
            epoch: local + 60_000 / 10_000,
            msg: 1,
            proof_ok: true,
        });
        let fails = |t: &[TraceStep]| {
            replay(&p, t)
                .map(|s| !s.detections.is_empty())
                .unwrap_or(true)
        };
        // ensure the predicate actually holds before shrinking
        let steps = if fails(&steps) {
            steps
        } else {
            vec![
                TraceStep {
                    now_ms: 5_000,
                    member: 0,
                    epoch: local,
                    msg: 0,
                    proof_ok: true,
                },
                TraceStep {
                    now_ms: 5_100,
                    member: 0,
                    epoch: local,
                    msg: 1,
                    proof_ok: true,
                },
            ]
        };
        let shrunk = shrink_trace(&steps, fails);
        assert!(fails(&shrunk));
        assert!(shrunk.len() <= steps.len());
        // removing any single remaining step must break the predicate
        for i in 0..shrunk.len() {
            let mut cand = shrunk.clone();
            cand.remove(i);
            if !cand.is_empty() {
                assert!(!fails(&cand), "shrunk trace not 1-minimal at {i}");
            }
        }
    }

    #[test]
    fn member_identity_is_stable_and_bounded() {
        let p = params();
        assert_eq!(p.member_identity(0), p.member_identity(0));
        assert_ne!(p.member_identity(0), p.member_identity(1));
    }

    #[test]
    #[should_panic(expected = "member index out of range")]
    fn member_identity_out_of_range_panics() {
        params().member_identity(4);
    }
}
