//! The pure §III decision core: `step : (State, Input) → (State, Verdict)`.
//!
//! This is the exact decision logic every routing peer applies to a
//! decoded, proof-checked signal — epoch window, nullifier lookup,
//! double-signal share pairing, slashing-evidence construction and the
//! `Thr`-window GC — with every stateful effect confined to [`State`]
//! and every external fact (local clock reading, proof-verification
//! outcome, simulated verification cost) confined to [`Input`]. The
//! production `RlnValidator` delegates its stateful core to [`apply`];
//! the trace fuzzer in [`crate::trace`] drives the same function with
//! adversarial schedules.

use crate::epoch::EpochScheme;
use crate::nullifier_map::{NullifierMap, NullifierOutcome};
use std::collections::VecDeque;
use wakurln_crypto::field::Fr;
use wakurln_rln::SlashingEvidence;
use wakurln_rln::{analyze_double_signal, build_evidence, DoubleSignalOutcome, Signal};

/// Modeled per-check CPU costs in microseconds, used for the
/// resource-restricted-device accounting (E6/E9). Defaults follow the
/// paper's §IV numbers ("Proof verification run time is constant and takes
/// ≈ 30ms" on an iPhone 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One zkSNARK proof verification.
    pub verify_proof_micros: u64,
    /// One epoch comparison.
    pub epoch_check_micros: u64,
    /// One nullifier-map lookup + insert.
    pub nullifier_check_micros: u64,
    /// One secret reconstruction (two Shamir shares).
    pub reconstruct_micros: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            verify_proof_micros: 30_000,
            epoch_check_micros: 1,
            nullifier_check_micros: 5,
            reconstruct_micros: 100,
        }
    }
}

/// Why a message was dropped (or accepted) — per-counter statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Accepted and relayed.
    pub valid: u64,
    /// Undecodable payloads.
    pub malformed: u64,
    /// zkSNARK verification failures (incl. unknown roots).
    pub invalid_proof: u64,
    /// Epoch outside the `Thr` window.
    pub epoch_out_of_window: u64,
    /// Exact duplicates (same nullifier, same share).
    pub duplicates: u64,
    /// Double-signaling caught.
    pub spam_detected: u64,
}

/// A caught spammer, ready for on-chain slashing.
#[derive(Clone, Debug, PartialEq)]
pub struct SpamDetection {
    /// Contract-ready evidence (revealed secret + commitment).
    pub evidence: SlashingEvidence,
    /// Epoch number of the violation.
    pub epoch: u64,
}

/// The complete validation state of one routing peer, as the model sees
/// it. Everything the decision core reads or writes lives here; the
/// production validator holds exactly one of these (plus the verifying
/// key and batching machinery, which stay outside the model because
/// they never influence a verdict beyond the `proof_ok` input bit).
#[derive(Clone, Debug, PartialEq)]
pub struct State {
    /// The epoch scheme in force (`T`, `D`, therefore `Thr = ⌈D/T⌉`).
    pub epoch_scheme: EpochScheme,
    /// Modeled per-check CPU costs (pure accounting; never branches).
    pub cost: CostModel,
    /// Roots this peer currently accepts. A small window of recent roots
    /// (not just the latest) tolerates proofs generated moments before a
    /// membership change — the group-synchronization reality of §III.
    pub accepted_roots: VecDeque<Fr>,
    /// How many recent roots remain acceptable.
    pub root_window: usize,
    /// The windowed `(epoch, φ) → [sk]` double-signaling record.
    pub nullifier_map: NullifierMap,
    /// Caught spammers not yet drained by the host.
    pub detections: Vec<SpamDetection>,
    /// Cumulative per-verdict counters.
    pub stats: ValidationStats,
}

impl State {
    /// A fresh validator state; `initial_root` is the membership root
    /// known at startup (typically the empty tree).
    pub fn new(epoch_scheme: EpochScheme, initial_root: Fr, cost: CostModel) -> State {
        let mut accepted_roots = VecDeque::new();
        accepted_roots.push_back(initial_root);
        State {
            epoch_scheme,
            cost,
            accepted_roots,
            root_window: 8,
            nullifier_map: NullifierMap::new(),
            detections: Vec::new(),
            stats: ValidationStats::default(),
        }
    }

    /// Registers a new membership root (one per synced contract event).
    /// Keeps the last `root_window` roots acceptable; a repeat of the
    /// current root is a no-op.
    pub fn push_root(&mut self, root: Fr) {
        if self.accepted_roots.back() == Some(&root) {
            return;
        }
        self.accepted_roots.push_back(root);
        while self.accepted_roots.len() > self.root_window {
            self.accepted_roots.pop_front();
        }
    }

    /// The most recent root.
    ///
    /// # Panics
    ///
    /// Never panics: the window always holds at least one root.
    pub fn current_root(&self) -> Fr {
        // lint:allow(panic-path, reason = "the window is seeded with the genesis root and pruning stops at one entry")
        *self.accepted_roots.back().expect("never empty")
    }

    /// Whether `root` is inside the accepted-roots window right now.
    pub fn root_accepted(&self, root: &Fr) -> bool {
        self.accepted_roots.contains(root)
    }

    /// Sets how many recent roots remain acceptable (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn set_root_window(&mut self, window: usize) {
        assert!(window >= 1, "window must hold at least the current root");
        self.root_window = window;
        while self.accepted_roots.len() > window {
            self.accepted_roots.pop_front();
        }
    }

    /// Crash-recovery reset (a **cold** restart): the accepted-roots
    /// window collapses to `initial_root`, the nullifier map is emptied
    /// and undelivered detections are discarded. Cumulative
    /// [`ValidationStats`] survive — they model the operator's metrics
    /// store, which outlives the process.
    pub fn reset(&mut self, initial_root: Fr) {
        self.accepted_roots.clear();
        self.accepted_roots.push_back(initial_root);
        self.nullifier_map = NullifierMap::new();
        self.detections.clear();
    }
}

/// One input to the decision core: a decoded signal plus the external
/// facts the stateless stage established about it.
#[derive(Clone, Debug, PartialEq)]
pub struct Input {
    /// The peer's local clock reading, simulated milliseconds.
    pub now_ms: u64,
    /// The epoch number claimed by the sender (the raw external
    /// nullifier from the envelope).
    pub epoch: u64,
    /// The decoded signal (`external_nullifier = Fr::from_u64(epoch)`).
    pub signal: Signal,
    /// Whether the stateless stage passed: the proof root is in the
    /// accepted window and the zkSNARK proof + share binding verify.
    pub proof_ok: bool,
    /// Simulated CPU the caller actually spent on the stateless stage
    /// for this message (full proof verification serially; a cache probe
    /// when a batching pipeline skipped the zkSNARK).
    pub verify_cost: u64,
}

/// How the peer treats the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Valid — relay to mesh peers.
    Accept,
    /// Drop silently, no scoring penalty (stale epoch, exact duplicate).
    Ignore,
    /// Drop and penalize the sender (invalid proof, double-signal).
    Reject,
}

/// The verdict on one input: the routing outcome plus the simulated CPU
/// the decision charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// The routing outcome.
    pub outcome: Outcome,
    /// Total simulated CPU charged for this message, microseconds.
    pub cost_micros: u64,
}

/// [`apply`] over a borrowed signal — the allocation-free entry point
/// the production validator uses on its hot path. Behavior is identical
/// to building an [`Input`] with a cloned signal and calling [`apply`].
pub fn apply_signal(
    state: &mut State,
    now_ms: u64,
    epoch: u64,
    signal: &Signal,
    proof_ok: bool,
    verify_cost: u64,
) -> Verdict {
    let mut cost = 0;

    // 1. proof verification (root must be one the peer accepts)
    cost += verify_cost;
    if !proof_ok {
        state.stats.invalid_proof += 1;
        return Verdict {
            outcome: Outcome::Reject,
            cost_micros: cost,
        };
    }

    // 2. epoch window
    cost += state.cost.epoch_check_micros;
    let local_epoch = state.epoch_scheme.epoch_at_ms(now_ms);
    if !state.epoch_scheme.within_window(local_epoch, epoch) {
        state.stats.epoch_out_of_window += 1;
        // an honest-but-late relay is indistinguishable from a replay
        // attacker here; drop without scoring penalty
        return Verdict {
            outcome: Outcome::Ignore,
            cost_micros: cost,
        };
    }

    // 3. nullifier map
    cost += state.cost.nullifier_check_micros;
    let insert_outcome = state
        .nullifier_map
        .insert(epoch, signal.internal_nullifier, signal.share);
    state
        .nullifier_map
        .gc(local_epoch, state.epoch_scheme.threshold());
    let outcome = match insert_outcome {
        NullifierOutcome::Fresh => {
            state.stats.valid += 1;
            Outcome::Accept
        }
        NullifierOutcome::DuplicateMessage => {
            state.stats.duplicates += 1;
            Outcome::Ignore
        }
        NullifierOutcome::DoubleSignal { prior_share } => {
            cost += state.cost.reconstruct_micros;
            state.stats.spam_detected += 1;
            // rebuild the prior signal's share pair for reconstruction
            let mut prior = signal.clone();
            prior.share = prior_share;
            match analyze_double_signal(&prior, signal) {
                DoubleSignalOutcome::SecretRecovered(sk) => {
                    if let Some(evidence) = build_evidence(sk, signal) {
                        state.detections.push(SpamDetection { evidence, epoch });
                    }
                }
                DoubleSignalOutcome::Duplicate | DoubleSignalOutcome::InconsistentShares => {
                    // cannot happen for proof-verified signals: the
                    // circuit pins y to x, and distinct shares imply
                    // distinct x
                }
            }
            Outcome::Reject
        }
    };
    Verdict {
        outcome,
        cost_micros: cost,
    }
}

/// Applies one input to the state in place and returns the verdict —
/// the imperative form of [`step`]. `step(s, i)` and
/// `{ let mut s = s; let v = apply(&mut s, &i); (s, v) }` are the same
/// function.
pub fn apply(state: &mut State, input: &Input) -> Verdict {
    apply_signal(
        state,
        input.now_ms,
        input.epoch,
        &input.signal,
        input.proof_ok,
        input.verify_cost,
    )
}

/// The pure transition function: consumes a state and an input, returns
/// the successor state and the verdict. No RNG, no clocks, no I/O —
/// time is whatever [`Input::now_ms`] says it is.
pub fn step(mut state: State, input: Input) -> (State, Verdict) {
    let verdict = apply(&mut state, &input);
    (state, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{fabricate_input, TraceParams, TraceStep};

    fn params() -> TraceParams {
        TraceParams {
            epoch_secs: 10,
            max_delay_ms: 20_000, // Thr = 2
            members: 3,
        }
    }

    fn fresh_state(p: &TraceParams) -> State {
        State::new(p.scheme(), Fr::from_u64(1), CostModel::default())
    }

    fn input(p: &TraceParams, now_ms: u64, member: usize, epoch: u64, msg: u64) -> Input {
        fabricate_input(
            p,
            &TraceStep {
                now_ms,
                member,
                epoch,
                msg,
                proof_ok: true,
            },
        )
    }

    #[test]
    fn step_and_apply_agree() {
        let p = params();
        let local = p.scheme().epoch_at_ms(1_000);
        let mut applied = fresh_state(&p);
        let i = input(&p, 1_000, 0, local, 0);
        let v1 = apply(&mut applied, &i);
        let (stepped, v2) = step(fresh_state(&p), i);
        assert_eq!(v1, v2);
        assert_eq!(applied, stepped);
    }

    #[test]
    fn fresh_then_duplicate_then_double() {
        let p = params();
        let mut state = fresh_state(&p);
        let local = p.scheme().epoch_at_ms(1_000);
        let first = input(&p, 1_000, 0, local, 0);
        assert_eq!(apply(&mut state, &first).outcome, Outcome::Accept);
        assert_eq!(apply(&mut state, &first).outcome, Outcome::Ignore);
        assert_eq!(state.stats.duplicates, 1);
        let second = input(&p, 1_500, 0, local, 1);
        assert_eq!(apply(&mut state, &second).outcome, Outcome::Reject);
        assert_eq!(state.stats.spam_detected, 1);
        // the recovered secret is the member's actual secret
        assert_eq!(state.detections.len(), 1);
        assert_eq!(
            state.detections[0].evidence.revealed_secret,
            p.member_identity(0).secret()
        );
    }

    #[test]
    fn invalid_proof_rejected_without_state_change() {
        let p = params();
        let mut state = fresh_state(&p);
        let local = p.scheme().epoch_at_ms(1_000);
        let mut i = input(&p, 1_000, 0, local, 0);
        i.proof_ok = false;
        assert_eq!(apply(&mut state, &i).outcome, Outcome::Reject);
        assert_eq!(state.stats.invalid_proof, 1);
        assert!(state.nullifier_map.is_empty());
    }

    #[test]
    fn out_of_window_epoch_ignored_and_not_recorded() {
        let p = params();
        let mut state = fresh_state(&p);
        let local = p.scheme().epoch_at_ms(1_000);
        let i = input(&p, 1_000, 0, local + 5, 0);
        assert_eq!(apply(&mut state, &i).outcome, Outcome::Ignore);
        assert_eq!(state.stats.epoch_out_of_window, 1);
        assert!(state.nullifier_map.is_empty());
    }

    #[test]
    fn verdict_costs_follow_the_cost_model() {
        let p = params();
        let cost = CostModel::default();
        let mut state = fresh_state(&p);
        let local = p.scheme().epoch_at_ms(1_000);
        let accept = apply(&mut state, &input(&p, 1_000, 0, local, 0));
        assert_eq!(
            accept.cost_micros,
            cost.verify_proof_micros + cost.epoch_check_micros + cost.nullifier_check_micros
        );
        let double = apply(&mut state, &input(&p, 1_200, 0, local, 1));
        assert_eq!(
            double.cost_micros,
            cost.verify_proof_micros
                + cost.epoch_check_micros
                + cost.nullifier_check_micros
                + cost.reconstruct_micros
        );
    }

    #[test]
    fn root_window_is_bounded_and_resettable() {
        let p = params();
        let mut state = fresh_state(&p);
        for i in 0..20u64 {
            state.push_root(Fr::from_u64(100 + i));
        }
        assert_eq!(state.accepted_roots.len(), 8);
        assert!(state.root_accepted(&Fr::from_u64(119)));
        assert!(!state.root_accepted(&Fr::from_u64(100)));
        state.set_root_window(2);
        assert_eq!(state.accepted_roots.len(), 2);
        state.stats.valid = 7;
        state.reset(Fr::from_u64(1));
        assert_eq!(state.current_root(), Fr::from_u64(1));
        assert_eq!(state.accepted_roots.len(), 1);
        assert_eq!(state.stats.valid, 7, "stats survive a cold restart");
    }

    #[test]
    #[should_panic(expected = "window must hold at least the current root")]
    fn zero_root_window_rejected() {
        fresh_state(&params()).set_root_window(0);
    }
}
