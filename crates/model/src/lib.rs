//! # wakurln-model
//!
//! The model-checked protocol core of WAKU-RLN-RELAY
//! (*Privacy-Preserving Spam-Protected Gossip-Based Routing*, ICDCS
//! 2022): the §III routing-validation decision logic — epoch window,
//! nullifier lookup, double-signal share pairing, slashing-evidence
//! construction and window GC — extracted into a **pure transition
//! function**
//!
//! ```text
//! step : (State, Input) -> (State, Verdict)
//! ```
//!
//! with no RNG, no clocks and no I/O. Time enters only through
//! [`Input::now_ms`]; every other source of nondeterminism is outside
//! the model. The stateful `RlnValidator` in `waku-rln-relay` is a thin
//! wrapper over [`apply`] (the in-place form of [`step`]), so whatever
//! the trace fuzzer proves about this crate holds for the production
//! validator bit for bit — a property the equivalence suite in
//! `tests/model_equivalence.rs` enforces.
//!
//! Layout:
//!
//! * [`epoch`] — epochs as external nullifiers and the `Thr = ⌈D/T⌉`
//!   window (shared with the core crate, which re-exports it),
//! * [`nullifier_map`] — the windowed `(epoch, φ) → [sk]` record
//!   (likewise shared),
//! * [`machine`] — [`State`], [`Input`], [`Verdict`] and the
//!   transition function itself,
//! * [`trace`] — the adversarial schedule generator, the machine-read
//!   invariant checker, the delta-debugging shrinker and the
//!   line-based corpus format replayed from `tests/corpus/` in CI.
//!
//! This crate deliberately has **no dependency** on the network
//! simulator or the gossip layer: the model must stay runnable in
//! milliseconds, millions of steps at a time.
//!
//! # Example
//!
//! ```
//! use wakurln_model::{apply, EpochScheme, Input, Outcome, State, CostModel};
//! use wakurln_model::trace::{fabricate_input, TraceParams, TraceStep};
//! use wakurln_crypto::field::Fr;
//!
//! let params = TraceParams { epoch_secs: 10, max_delay_ms: 20_000, members: 2 };
//! let mut state = State::new(params.scheme(), Fr::from_u64(1), CostModel::default());
//! let step = TraceStep { now_ms: 1_000, member: 0, epoch: state.epoch_scheme.epoch_at_ms(1_000), msg: 0, proof_ok: true };
//! let verdict = apply(&mut state, &fabricate_input(&params, &step));
//! assert_eq!(verdict.outcome, Outcome::Accept);
//! assert_eq!(state.stats.valid, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod epoch;
pub mod machine;
pub mod nullifier_map;
pub mod trace;

pub use epoch::EpochScheme;
pub use machine::{
    apply, apply_signal, step, CostModel, Input, Outcome, SpamDetection, State, ValidationStats,
    Verdict,
};
pub use nullifier_map::{NullifierMap, NullifierOutcome};
