//! The nullifier map: windowed double-signaling detection state.
//!
//! §III: "each routing peer locally keeps a record of the secret key share
//! `[sk]` and the internal nullifier `φ` of all of its incoming messages
//! for the past `Thr` epochs. This list is called a nullifier map. The
//! routing peer checks every new message against this list to spot spam
//! messages i.e., messages with identical internal nullifiers. Note that
//! the nullifier map suffices to hold messages that belong to the last
//! `Thr` epochs because older messages are considered invalid by default."

use std::collections::{BTreeMap, HashMap};
use wakurln_crypto::field::Fr;
use wakurln_crypto::shamir::Share;

/// What inserting a signal's nullifier revealed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NullifierOutcome {
    /// First signal seen for this `(epoch, φ)` — the member's one allowed
    /// message.
    Fresh,
    /// Same nullifier with the *identical* share — a gossip duplicate of
    /// the same message, not a rate violation.
    DuplicateMessage,
    /// Same nullifier, different share point: double-signaling. Carries
    /// the previously recorded share, ready for secret reconstruction.
    DoubleSignal {
        /// The share recorded when the nullifier was first seen.
        prior_share: Share,
    },
}

/// The windowed `(epoch, φ) → [sk]` record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NullifierMap {
    /// epoch → (nullifier bytes → first-seen share)
    epochs: BTreeMap<u64, HashMap<[u8; 32], Share>>,
}

impl NullifierMap {
    /// Creates an empty map.
    pub fn new() -> NullifierMap {
        NullifierMap::default()
    }

    /// Records a signal's `(epoch, φ, [sk])`, reporting whether it is
    /// fresh, a duplicate, or a double-signal.
    pub fn insert(&mut self, epoch: u64, nullifier: Fr, share: Share) -> NullifierOutcome {
        let slot = self.epochs.entry(epoch).or_default();
        match slot.get(&nullifier.to_bytes_le()) {
            None => {
                slot.insert(nullifier.to_bytes_le(), share);
                NullifierOutcome::Fresh
            }
            Some(prior) if *prior == share => NullifierOutcome::DuplicateMessage,
            Some(prior) => NullifierOutcome::DoubleSignal {
                prior_share: *prior,
            },
        }
    }

    /// Drops every epoch older than `current_epoch − thr` (the paper's
    /// bounded-state property: older messages are epoch-invalid anyway).
    ///
    /// Runs on every validated message, so the common nothing-to-drop
    /// case returns before touching the tree (`split_off` would otherwise
    /// reallocate the map once per message on the relay hot path).
    pub fn gc(&mut self, current_epoch: u64, thr: u64) {
        let cutoff = current_epoch.saturating_sub(thr);
        match self.epochs.keys().next() {
            Some(oldest) if *oldest < cutoff => {
                self.epochs = self.epochs.split_off(&cutoff);
            }
            _ => {}
        }
    }

    /// Number of epochs currently tracked.
    pub fn tracked_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// The tracked epoch numbers in ascending order (the trace harness's
    /// boundedness and GC invariants quantify over these).
    pub fn epoch_numbers(&self) -> impl Iterator<Item = u64> + '_ {
        self.epochs.keys().copied()
    }

    /// Number of `(epoch, φ)` entries recorded for one epoch (0 when the
    /// epoch is not tracked).
    pub fn entries_at(&self, epoch: u64) -> usize {
        self.epochs.get(&epoch).map_or(0, HashMap::len)
    }

    /// Number of `(epoch, φ)` entries currently stored.
    pub fn len(&self) -> usize {
        self.epochs.values().map(HashMap::len).sum()
    }

    /// `true` when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes (epoch key + nullifier + share per
    /// entry) — the E8 memory series.
    pub fn memory_bytes(&self) -> usize {
        self.epochs.len() * 8 + self.len() * (32 + 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn share(x: u64, y: u64) -> Share {
        Share {
            x: Fr::from_u64(x),
            y: Fr::from_u64(y),
        }
    }

    #[test]
    fn fresh_then_duplicate_then_double() {
        let mut map = NullifierMap::new();
        let phi = Fr::from_u64(99);
        assert_eq!(map.insert(1, phi, share(1, 2)), NullifierOutcome::Fresh);
        assert_eq!(
            map.insert(1, phi, share(1, 2)),
            NullifierOutcome::DuplicateMessage
        );
        assert_eq!(
            map.insert(1, phi, share(3, 4)),
            NullifierOutcome::DoubleSignal {
                prior_share: share(1, 2)
            }
        );
    }

    #[test]
    fn same_nullifier_different_epochs_is_fresh() {
        let mut map = NullifierMap::new();
        let phi = Fr::from_u64(99);
        assert_eq!(map.insert(1, phi, share(1, 2)), NullifierOutcome::Fresh);
        assert_eq!(map.insert(2, phi, share(1, 2)), NullifierOutcome::Fresh);
    }

    #[test]
    fn different_members_same_epoch_coexist() {
        let mut map = NullifierMap::new();
        assert_eq!(
            map.insert(1, Fr::from_u64(10), share(1, 2)),
            NullifierOutcome::Fresh
        );
        assert_eq!(
            map.insert(1, Fr::from_u64(11), share(3, 4)),
            NullifierOutcome::Fresh
        );
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn gc_bounds_state_to_thr_epochs() {
        let mut map = NullifierMap::new();
        for epoch in 0..100 {
            map.insert(epoch, Fr::from_u64(epoch), share(epoch, 1));
        }
        map.gc(99, 2);
        assert_eq!(map.tracked_epochs(), 3); // epochs 97, 98, 99
        assert!(map.memory_bytes() < 100 * (32 + 64));
    }

    /// Pins the exact window boundary: the cutoff is
    /// `current_epoch - thr`, and an epoch **equal** to the cutoff
    /// SURVIVES — `gc` drops strictly-older epochs only. §III counts
    /// "the past `Thr` epochs" inclusive of the boundary: a message
    /// `thr` epochs old is still epoch-valid (`within_window` accepts
    /// `|local - epoch| <= thr`), so its double-signal record must
    /// still be around to catch a conflicting share. The corpus trace
    /// `tests/corpus/gc_boundary.trace` pins the same edge end-to-end.
    #[test]
    fn gc_keeps_the_epoch_at_the_exact_cutoff_and_drops_the_one_below() {
        let mut map = NullifierMap::new();
        for epoch in [97u64, 98, 99, 100] {
            map.insert(epoch, Fr::from_u64(epoch), share(epoch, 1));
        }
        // current = 100, thr = 2 ⇒ cutoff = 98
        map.gc(100, 2);
        assert_eq!(map.entries_at(97), 0, "below-cutoff epoch must be dropped");
        assert_eq!(map.entries_at(98), 1, "epoch == cutoff must survive");
        assert_eq!(map.entries_at(99), 1);
        assert_eq!(map.entries_at(100), 1);
        assert_eq!(map.epoch_numbers().collect::<Vec<_>>(), vec![98, 99, 100]);

        // the surviving boundary entry still detects a double-signal
        assert_eq!(
            map.insert(98, Fr::from_u64(98), share(98, 2)),
            NullifierOutcome::DoubleSignal {
                prior_share: share(98, 1)
            }
        );

        // gc is idempotent at the same clock: nothing further drops
        map.gc(100, 2);
        assert_eq!(map.epoch_numbers().collect::<Vec<_>>(), vec![98, 99, 100]);

        // one epoch later the boundary advances by exactly one
        map.gc(101, 2);
        assert_eq!(map.epoch_numbers().collect::<Vec<_>>(), vec![99, 100]);
    }

    #[test]
    fn gc_with_huge_thr_keeps_everything() {
        let mut map = NullifierMap::new();
        for epoch in 0..10 {
            map.insert(epoch, Fr::from_u64(epoch), share(epoch, 1));
        }
        map.gc(9, 1000);
        assert_eq!(map.tracked_epochs(), 10);
    }

    #[test]
    fn memory_grows_linearly_with_entries() {
        let mut map = NullifierMap::new();
        map.insert(1, Fr::from_u64(1), share(1, 1));
        let one = map.memory_bytes();
        map.insert(1, Fr::from_u64(2), share(2, 2));
        let two = map.memory_bytes();
        assert_eq!(two - one, 96);
    }

    proptest! {
        /// After gc at any point, no tracked epoch is outside the window.
        #[test]
        fn prop_window_invariant(
            inserts in proptest::collection::vec((0u64..50, any::<u64>()), 1..100),
            current in 0u64..60,
            thr in 0u64..5
        ) {
            let mut map = NullifierMap::new();
            for (epoch, nul) in inserts {
                map.insert(epoch, Fr::from_u64(nul), share(nul, 1));
            }
            map.gc(current, thr);
            for epoch in map.epochs.keys() {
                prop_assert!(*epoch >= current.saturating_sub(thr));
            }
        }

        /// Detection is order-independent for a pair of conflicting shares.
        #[test]
        fn prop_double_signal_detected_regardless_of_order(a in 1u64..1000, b in 1001u64..2000) {
            let phi = Fr::from_u64(7);
            let mut m1 = NullifierMap::new();
            m1.insert(1, phi, share(a, a));
            let r1 = m1.insert(1, phi, share(b, b));
            let mut m2 = NullifierMap::new();
            m2.insert(1, phi, share(b, b));
            let r2 = m2.insert(1, phi, share(a, a));
            let d1 = matches!(r1, NullifierOutcome::DoubleSignal { .. });
            let d2 = matches!(r2, NullifierOutcome::DoubleSignal { .. });
            prop_assert!(d1);
            prop_assert!(d2);
        }
    }
}
