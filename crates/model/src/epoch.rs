//! Epochs: the external nullifier of WAKU-RLN-RELAY.
//!
//! §III: "We use epoch as the external nullifier. epoch is defined as the
//! number of T seconds that elapsed since the Unix epoch. Peers monitor
//! the current epoch locally and are allowed to publish one message per
//! epoch." Routing peers drop messages whose epoch differs from their
//! local epoch by more than `Thr = D / T`, where `D` is the maximum
//! network delay — this stops a fresh registrant from spamming all past
//! epochs at once.

use serde::{Deserialize, Serialize};
use wakurln_crypto::field::Fr;

/// The epoch scheme: converts simulated wall-clock time to epoch numbers
/// and field elements, and performs the `Thr` window check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochScheme {
    /// Epoch length `T`, in seconds.
    pub epoch_secs: u64,
    /// Maximum assumed network delay `D`, in milliseconds.
    pub max_delay_ms: u64,
    /// Offset added to simulated time to produce UNIX-like timestamps
    /// (keeps epoch numbers realistic; value is arbitrary).
    pub unix_base_secs: u64,
}

impl Default for EpochScheme {
    fn default() -> EpochScheme {
        EpochScheme {
            epoch_secs: 10,
            max_delay_ms: 20_000,
            unix_base_secs: 1_700_000_000,
        }
    }
}

impl EpochScheme {
    /// Creates a scheme with the given `T` (seconds) and `D`
    /// (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_secs` is zero.
    pub fn new(epoch_secs: u64, max_delay_ms: u64) -> EpochScheme {
        assert!(epoch_secs > 0, "epoch length must be positive");
        EpochScheme {
            epoch_secs,
            max_delay_ms,
            ..EpochScheme::default()
        }
    }

    /// The epoch number at simulated time `now_ms`.
    pub fn epoch_at_ms(&self, now_ms: u64) -> u64 {
        (self.unix_base_secs + now_ms / 1000) / self.epoch_secs
    }

    /// The validation threshold `Thr = ceil(D / T)` in epochs.
    pub fn threshold(&self) -> u64 {
        self.max_delay_ms.div_ceil(self.epoch_secs * 1000)
    }

    /// The external-nullifier field element for an epoch number.
    pub fn to_field(&self, epoch: u64) -> Fr {
        Fr::from_u64(epoch)
    }

    /// Whether a message epoch is acceptable at local epoch `local`
    /// (§III: `|local − message| ≤ Thr`).
    pub fn within_window(&self, local: u64, message: u64) -> bool {
        local.abs_diff(message) <= self.threshold()
    }

    /// Simulated milliseconds remaining until the next epoch boundary.
    pub fn ms_to_next_epoch(&self, now_ms: u64) -> u64 {
        let period = self.epoch_secs * 1000;
        let abs_ms = self.unix_base_secs * 1000 + now_ms;
        period - (abs_ms % period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_advances_every_t_seconds() {
        let s = EpochScheme::new(10, 20_000);
        let e0 = s.epoch_at_ms(0);
        assert_eq!(s.epoch_at_ms(9_999), e0);
        assert_eq!(s.epoch_at_ms(10_000), e0 + 1);
        assert_eq!(s.epoch_at_ms(25_000), e0 + 2);
    }

    #[test]
    fn threshold_is_ceil_d_over_t() {
        assert_eq!(EpochScheme::new(10, 20_000).threshold(), 2);
        assert_eq!(EpochScheme::new(10, 20_001).threshold(), 3);
        assert_eq!(EpochScheme::new(10, 1).threshold(), 1);
        assert_eq!(EpochScheme::new(1, 500).threshold(), 1);
    }

    #[test]
    fn window_check_is_symmetric() {
        let s = EpochScheme::new(10, 20_000); // Thr = 2
        assert!(s.within_window(100, 100));
        assert!(s.within_window(100, 98));
        assert!(s.within_window(100, 102));
        assert!(!s.within_window(100, 97)); // replay from the past
        assert!(!s.within_window(100, 103)); // premature future epoch
    }

    #[test]
    fn field_encoding_is_injective_on_epochs() {
        let s = EpochScheme::default();
        assert_ne!(s.to_field(1), s.to_field(2));
    }

    #[test]
    fn ms_to_next_epoch_counts_down() {
        let s = EpochScheme::new(10, 0);
        // unix_base is a multiple of 10 in the default, so boundaries align
        let tti = s.ms_to_next_epoch(0);
        assert!(tti <= 10_000 && tti > 0);
        assert_eq!(s.ms_to_next_epoch(tti), 10_000);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_rejected() {
        let _ = EpochScheme::new(0, 1000);
    }

    proptest! {
        #[test]
        fn prop_epoch_monotone(t1 in 0u64..10_000_000, dt in 0u64..10_000_000) {
            let s = EpochScheme::default();
            prop_assert!(s.epoch_at_ms(t1 + dt) >= s.epoch_at_ms(t1));
        }

        #[test]
        fn prop_one_epoch_per_period(start in 0u64..1_000_000) {
            let s = EpochScheme::new(10, 0);
            let period = 10_000;
            prop_assert_eq!(s.epoch_at_ms(start) + 1, s.epoch_at_ms(start + period));
        }
    }
}
