//! # wakurln-gossipsub
//!
//! GossipSub v1.1 over the deterministic network simulator: mesh overlay
//! maintenance, eager push + lazy IHAVE/IWANT gossip, a sliding-window
//! message cache and v1.1 peer scoring.
//!
//! This is both the routing substrate of WAKU-RELAY / WAKU-RLN-RELAY and —
//! with scoring as the *only* defence — the baseline spam-protection
//! scheme the paper's §I critiques (experiment E6).
//!
//! * [`config`] — protocol and scoring parameters (including the
//!   liveness timeout behind churn repair),
//! * [`types`] — topics, message ids, RPC frames (incl. ping/pong
//!   keepalives), the message cache,
//! * [`score`] — the peer-score table,
//! * [`node`] — the protocol state machine with the [`Validator`] hook
//!   that WAKU-RLN-RELAY attaches its proof/epoch/nullifier checks to,
//!   plus mesh repair under churn (quiet peers are pinged, dead ones
//!   pruned and replaced at the next heartbeat).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod node;
pub mod score;
pub mod types;

pub use config::{GossipsubConfig, ScoringConfig};
pub use node::{
    AcceptAll, BatchDecision, Delivery, GossipsubNode, Observation, SubmitOutcome,
    ValidationResult, Validator,
};
pub use score::PeerScore;
pub use types::{MessageCache, MessageId, RawMessage, Rpc, Topic};
