//! GossipSub v1.1 peer scoring.
//!
//! The paper (§I) argues this mechanism — the state of the art adopted by
//! libp2p — "is prone to censorship and inexpensive attacks where millions
//! of bots can be deployed to send bulk messages": scores are *local*
//! knowledge, a spammer slashed by one peer is unknown to the rest of the
//! network, and fresh Sybil identities start with a clean slate. The
//! implementation here is both part of the routing substrate and the
//! baseline that E6 compares WAKU-RLN-RELAY against.

use crate::config::ScoringConfig;
use std::collections::HashMap;
use wakurln_netsim::NodeId;

/// Per-peer scoring counters.
#[derive(Clone, Debug, Default)]
struct PeerCounters {
    /// Heartbeats spent in any of our meshes (P1 input).
    heartbeats_in_mesh: f64,
    /// First deliveries of valid messages (P2 input).
    first_deliveries: f64,
    /// Invalid (validation-rejected) messages (P4 input).
    invalid_messages: f64,
    /// Whether the peer currently sits in at least one mesh.
    in_mesh: bool,
}

/// The local peer-score table.
#[derive(Clone, Debug)]
pub struct PeerScore {
    config: ScoringConfig,
    peers: HashMap<NodeId, PeerCounters>,
}

impl PeerScore {
    /// Creates a score table with the given parameters.
    pub fn new(config: ScoringConfig) -> PeerScore {
        PeerScore {
            config,
            peers: HashMap::new(),
        }
    }

    /// The scoring parameters in use.
    pub fn config(&self) -> &ScoringConfig {
        &self.config
    }

    /// Number of peers with score-tracking state. The table must track
    /// the peer set, not message volume — the soak harness holds it to
    /// that bound over simulated days.
    pub fn tracked_len(&self) -> usize {
        self.peers.len()
    }

    /// The tracked peers, in unspecified order (diagnostics: score
    /// extremes, table-boundedness checks).
    pub fn tracked_peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        // lint:allow(map-iteration, reason = "callers fold with order-independent min/max aggregates; keys carry no positional meaning")
        self.peers.keys().copied()
    }

    /// Computes a peer's current score.
    pub fn score(&self, peer: NodeId) -> f64 {
        let Some(c) = self.peers.get(&peer) else {
            return 0.0;
        };
        let p1 = c.heartbeats_in_mesh.min(
            self.config.time_in_mesh_cap / self.config.time_in_mesh_weight.max(f64::MIN_POSITIVE),
        ) * self.config.time_in_mesh_weight;
        let p1 = p1.min(self.config.time_in_mesh_cap);
        let p2 = c.first_deliveries.min(self.config.first_delivery_cap)
            * self.config.first_delivery_weight;
        let p4 = c.invalid_messages * c.invalid_messages * self.config.invalid_weight;
        p1 + p2 + p4
    }

    /// Marks a peer as (not) being in one of our meshes.
    pub fn set_in_mesh(&mut self, peer: NodeId, in_mesh: bool) {
        self.peers.entry(peer).or_default().in_mesh = in_mesh;
    }

    /// Records a first delivery of a valid message.
    pub fn record_first_delivery(&mut self, peer: NodeId) {
        self.peers.entry(peer).or_default().first_deliveries += 1.0;
    }

    /// Records an invalid message (validation rejected it).
    pub fn record_invalid(&mut self, peer: NodeId) {
        self.peers.entry(peer).or_default().invalid_messages += 1.0;
    }

    /// Heartbeat maintenance: time-in-mesh accrual and counter decay.
    pub fn heartbeat(&mut self) {
        // lint:allow(map-iteration, reason = "order-independent: per-peer counter decay; each entry is updated in isolation")
        for c in self.peers.values_mut() {
            if c.in_mesh {
                c.heartbeats_in_mesh += 1.0;
            }
            c.first_deliveries *= self.config.decay;
            c.invalid_messages *= self.config.decay;
            if c.first_deliveries < 0.01 {
                c.first_deliveries = 0.0;
            }
            if c.invalid_messages < 0.01 {
                c.invalid_messages = 0.0;
            }
        }
    }

    /// Whether we accept gossip (IHAVE/IWANT) from this peer.
    pub fn accepts_gossip(&self, peer: NodeId) -> bool {
        self.score(peer) >= self.config.gossip_threshold
    }

    /// Whether we forward/publish to this peer.
    pub fn accepts_publish(&self, peer: NodeId) -> bool {
        self.score(peer) >= self.config.publish_threshold
    }

    /// Whether the peer is graylisted (all RPC ignored).
    pub fn graylisted(&self, peer: NodeId) -> bool {
        self.score(peer) < self.config.graylist_threshold
    }

    /// Whether the peer should be evicted from meshes.
    pub fn should_evict(&self, peer: NodeId) -> bool {
        self.score(peer) < self.config.mesh_eviction_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PeerScore {
        PeerScore::new(ScoringConfig::default())
    }

    #[test]
    fn fresh_peer_scores_zero() {
        let s = table();
        assert_eq!(s.score(NodeId(1)), 0.0);
        assert!(!s.graylisted(NodeId(1)));
        assert!(s.accepts_publish(NodeId(1)));
    }

    #[test]
    fn deliveries_raise_score() {
        let mut s = table();
        for _ in 0..5 {
            s.record_first_delivery(NodeId(1));
        }
        assert!(s.score(NodeId(1)) > 0.0);
    }

    #[test]
    fn invalid_messages_sink_score_quadratically() {
        let mut s = table();
        s.record_invalid(NodeId(1));
        let one = s.score(NodeId(1));
        s.record_invalid(NodeId(1));
        let two = s.score(NodeId(1));
        assert!(one < 0.0);
        assert!(two < 4.0 * one + 1e-9, "quadratic: {two} vs {one}");
    }

    #[test]
    fn spammer_gets_graylisted_eventually() {
        let mut s = table();
        for _ in 0..10 {
            s.record_invalid(NodeId(1));
        }
        assert!(s.graylisted(NodeId(1)));
        assert!(s.should_evict(NodeId(1)));
        assert!(!s.accepts_gossip(NodeId(1)));
    }

    #[test]
    fn decay_forgives_over_time() {
        let mut s = table();
        for _ in 0..10 {
            s.record_invalid(NodeId(1));
        }
        assert!(s.graylisted(NodeId(1)));
        for _ in 0..200 {
            s.heartbeat();
        }
        // the Sybil weakness: time launders the bad score
        assert!(!s.graylisted(NodeId(1)));
    }

    #[test]
    fn time_in_mesh_is_capped() {
        let mut s = table();
        s.set_in_mesh(NodeId(1), true);
        for _ in 0..10_000 {
            s.heartbeat();
        }
        assert!(s.score(NodeId(1)) <= s.config().time_in_mesh_cap + 1e-9);
    }

    #[test]
    fn sybil_identity_resets_score() {
        // the paper's core criticism, demonstrated at unit level: a
        // graylisted attacker reappears as a new NodeId with score 0
        let mut s = table();
        for _ in 0..10 {
            s.record_invalid(NodeId(1));
        }
        assert!(s.graylisted(NodeId(1)));
        assert_eq!(s.score(NodeId(2)), 0.0);
        assert!(!s.graylisted(NodeId(2)));
    }
}
