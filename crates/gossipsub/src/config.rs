//! GossipSub protocol parameters (v1.1 defaults).

/// Mesh and gossip parameters, following the libp2p GossipSub v1.1
/// specification's defaults (the protocol the paper's §I cites as the
/// routing layer and whose peer-scoring it critiques as a spam defence).
#[derive(Clone, Copy, Debug)]
pub struct GossipsubConfig {
    /// Target mesh degree (`D`).
    pub mesh_n: usize,
    /// Lower bound on mesh degree (`D_lo`); grafts below it.
    pub mesh_n_low: usize,
    /// Upper bound on mesh degree (`D_hi`); prunes above it.
    pub mesh_n_high: usize,
    /// Number of peers IHAVE gossip is emitted to each heartbeat
    /// (`D_lazy`).
    pub gossip_lazy: usize,
    /// Milliseconds between heartbeats.
    pub heartbeat_ms: u64,
    /// Message-cache history windows kept (`mcache_len`).
    pub history_length: usize,
    /// Number of most recent windows gossiped (`mcache_gossip`).
    pub history_gossip: usize,
    /// Seen-cache time-to-live, milliseconds.
    pub seen_ttl_ms: u64,
    /// Maximum IHAVE ids answered with IWANT per heartbeat per peer
    /// (bounds the IWANT-flood attack surface). The same budget bounds
    /// the *serving* side: full payloads handed out of the mcache to one
    /// peer per heartbeat, no matter how many IWANT frames the ids are
    /// split across.
    pub max_iwant_per_heartbeat: usize,
    /// Source-anonymity countermeasure: every wire copy of an **own**
    /// published message — each first-hop eager push, and IWANT replies
    /// serving it from the mcache — is held back for an independent
    /// uniform delay in `[0, publish_jitter_ms]` drawn from the node's
    /// deterministic RNG stream. Decorrelates first-arrival timing from
    /// mesh adjacency, which is what first-spy / earliest-arrival
    /// attribution estimators key on (see the gossip-privacy analyses
    /// cited in `PAPERS.md`); covering the IWANT path too matters
    /// because the publisher's own IHAVE gossip would otherwise hand an
    /// observer an unjittered `from = publisher` forward on request.
    /// Relaying *others'* messages is never jittered. `0` disables the
    /// countermeasure.
    pub publish_jitter_ms: u64,
    /// Whether v1.1 peer scoring is active.
    pub scoring_enabled: bool,
    /// Backoff window after a PRUNE, milliseconds: a peer that pruned us
    /// (typically because its mesh sits at `D_hi`) is not re-grafted
    /// until the window expires, instead of on every heartbeat — the
    /// v1.1 `PruneBackoff`. Without it two nodes whose meshes disagree
    /// about capacity ping-pong GRAFT → PRUNE control frames once per
    /// heartbeat forever. `0` disables the backoff (the pre-v1.1
    /// behaviour the regression test pins down).
    pub prune_backoff_ms: u64,
    /// Liveness timeout: a mesh peer not heard from for this long is
    /// presumed crashed and pruned from the mesh and the peer-topic
    /// tables (the simulator has no connection teardown notifications, so
    /// churn repair relies on keepalives — see `Rpc::Ping`). Quiet peers
    /// are pinged at half this timeout. `0` disables liveness tracking.
    pub peer_timeout_ms: u64,
}

impl Default for GossipsubConfig {
    fn default() -> GossipsubConfig {
        GossipsubConfig {
            mesh_n: 6,
            mesh_n_low: 4,
            mesh_n_high: 12,
            gossip_lazy: 6,
            heartbeat_ms: 1_000,
            history_length: 5,
            history_gossip: 3,
            seen_ttl_ms: 120_000,
            max_iwant_per_heartbeat: 64,
            publish_jitter_ms: 0,
            prune_backoff_ms: 60_000,
            scoring_enabled: true,
            peer_timeout_ms: 30_000,
        }
    }
}

impl GossipsubConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when the degree bounds are inconsistent
    /// (`D_lo ≤ D ≤ D_hi`), or history windows are inconsistent.
    pub fn assert_valid(&self) {
        assert!(self.mesh_n_low <= self.mesh_n, "D_lo must be <= D");
        assert!(self.mesh_n <= self.mesh_n_high, "D must be <= D_hi");
        assert!(
            self.history_gossip <= self.history_length,
            "gossip windows must fit in history"
        );
        assert!(self.heartbeat_ms > 0, "heartbeat must be positive");
    }
}

/// Peer-scoring parameters (a pragmatic subset of the v1.1 score function:
/// P1 time-in-mesh, P2 first deliveries, P4 invalid messages, plus decay
/// and the standard acceptance thresholds).
#[derive(Clone, Copy, Debug)]
pub struct ScoringConfig {
    /// Weight of time-in-mesh (per heartbeat in mesh), capped (P1).
    pub time_in_mesh_weight: f64,
    /// Cap on the time-in-mesh contribution.
    pub time_in_mesh_cap: f64,
    /// Weight of first message deliveries (P2).
    pub first_delivery_weight: f64,
    /// Cap on counted first deliveries.
    pub first_delivery_cap: f64,
    /// Weight of invalid messages; applied to the squared counter (P4,
    /// negative contribution).
    pub invalid_weight: f64,
    /// Multiplicative decay applied to counters every heartbeat.
    pub decay: f64,
    /// Below this score a peer's gossip (IHAVE) is ignored.
    pub gossip_threshold: f64,
    /// Below this score we do not publish/forward to the peer.
    pub publish_threshold: f64,
    /// Below this score every RPC from the peer is ignored (graylist).
    pub graylist_threshold: f64,
    /// Peers with negative score are evicted from meshes at heartbeat.
    pub mesh_eviction_threshold: f64,
}

impl Default for ScoringConfig {
    fn default() -> ScoringConfig {
        ScoringConfig {
            time_in_mesh_weight: 0.01,
            time_in_mesh_cap: 3.0,
            first_delivery_weight: 1.0,
            first_delivery_cap: 100.0,
            invalid_weight: -10.0,
            decay: 0.9,
            gossip_threshold: -10.0,
            publish_threshold: -50.0,
            graylist_threshold: -80.0,
            mesh_eviction_threshold: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        GossipsubConfig::default().assert_valid();
    }

    #[test]
    #[should_panic(expected = "D_lo must be <= D")]
    fn inconsistent_degrees_panic() {
        GossipsubConfig {
            mesh_n_low: 10,
            mesh_n: 6,
            ..Default::default()
        }
        .assert_valid();
    }

    #[test]
    fn default_thresholds_are_ordered() {
        let s = ScoringConfig::default();
        assert!(s.graylist_threshold < s.publish_threshold);
        assert!(s.publish_threshold < s.gossip_threshold);
        assert!(s.gossip_threshold < s.mesh_eviction_threshold);
    }
}
