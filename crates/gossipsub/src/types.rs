//! Wire types and the message cache.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wakurln_netsim::{Bytes, Payload};

/// A pub/sub topic (peers congregate around topics, §I).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Topic(pub String);

impl Topic {
    /// Creates a topic from any string-like value.
    pub fn new(name: impl Into<String>) -> Topic {
        Topic(name.into())
    }
}

impl std::fmt::Display for Topic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Content-derived message identifier.
///
/// WAKU-RELAY strips all sender-identifying fields, so the id is a hash of
/// `(topic, data)` only — two peers publishing identical bytes produce the
/// same id (deduplicated), and nothing in the id links a message to its
/// origin.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MessageId(pub [u8; 32]);

impl MessageId {
    /// Computes the id for a `(topic, data)` pair.
    pub fn compute(topic: &Topic, data: &[u8]) -> MessageId {
        let mut h = wakurln_crypto::sha256::Sha256::new();
        h.update(topic.0.as_bytes());
        h.update(&[0]);
        h.update(data);
        MessageId(h.finalize())
    }
}

impl std::fmt::Debug for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg:")?;
        for b in &self.0[..6] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// A routed message: topic plus opaque payload. Deliberately carries **no
/// sender field, signature, or sequence number** — the anonymization
/// WAKU-RELAY applies to GossipSub messages (§I: "removing personally
/// identifiable information that binds a message to its owner").
///
/// The payload is [`Bytes`]: forwarding the message along the mesh clones
/// a reference count, not the payload itself.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawMessage {
    /// Destination topic.
    pub topic: Topic,
    /// Opaque payload (for WAKU-RLN-RELAY: a serialized RLN signal).
    pub data: Bytes,
}

impl RawMessage {
    /// The content-derived id.
    pub fn id(&self) -> MessageId {
        MessageId::compute(&self.topic, &self.data)
    }
}

/// GossipSub RPC frames exchanged between peers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Rpc {
    /// Announce subscription to a topic.
    Subscribe(Topic),
    /// Announce unsubscription.
    Unsubscribe(Topic),
    /// Full message forward (eager push along the mesh).
    Forward(RawMessage),
    /// Lazy gossip: "I have these messages" (heartbeat).
    IHave {
        /// Topic the ids belong to.
        topic: Topic,
        /// Advertised message ids.
        ids: Vec<MessageId>,
    },
    /// Request for full messages previously advertised via IHAVE.
    IWant {
        /// Requested ids.
        ids: Vec<MessageId>,
    },
    /// Request to join the sender's mesh for a topic.
    Graft(Topic),
    /// Removal from the sender's mesh for a topic.
    Prune(Topic),
    /// Liveness probe. The simulator has no transport-level connection
    /// teardown, so peers detect crashed neighbours by pinging quiet ones
    /// (see `GossipsubConfig::peer_timeout_ms`); a dead peer never
    /// answers and is pruned from the mesh after the timeout.
    Ping,
    /// Answer to a [`Rpc::Ping`].
    Pong,
}

impl Payload for Rpc {
    fn size_bytes(&self) -> usize {
        match self {
            Rpc::Subscribe(t) | Rpc::Unsubscribe(t) => 2 + t.0.len(),
            Rpc::Forward(m) => 2 + m.topic.0.len() + m.data.len(),
            Rpc::IHave { topic, ids } => 2 + topic.0.len() + 32 * ids.len(),
            Rpc::IWant { ids } => 2 + 32 * ids.len(),
            Rpc::Graft(t) | Rpc::Prune(t) => 2 + t.0.len(),
            Rpc::Ping | Rpc::Pong => 2,
        }
    }
}

/// The sliding-window message cache (`mcache`): full messages for the last
/// `history_length` heartbeats, with the most recent `history_gossip`
/// windows eligible for IHAVE gossip.
#[derive(Clone, Debug)]
pub struct MessageCache {
    history_length: usize,
    windows: Vec<Vec<MessageId>>,
    messages: HashMap<MessageId, RawMessage>,
}

impl MessageCache {
    /// Creates a cache with `history_length` windows.
    pub fn new(history_length: usize) -> MessageCache {
        assert!(history_length >= 1, "need at least one window");
        MessageCache {
            history_length,
            windows: vec![Vec::new()],
            messages: HashMap::new(),
        }
    }

    /// Inserts a message into the current window (idempotent).
    pub fn put(&mut self, msg: RawMessage) {
        let id = msg.id();
        if self.messages.insert(id, msg).is_none() {
            self.windows
                .last_mut()
                // lint:allow(panic-path, reason = "the constructor seeds one window and shift() never leaves the ring empty")
                .expect("at least one window")
                .push(id);
        }
    }

    /// Fetches a cached message by id.
    pub fn get(&self, id: &MessageId) -> Option<&RawMessage> {
        self.messages.get(id)
    }

    /// Ids in the most recent `gossip_windows` windows for `topic`.
    pub fn gossip_ids(&self, topic: &Topic, gossip_windows: usize) -> Vec<MessageId> {
        let start = self.windows.len().saturating_sub(gossip_windows);
        self.windows[start..]
            .iter()
            .flatten()
            .filter(|id| {
                self.messages
                    .get(id)
                    .map(|m| &m.topic == topic)
                    .unwrap_or(false)
            })
            .copied()
            .collect()
    }

    /// Advances to a new window, evicting the oldest if full.
    pub fn shift(&mut self) {
        self.windows.push(Vec::new());
        if self.windows.len() > self.history_length {
            let evicted = self.windows.remove(0);
            for id in evicted {
                self.messages.remove(&id);
            }
        }
    }

    /// Number of cached messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// `true` when no messages are cached.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(topic: &str, data: &[u8]) -> RawMessage {
        RawMessage {
            topic: Topic::new(topic),
            data: data.into(),
        }
    }

    #[test]
    fn id_is_content_addressed_and_sender_free() {
        let a = msg("t", b"hello");
        let b = msg("t", b"hello");
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), msg("t", b"other").id());
        assert_ne!(a.id(), msg("u", b"hello").id());
    }

    #[test]
    fn cache_put_get_roundtrip() {
        let mut c = MessageCache::new(3);
        let m = msg("t", b"x");
        c.put(m.clone());
        assert_eq!(c.get(&m.id()), Some(&m));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn put_is_idempotent() {
        let mut c = MessageCache::new(3);
        c.put(msg("t", b"x"));
        c.put(msg("t", b"x"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.gossip_ids(&Topic::new("t"), 3).len(), 1);
    }

    #[test]
    fn shift_evicts_oldest_window() {
        let mut c = MessageCache::new(2);
        let m1 = msg("t", b"1");
        c.put(m1.clone());
        c.shift();
        c.put(msg("t", b"2"));
        c.shift(); // m1's window evicted
        assert!(c.get(&m1.id()).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn gossip_ids_respect_window_and_topic() {
        let mut c = MessageCache::new(5);
        let old = msg("t", b"old");
        c.put(old.clone());
        c.shift();
        c.shift();
        c.put(msg("t", b"new"));
        c.put(msg("other", b"x"));
        // only 2 most recent windows
        let ids = c.gossip_ids(&Topic::new("t"), 2);
        assert_eq!(ids.len(), 1);
        assert_ne!(ids[0], old.id());
        // but a 3-window view still sees the old one
        assert_eq!(c.gossip_ids(&Topic::new("t"), 3).len(), 2);
    }

    #[test]
    fn rpc_sizes_reflect_content() {
        let small = Rpc::Forward(msg("t", b"x"));
        let big = Rpc::Forward(msg("t", &[0u8; 1000]));
        assert!(big.size_bytes() > small.size_bytes());
        let ihave = Rpc::IHave {
            topic: Topic::new("t"),
            ids: vec![MessageId([0; 32]); 4],
        };
        assert_eq!(ihave.size_bytes(), 2 + 1 + 128);
    }
}
