//! The GossipSub protocol state machine.

use crate::config::{GossipsubConfig, ScoringConfig};
use crate::score::PeerScore;
use crate::types::{MessageCache, MessageId, RawMessage, Rpc, Topic};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeSet, HashMap};
use wakurln_netsim::{Bytes, Context, Node, NodeId};

/// Heartbeat timer token.
const TIMER_HEARTBEAT: u64 = 0;

/// Batch-validation flush timer token (armed only when the validator
/// reports a [`Validator::flush_interval_ms`]).
const TIMER_FLUSH: u64 = 1;

/// Application verdict on an incoming message, produced by a [`Validator`].
///
/// WAKU-RLN-RELAY plugs its proof/epoch/nullifier checks in through this
/// hook (§III "Routing and Slashing": "A routing peer follows the regular
/// routing protocol of WAKU-RELAY […] and additionally does the
/// verification steps of the RLN framework").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationResult {
    /// Deliver locally and forward to the mesh.
    Accept,
    /// Drop and penalize the forwarding peer (counts toward P4).
    Reject,
    /// Drop silently (e.g. out-of-window epoch from an honest but laggy
    /// peer — invalid, but not necessarily malicious).
    Ignore,
}

/// Outcome of handing a message to a (possibly batching) validator via
/// [`Validator::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The verdict is available immediately (serial validators).
    Decided(ValidationResult),
    /// The message was queued; its verdict will be released by a later
    /// [`Validator::flush`] under this ticket.
    Deferred(u64),
}

/// One deferred verdict released by [`Validator::flush`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchDecision {
    /// The ticket handed out by [`Validator::submit`].
    pub ticket: u64,
    /// The verdict for the queued message.
    pub result: ValidationResult,
    /// Simulated CPU cost attributed to this message, microseconds.
    pub cost_micros: u64,
}

/// Message validation hook.
///
/// Serial validators implement [`Validator::validate`] only. Batching
/// validators (e.g. WAKU-RLN-RELAY's staged proof-verification pipeline)
/// additionally override the `submit`/`flush` family: `submit` may defer
/// a message, and the node completes delivery/forwarding when a later
/// `flush` — triggered by a full batch or the flush timer — releases the
/// verdict.
///
/// `Send` because a node (validator included) may execute its share of a
/// same-timestamp event batch on a scheduler worker thread.
pub trait Validator: Send {
    /// Judges a message before delivery/forwarding. `now_ms` is simulated
    /// time; implementations may mutate internal state (nullifier maps…).
    fn validate(&mut self, now_ms: u64, topic: &Topic, data: &[u8]) -> ValidationResult;

    /// Simulated CPU cost of the validation just performed, in
    /// microseconds (drives the E6/E9 relayer-overhead accounting).
    fn last_cost_micros(&self) -> u64 {
        0
    }

    /// Hands a message to the validator, allowing it to defer the
    /// verdict for batched processing. The default forwards to
    /// [`Validator::validate`] and always decides immediately.
    fn submit(&mut self, now_ms: u64, topic: &Topic, data: &[u8]) -> SubmitOutcome {
        SubmitOutcome::Decided(self.validate(now_ms, topic, data))
    }

    /// Whether the internal batch has reached the size at which the node
    /// should flush without waiting for the timer.
    fn flush_due(&self) -> bool {
        false
    }

    /// Resolves queued messages, returning one [`BatchDecision`] per
    /// deferred ticket that is now decided (possibly none).
    fn flush(&mut self, _now_ms: u64) -> Vec<BatchDecision> {
        Vec::new()
    }

    /// The bounded staleness of the batch, i.e. how often the node should
    /// fire a flush timer. `None` (the default) disables the timer — the
    /// validator never defers.
    fn flush_interval_ms(&self) -> Option<u64> {
        None
    }
}

/// Accepts everything at zero cost (plain WAKU-RELAY behaviour).
#[derive(Clone, Copy, Debug, Default)]
pub struct AcceptAll;

impl Validator for AcceptAll {
    fn validate(&mut self, _now_ms: u64, _topic: &Topic, _data: &[u8]) -> ValidationResult {
        ValidationResult::Accept
    }
}

/// One wire-level record taken by a passive observer tap: a `Forward`
/// frame arrived, carrying message `id`, handed over by neighbour
/// `from`, at simulated time `at_ms`.
///
/// This is exactly the view a network-level adversary controlling this
/// node gets *without* breaking any cryptography — no payload contents,
/// no signatures, just content id, timing and the previous hop. The
/// source-attribution estimators of the gossip-privacy literature
/// ("first spy" / earliest arrival, and centrality variants) operate on
/// collections of these records pooled across colluding observers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Observation {
    /// Content-derived message id of the observed `Forward`.
    pub id: MessageId,
    /// The neighbour that forwarded the message to the observer.
    pub from: NodeId,
    /// Simulated arrival time, milliseconds.
    pub at_ms: u64,
}

/// A message delivered to the local application.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// Content id.
    pub id: MessageId,
    /// Topic it arrived on.
    pub topic: Topic,
    /// Payload (shared with the forwarding path — no copy per delivery).
    pub data: Bytes,
    /// Simulated arrival time (ms).
    pub at_ms: u64,
}

/// A GossipSub v1.1 peer with a pluggable validator.
///
/// # Examples
///
/// See the crate-level docs for a complete small-network example; unit
/// tests in this module exercise mesh formation, gossip recovery and
/// score-based defenses.
#[derive(Clone)]
pub struct GossipsubNode<V: Validator> {
    config: GossipsubConfig,
    /// Peers we can open connections to (bootstrap set).
    known_peers: Vec<NodeId>,
    /// Topics we subscribe to.
    subscriptions: BTreeSet<Topic>,
    /// Which known peer subscribes to what (learned from Subscribe RPCs).
    peer_topics: HashMap<Topic, BTreeSet<NodeId>>,
    /// Our mesh per topic.
    mesh: HashMap<Topic, BTreeSet<NodeId>>,
    mcache: MessageCache,
    /// Message id → first-seen time (ms).
    seen: HashMap<MessageId, u64>,
    score: PeerScore,
    validator: V,
    delivered: Vec<Delivery>,
    /// IWANTs already spent per peer this heartbeat.
    iwant_spent: HashMap<NodeId, usize>,
    /// Full payloads already served from the mcache per requesting peer
    /// this heartbeat (the serving-side mirror of `iwant_spent`): the
    /// budget is per *heartbeat*, not per RPC, so splitting ids across
    /// many IWANT frames — or re-requesting the same id — cannot drain
    /// unbounded payload bytes out of the cache.
    iwant_served: HashMap<NodeId, usize>,
    /// Ids this node itself published while `publish_jitter_ms` was
    /// active: every wire copy of these — eager push *and* IWANT
    /// serving — gets a fresh hold, so no path leaks the unjittered
    /// `from = publisher` timing. GC'd with the seen-cache.
    own_published: BTreeSet<MessageId>,
    /// Passive observer tap: when enabled, every incoming `Forward`
    /// frame is recorded as an [`Observation`] (duplicates included —
    /// the adversary sees the wire, not the dedup cache).
    observer: bool,
    /// Records taken while `observer` is set, in arrival order.
    observations: Vec<Observation>,
    /// Last time (ms) any RPC arrived from a peer — the liveness signal
    /// behind churn repair (crashed peers go quiet and are pruned after
    /// `peer_timeout_ms`).
    last_heard: HashMap<NodeId, u64>,
    /// Per-topic graft backoff: peers that pruned us, with the time (ms)
    /// until which the heartbeat graft step must not retry them
    /// (`config.prune_backoff_ms` — the v1.1 `PruneBackoff`). Expired
    /// entries are swept every heartbeat.
    graft_backoff: HashMap<Topic, HashMap<NodeId, u64>>,
    /// Messages whose validation verdict is deferred inside a batching
    /// validator, keyed by the validator's ticket. Delivery and
    /// forwarding complete when a flush releases the verdict. The id is
    /// the one computed at receive time (content hashing is paid once).
    pending_validation: HashMap<u64, (NodeId, RawMessage, MessageId)>,
}

impl<V: Validator> GossipsubNode<V> {
    /// Creates a node with the given bootstrap peers and validator.
    pub fn new(
        config: GossipsubConfig,
        scoring: ScoringConfig,
        known_peers: Vec<NodeId>,
        validator: V,
    ) -> GossipsubNode<V> {
        config.assert_valid();
        GossipsubNode {
            mcache: MessageCache::new(config.history_length),
            config,
            known_peers,
            subscriptions: BTreeSet::new(),
            peer_topics: HashMap::new(),
            mesh: HashMap::new(),
            seen: HashMap::new(),
            score: PeerScore::new(scoring),
            validator,
            delivered: Vec::new(),
            iwant_spent: HashMap::new(),
            iwant_served: HashMap::new(),
            own_published: BTreeSet::new(),
            observer: false,
            observations: Vec::new(),
            last_heard: HashMap::new(),
            graft_backoff: HashMap::new(),
            pending_validation: HashMap::new(),
        }
    }

    /// Subscribes to a topic (call before the simulation starts, or use
    /// [`GossipsubNode::subscribe_live`] from an invoke context).
    pub fn subscribe(&mut self, topic: Topic) {
        self.subscriptions.insert(topic.clone());
        self.mesh.entry(topic).or_default();
    }

    /// Subscribes at runtime, announcing to all known peers.
    pub fn subscribe_live(&mut self, ctx: &mut Context<Rpc>, topic: Topic) {
        self.subscribe(topic.clone());
        for peer in self.known_peers.clone() {
            ctx.send(peer, Rpc::Subscribe(topic.clone()));
        }
    }

    /// Publishes a message to a topic: eager-push to the mesh (or to known
    /// topic peers while the mesh is still forming). The payload is
    /// shared ([`Bytes`]) from here on — each forward clones a reference,
    /// not the bytes.
    pub fn publish(
        &mut self,
        ctx: &mut Context<Rpc>,
        topic: Topic,
        data: impl Into<Bytes>,
    ) -> MessageId {
        let msg = RawMessage {
            topic: topic.clone(),
            data: data.into(),
        };
        let id = msg.id();
        self.seen.insert(id, ctx.now());
        self.mcache.put(msg.clone());
        ctx.count("published", 1);
        let targets = self.eager_targets(&topic, None);
        let jitter = self.config.publish_jitter_ms;
        if jitter > 0 {
            // remember own ids so IWANT serving jitters them too — the
            // message enters the mcache (and so our IHAVE gossip)
            // immediately, and an unjittered IWANT reply would hand an
            // observer exactly the from=publisher timing signal the
            // eager-push holds below are hiding
            self.own_published.insert(id);
        }
        for peer in targets {
            if jitter > 0 {
                // source-anonymity countermeasure: each first-hop copy is
                // held back independently, so the neighbour that hears us
                // first is no longer determined by link latency alone
                let hold = ctx.rng().gen_range(0..=jitter);
                ctx.send_delayed(peer, Rpc::Forward(msg.clone()), hold);
            } else {
                ctx.send(peer, Rpc::Forward(msg.clone()));
            }
        }
        id
    }

    /// Switches the passive observer tap on or off (the colluding
    /// surveillance adversary of the scenario library): while enabled,
    /// every incoming `Forward` frame is recorded as an [`Observation`].
    /// Purely read-side — an observer's protocol behaviour is unchanged.
    pub fn set_observer(&mut self, observer: bool) {
        self.observer = observer;
    }

    /// Whether the observer tap is enabled.
    pub fn is_observer(&self) -> bool {
        self.observer
    }

    /// The wire-level records taken while the observer tap was enabled,
    /// in arrival order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Messages delivered to the application so far.
    pub fn delivered(&self) -> &[Delivery] {
        &self.delivered
    }

    /// Drains the delivered-message buffer.
    pub fn take_delivered(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.delivered)
    }

    /// Current mesh for a topic (test/diagnostic access).
    pub fn mesh_peers(&self, topic: &Topic) -> Vec<NodeId> {
        self.mesh
            .get(topic)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The peer-score table (diagnostics; baselines read attacker scores).
    pub fn peer_score(&self) -> &PeerScore {
        &self.score
    }

    /// Entries currently in the seen-cache (bounded by `seen_ttl_ms` GC;
    /// soak tests hold the long-horizon memory contract to this).
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// Messages currently held across the mcache's history windows
    /// (bounded by `history_length` shifts).
    pub fn mcache_len(&self) -> usize {
        self.mcache.len()
    }

    /// Own-published ids still tracked for jittered IWANT serving
    /// (GC'd with the seen-cache; empty whenever `publish_jitter_ms` is 0).
    pub fn own_published_len(&self) -> usize {
        self.own_published.len()
    }

    /// Messages awaiting a deferred validation verdict (bounded by the
    /// batching validator's flush interval).
    pub fn pending_validation_len(&self) -> usize {
        self.pending_validation.len()
    }

    /// The validator (e.g. to read RLN spam-detection state).
    pub fn validator(&self) -> &V {
        &self.validator
    }

    /// Mutable validator access.
    pub fn validator_mut(&mut self) -> &mut V {
        &mut self.validator
    }

    /// Whether this id has been seen (published or received).
    pub fn has_seen(&self, id: &MessageId) -> bool {
        self.seen.contains_key(id)
    }

    fn eager_targets(&self, topic: &Topic, exclude: Option<NodeId>) -> Vec<NodeId> {
        let mesh = self.mesh.get(topic);
        let candidates: Vec<NodeId> = match mesh {
            Some(m) if !m.is_empty() => m.iter().copied().collect(),
            _ => {
                // mesh not yet formed: fall back to known subscribers
                self.peer_topics
                    .get(topic)
                    .map(|s| s.iter().copied().take(self.config.mesh_n).collect())
                    .unwrap_or_default()
            }
        };
        candidates
            .into_iter()
            .filter(|p| Some(*p) != exclude)
            .filter(|p| !self.config.scoring_enabled || self.score.accepts_publish(*p))
            .collect()
    }

    fn handle_forward(&mut self, ctx: &mut Context<Rpc>, from: NodeId, msg: RawMessage) {
        let id = msg.id();
        if self.seen.contains_key(&id) {
            ctx.count("duplicates", 1);
            return;
        }
        self.seen.insert(id, ctx.now());

        match self.validator.submit(ctx.now(), &msg.topic, &msg.data) {
            SubmitOutcome::Decided(verdict) => {
                ctx.charge_cpu(self.validator.last_cost_micros());
                self.apply_verdict(ctx, from, msg, id, verdict);
            }
            SubmitOutcome::Deferred(ticket) => {
                ctx.count("validation_deferred", 1);
                self.pending_validation.insert(ticket, (from, msg, id));
                if self.validator.flush_due() {
                    self.complete_flush(ctx);
                }
            }
        }
    }

    /// Completes processing of a validated message: scoring, local
    /// delivery and mesh forwarding. Shared by the immediate path and the
    /// batched-flush path.
    fn apply_verdict(
        &mut self,
        ctx: &mut Context<Rpc>,
        from: NodeId,
        msg: RawMessage,
        id: MessageId,
        verdict: ValidationResult,
    ) {
        match verdict {
            ValidationResult::Reject => {
                if self.config.scoring_enabled {
                    self.score.record_invalid(from);
                }
                ctx.count("rejected", 1);
                return;
            }
            ValidationResult::Ignore => {
                ctx.count("ignored", 1);
                return;
            }
            ValidationResult::Accept => {}
        }

        if self.config.scoring_enabled {
            self.score.record_first_delivery(from);
        }
        if self.subscriptions.contains(&msg.topic) {
            self.delivered.push(Delivery {
                id,
                topic: msg.topic.clone(),
                data: msg.data.clone(),
                at_ms: ctx.now(),
            });
            ctx.count("delivered_app", 1);
        }
        self.mcache.put(msg.clone());
        for peer in self.eager_targets(&msg.topic, Some(from)) {
            ctx.send(peer, Rpc::Forward(msg.clone()));
        }
    }

    /// Drains the validator's batch and completes every released verdict.
    fn complete_flush(&mut self, ctx: &mut Context<Rpc>) {
        for decision in self.validator.flush(ctx.now()) {
            let Some((from, msg, id)) = self.pending_validation.remove(&decision.ticket) else {
                continue; // unknown ticket: validator-internal bookkeeping
            };
            ctx.charge_cpu(decision.cost_micros);
            self.apply_verdict(ctx, from, msg, id, decision.result);
        }
    }

    fn handle_ihave(
        &mut self,
        ctx: &mut Context<Rpc>,
        from: NodeId,
        topic: Topic,
        ids: Vec<MessageId>,
    ) {
        // IHAVE for a topic we never subscribed to buys the advertiser
        // nothing but would still spend our IWANT budget and pull
        // payloads that validation drops on arrival — ignore it outright
        if !self.subscriptions.contains(&topic) {
            ctx.count("ihave_ignored_unsubscribed", 1);
            return;
        }
        if self.config.scoring_enabled && !self.score.accepts_gossip(from) {
            ctx.count("ihave_ignored_low_score", 1);
            return;
        }
        let spent = self.iwant_spent.entry(from).or_insert(0);
        let budget = self.config.max_iwant_per_heartbeat.saturating_sub(*spent);
        let wanted: Vec<MessageId> = ids
            .into_iter()
            .filter(|id| !self.seen.contains_key(id))
            .take(budget)
            .collect();
        if wanted.is_empty() {
            return;
        }
        *self.iwant_spent.entry(from).or_default() += wanted.len();
        ctx.count("iwant_sent", wanted.len() as u64);
        ctx.send(from, Rpc::IWant { ids: wanted });
    }

    fn handle_iwant(&mut self, ctx: &mut Context<Rpc>, from: NodeId, ids: Vec<MessageId>) {
        // the serving budget is per peer per *heartbeat*, not per RPC: a
        // peer splitting ids across many IWANT frames (or re-requesting
        // the same id) would otherwise drain unbounded full payloads out
        // of the mcache between two heartbeats — a classic
        // request-amplification vector, since an IWANT id costs the
        // requester 32 bytes and the responder a whole message
        let served = self.iwant_served.entry(from).or_insert(0);
        let budget = self.config.max_iwant_per_heartbeat.saturating_sub(*served);
        let mut sent = 0usize;
        let mut capped = 0u64;
        for id in ids {
            if sent >= budget {
                capped += 1;
                continue;
            }
            if let Some(msg) = self.mcache.get(&id) {
                let jitter = self.config.publish_jitter_ms;
                if jitter > 0 && self.own_published.contains(&id) {
                    // serving our own fresh message is a first hop too:
                    // an unjittered reply would leak the exact
                    // from=publisher timing the eager-push holds hide
                    let hold = ctx.rng().gen_range(0..=jitter);
                    ctx.send_delayed(from, Rpc::Forward(msg.clone()), hold);
                } else {
                    ctx.send(from, Rpc::Forward(msg.clone()));
                }
                sent += 1;
            }
        }
        *self.iwant_served.entry(from).or_default() += sent;
        if capped > 0 {
            ctx.count("iwant_served_capped", capped);
        }
    }

    fn handle_graft(&mut self, ctx: &mut Context<Rpc>, from: NodeId, topic: Topic) {
        let subscribed = self.subscriptions.contains(&topic);
        // only peers that announced the subscription may graft: a mesh
        // slot hands out eager-push fan-out, and granting it to a peer
        // that never subscribed lets an adversary collect full-message
        // streams for topics it has no stake in
        let peer_subscribes = self
            .peer_topics
            .get(&topic)
            .is_some_and(|subscribers| subscribers.contains(&from));
        let acceptable = !self.config.scoring_enabled || !self.score.should_evict(from);
        if subscribed && peer_subscribes && acceptable {
            let mesh = self.mesh.entry(topic.clone()).or_default();
            // cap admissions at D_hi: an unbounded GRAFT flood would
            // otherwise inflate the mesh (and with it every eager-push
            // fan-out) arbitrarily until the next heartbeat prunes it
            if mesh.contains(&from) || mesh.len() < self.config.mesh_n_high {
                mesh.insert(from);
                self.score.set_in_mesh(from, true);
                return;
            }
            ctx.count("graft_rejected_mesh_full", 1);
        }
        ctx.send(from, Rpc::Prune(topic));
    }

    fn handle_prune(&mut self, from: NodeId, topic: Topic) {
        if let Some(mesh) = self.mesh.get_mut(&topic) {
            mesh.remove(&from);
        }
        // lint:allow(map-iteration, reason = "existential fold: any() over mesh membership is order-independent")
        let still_meshed = self.mesh.values().any(|m| m.contains(&from));
        self.score.set_in_mesh(from, still_meshed);
    }

    /// Churn repair: ping quiet peers, presume peers silent beyond the
    /// timeout dead, and drop them from mesh and candidate tables so the
    /// graft step can backfill with live peers.
    fn liveness_sweep(&mut self, ctx: &mut Context<Rpc>) {
        let timeout = self.config.peer_timeout_ms;
        if timeout == 0 {
            return;
        }
        let now = ctx.now();
        // everyone we currently track: mesh members plus known topic peers
        let mut tracked: BTreeSet<NodeId> = BTreeSet::new();
        // lint:allow(map-iteration, reason = "order-independent: values drain into a BTreeSet, which sorts them")
        tracked.extend(self.mesh.values().flatten().copied());
        // lint:allow(map-iteration, reason = "order-independent: values drain into a BTreeSet, which sorts them")
        tracked.extend(self.peer_topics.values().flatten().copied());
        let mut dead: Vec<NodeId> = Vec::new();
        for peer in tracked {
            // a peer we never heard from starts its clock at first sight
            let last = *self.last_heard.entry(peer).or_insert(now);
            let quiet_ms = now.saturating_sub(last);
            if quiet_ms >= timeout {
                dead.push(peer);
            } else if quiet_ms >= timeout / 2 {
                ctx.send(peer, Rpc::Ping);
                ctx.count("pings_sent", 1);
            }
        }
        for peer in dead {
            // lint:allow(map-iteration, reason = "order-independent: removes one peer from every mesh set; no cross-entry data flow")
            for mesh in self.mesh.values_mut() {
                mesh.remove(&peer);
            }
            // lint:allow(map-iteration, reason = "order-independent: removes one peer from every subscriber set; no cross-entry data flow")
            for subscribers in self.peer_topics.values_mut() {
                subscribers.remove(&peer);
            }
            self.score.set_in_mesh(peer, false);
            self.last_heard.remove(&peer);
            ctx.count("peers_presumed_dead", 1);
        }
    }

    fn heartbeat(&mut self, ctx: &mut Context<Rpc>) {
        if self.config.scoring_enabled {
            self.score.heartbeat();
        }
        self.iwant_spent.clear();
        self.iwant_served.clear();
        self.liveness_sweep(ctx);

        // sweep expired graft backoffs so the tables stay bounded by the
        // set of peers that pruned us within the last backoff window
        let now = ctx.now();
        // lint:allow(map-iteration, reason = "order-independent: per-entry backoff expiry; entries are judged in isolation")
        self.graft_backoff.retain(|_, peers| {
            peers.retain(|_, until| *until > now);
            !peers.is_empty()
        });

        for topic in self.subscriptions.clone() {
            let topic_mesh = self.mesh.entry(topic.clone()).or_default();

            // evict misbehaving peers
            if self.config.scoring_enabled {
                let evict: Vec<NodeId> = topic_mesh
                    .iter()
                    .copied()
                    .filter(|p| self.score.should_evict(*p))
                    .collect();
                for peer in evict {
                    topic_mesh.remove(&peer);
                    ctx.send(peer, Rpc::Prune(topic.clone()));
                    self.score.set_in_mesh(peer, false);
                    ctx.count("mesh_evictions", 1);
                }
            }

            // graft up to D when below D_lo
            if topic_mesh.len() < self.config.mesh_n_low {
                let need = self.config.mesh_n - topic_mesh.len();
                let backoff = self.graft_backoff.get(&topic);
                let mut suppressed = 0u64;
                let mut candidates: Vec<NodeId> = self
                    .peer_topics
                    .get(&topic)
                    .map(|s| {
                        s.iter()
                            .copied()
                            .filter(|p| !topic_mesh.contains(p))
                            .filter(|p| {
                                !self.config.scoring_enabled || !self.score.should_evict(*p)
                            })
                            .filter(|p| {
                                // a peer that pruned us stays off-limits
                                // until its backoff window expires
                                let held = backoff
                                    .and_then(|peers| peers.get(p))
                                    .is_some_and(|until| *until > now);
                                if held {
                                    suppressed += 1;
                                }
                                !held
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                if suppressed > 0 {
                    ctx.count("graft_suppressed_backoff", suppressed);
                }
                candidates.shuffle(ctx.rng());
                for peer in candidates.into_iter().take(need) {
                    topic_mesh.insert(peer);
                    self.score.set_in_mesh(peer, true);
                    ctx.send(peer, Rpc::Graft(topic.clone()));
                }
            }

            // prune down to D when above D_hi
            if topic_mesh.len() > self.config.mesh_n_high {
                let mut members: Vec<NodeId> = topic_mesh.iter().copied().collect();
                // keep the best-scoring peers
                members.sort_by(|a, b| self.score.score(*b).total_cmp(&self.score.score(*a)));
                for peer in members.into_iter().skip(self.config.mesh_n) {
                    topic_mesh.remove(&peer);
                    ctx.send(peer, Rpc::Prune(topic.clone()));
                    self.score.set_in_mesh(peer, false);
                }
            }

            // lazy gossip: IHAVE to non-mesh peers
            let ids = self.mcache.gossip_ids(&topic, self.config.history_gossip);
            if !ids.is_empty() {
                let mesh_snapshot = self.mesh.get(&topic).cloned().unwrap_or_default();
                let mut candidates: Vec<NodeId> = self
                    .peer_topics
                    .get(&topic)
                    .map(|s| {
                        s.iter()
                            .copied()
                            .filter(|p| !mesh_snapshot.contains(p))
                            .filter(|p| {
                                !self.config.scoring_enabled || self.score.accepts_gossip(*p)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                candidates.shuffle(ctx.rng());
                for peer in candidates.into_iter().take(self.config.gossip_lazy) {
                    ctx.send(
                        peer,
                        Rpc::IHave {
                            topic: topic.clone(),
                            ids: ids.clone(),
                        },
                    );
                }
            }
        }

        self.mcache.shift();
        let ttl = self.config.seen_ttl_ms;
        let now = ctx.now();
        // lint:allow(map-iteration, reason = "order-independent: per-entry TTL prune; entries are judged in isolation")
        self.seen.retain(|_, t| now.saturating_sub(*t) < ttl);
        if !self.own_published.is_empty() {
            self.own_published.retain(|id| self.seen.contains_key(id));
        }
        ctx.set_timer(self.config.heartbeat_ms, TIMER_HEARTBEAT);
    }
}

impl<V: Validator> Node for GossipsubNode<V> {
    type Message = Rpc;

    fn on_start(&mut self, ctx: &mut Context<Rpc>) {
        for topic in self.subscriptions.clone() {
            for peer in self.known_peers.clone() {
                ctx.send(peer, Rpc::Subscribe(topic.clone()));
            }
        }
        // desynchronize heartbeats across the network
        let jitter = ctx.rng().gen_range(0..self.config.heartbeat_ms);
        ctx.set_timer(self.config.heartbeat_ms + jitter, TIMER_HEARTBEAT);
        if let Some(interval) = self.validator.flush_interval_ms() {
            ctx.set_timer(interval, TIMER_FLUSH);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Rpc>, from: NodeId, msg: Rpc) {
        // any frame proves liveness, even one we will refuse to process
        self.last_heard.insert(from, ctx.now());
        if self.config.scoring_enabled && self.score.graylisted(from) {
            ctx.count("rpc_graylisted", 1);
            return;
        }
        match msg {
            Rpc::Subscribe(topic) => {
                let newly_learned = self
                    .peer_topics
                    .entry(topic.clone())
                    .or_default()
                    .insert(from);
                // Subscription exchange (as on libp2p connection setup):
                // announce our own interest back to a newly seen peer so
                // late joiners discover established subscribers. The
                // `newly_learned` guard terminates the exchange.
                if newly_learned && self.subscriptions.contains(&topic) {
                    ctx.send(from, Rpc::Subscribe(topic));
                }
            }
            Rpc::Unsubscribe(topic) => {
                if let Some(s) = self.peer_topics.get_mut(&topic) {
                    s.remove(&from);
                }
                self.handle_prune(from, topic);
            }
            Rpc::Forward(raw) => {
                if self.observer {
                    // wire-level tap: record before dedup/validation —
                    // the adversary sees every arriving frame, not the
                    // protocol's view of it
                    self.observations.push(Observation {
                        id: raw.id(),
                        from,
                        at_ms: ctx.now(),
                    });
                    ctx.count("observations_recorded", 1);
                }
                self.handle_forward(ctx, from, raw);
            }
            Rpc::IHave { topic, ids } => self.handle_ihave(ctx, from, topic, ids),
            Rpc::IWant { ids } => self.handle_iwant(ctx, from, ids),
            Rpc::Graft(topic) => self.handle_graft(ctx, from, topic),
            Rpc::Prune(topic) => {
                self.handle_prune(from, topic.clone());
                // honour the pruner's capacity decision for a while: the
                // heartbeat graft step skips this peer until the backoff
                // expires, instead of re-grafting every heartbeat into a
                // mesh that just told us it is full
                if self.config.prune_backoff_ms > 0 {
                    self.graft_backoff
                        .entry(topic.clone())
                        .or_default()
                        .insert(from, ctx.now() + self.config.prune_backoff_ms);
                }
                // graft admission requires the pruner to have heard our
                // Subscribe, but that announcement is one-shot and can
                // be lost on a lossy link — without repair the pair
                // would loop graft → prune every heartbeat forever.
                // Re-announcing here resynchronizes subscription state
                // at one small frame per prune; the `newly_learned`
                // guard on the receiving side keeps it loop-free.
                if self.subscriptions.contains(&topic) {
                    ctx.send(from, Rpc::Subscribe(topic));
                }
            }
            Rpc::Ping => ctx.send(from, Rpc::Pong),
            Rpc::Pong => {} // the `last_heard` update above is the point
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Rpc>, token: u64) {
        if token == TIMER_HEARTBEAT {
            self.heartbeat(ctx);
        } else if token == TIMER_FLUSH {
            self.complete_flush(ctx);
            if let Some(interval) = self.validator.flush_interval_ms() {
                ctx.set_timer(interval, TIMER_FLUSH);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakurln_netsim::{topology, ConstantLatency, Network, UniformLatency};

    type Net = Network<GossipsubNode<AcceptAll>>;

    fn build_network(n: usize, seed: u64) -> Net {
        let topic = Topic::new("test");
        let adjacency = topology::random_regular(n, 6, seed);
        let mut net: Net = Network::new(
            UniformLatency {
                min_ms: 10,
                max_ms: 50,
            },
            seed,
        );
        for peers in adjacency {
            let mut node = GossipsubNode::new(
                GossipsubConfig::default(),
                ScoringConfig::default(),
                peers,
                AcceptAll,
            );
            node.subscribe(topic.clone());
            net.add_node(node);
        }
        net
    }

    #[test]
    fn meshes_form_within_degree_bounds() {
        let mut net = build_network(30, 1);
        net.run_until(10_000);
        let topic = Topic::new("test");
        let cfg = GossipsubConfig::default();
        for i in 0..30 {
            let mesh = net.node(NodeId(i)).mesh_peers(&topic);
            assert!(
                !mesh.is_empty(),
                "node {i} has an empty mesh after formation"
            );
            assert!(
                mesh.len() <= cfg.mesh_n_high + cfg.mesh_n,
                "node {i} oversized"
            );
        }
    }

    #[test]
    fn publish_reaches_all_subscribers() {
        let mut net = build_network(40, 2);
        net.run_until(10_000); // mesh formation
        let topic = Topic::new("test");
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"hello network".to_vec())
        });
        net.run_until(30_000);
        let mut received = 0;
        for i in 1..40 {
            if net
                .node(NodeId(i))
                .delivered()
                .iter()
                .any(|d| d.topic == topic && d.data == b"hello network")
            {
                received += 1;
            }
        }
        assert!(
            received >= 38,
            "only {received}/39 subscribers got the message"
        );
    }

    #[test]
    fn gossip_recovers_from_packet_loss() {
        let mut net = build_network(30, 3);
        net.run_until(10_000);
        net.set_loss_probability(0.20);
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"lossy".to_vec())
        });
        // several heartbeats give IHAVE/IWANT time to fill gaps
        net.run_until(40_000);
        let received = (1..30)
            .filter(|i| {
                net.node(NodeId(*i))
                    .delivered()
                    .iter()
                    .any(|d| d.data == b"lossy")
            })
            .count();
        assert!(received >= 27, "only {received}/29 after gossip recovery");
    }

    #[test]
    fn duplicate_suppression_counts() {
        let mut net = build_network(20, 4);
        net.run_until(10_000);
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"dup".to_vec())
        });
        net.run_until(20_000);
        // dense meshes guarantee duplicates; the seen-cache must absorb them
        assert!(net.metrics().counter("duplicates") > 0);
        for i in 0..20 {
            let count = net
                .node(NodeId(i))
                .delivered()
                .iter()
                .filter(|d| d.data == b"dup")
                .count();
            assert!(count <= 1, "node {i} delivered the message {count} times");
        }
    }

    /// A validator that rejects every payload starting with `0xBA`.
    struct RejectBad;
    impl Validator for RejectBad {
        fn validate(&mut self, _: u64, _: &Topic, data: &[u8]) -> ValidationResult {
            if data.first() == Some(&0xBA) {
                ValidationResult::Reject
            } else {
                ValidationResult::Accept
            }
        }
    }

    #[test]
    fn rejected_messages_do_not_propagate_and_sink_scores() {
        let topic = Topic::new("test");
        let adjacency = topology::full_mesh(6);
        let mut net: Network<GossipsubNode<RejectBad>> = Network::new(ConstantLatency(10), 5);
        for peers in adjacency {
            let mut node = GossipsubNode::new(
                GossipsubConfig::default(),
                ScoringConfig::default(),
                peers,
                RejectBad,
            );
            node.subscribe(topic.clone());
            net.add_node(node);
        }
        net.run_until(5_000);
        // node 0 spams invalid payloads
        for k in 0..8u8 {
            net.invoke(NodeId(0), |node, ctx| {
                node.publish(ctx, Topic::new("test"), vec![0xBA, k])
            });
        }
        net.run_until(8_000);
        // nothing delivered anywhere
        for i in 1..6 {
            assert!(net.node(NodeId(i)).delivered().is_empty());
        }
        assert!(net.metrics().counter("rejected") > 0);
        // direct receivers now grade node 0 negatively
        let punished = (1..6)
            .filter(|i| net.node(NodeId(*i)).peer_score().score(NodeId(0)) < 0.0)
            .count();
        assert!(punished >= 1, "no peer punished the spammer");
    }

    #[test]
    fn mesh_repairs_itself_after_neighbour_crashes() {
        let mut net = build_network(30, 11);
        net.run_until(10_000); // meshes form
        let topic = Topic::new("test");

        // crash every mesh neighbour of node 0 (worst-case local churn)
        let victims = net.node(NodeId(0)).mesh_peers(&topic);
        assert!(!victims.is_empty());
        for v in &victims {
            net.remove_node(*v);
        }

        // pings go unanswered; after peer_timeout_ms the dead are pruned
        // and the heartbeat grafts live replacements
        let timeout = GossipsubConfig::default().peer_timeout_ms;
        net.run_until(10_000 + 2 * timeout);
        let mesh = net.node(NodeId(0)).mesh_peers(&topic);
        assert!(
            !mesh.is_empty(),
            "mesh never recovered after neighbour crashes"
        );
        for peer in &mesh {
            assert!(
                !victims.contains(peer),
                "dead peer {peer} still in the mesh"
            );
            assert!(net.is_active(*peer), "mesh contains a removed node");
        }
        assert!(net.metrics().counter("peers_presumed_dead") >= victims.len() as u64);

        // and the repaired mesh still routes: a publish reaches survivors
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"after the storm".to_vec())
        });
        net.run_until(10_000 + 2 * timeout + 30_000);
        let survivors: Vec<usize> = (1..30).filter(|i| net.is_active(NodeId(*i))).collect();
        let received = survivors
            .iter()
            .filter(|i| {
                net.node(NodeId(**i))
                    .delivered()
                    .iter()
                    .any(|d| d.data == b"after the storm")
            })
            .count();
        assert!(
            received * 10 >= survivors.len() * 9,
            "only {received}/{} survivors reached after repair",
            survivors.len()
        );
    }

    #[test]
    fn quiet_peers_are_pinged_not_pruned() {
        let mut net = build_network(10, 12);
        let timeout = GossipsubConfig::default().peer_timeout_ms;
        // a long quiet stretch with no crashes: pings keep everyone alive
        net.run_until(4 * timeout);
        assert!(net.metrics().counter("pings_sent") > 0);
        assert_eq!(net.metrics().counter("peers_presumed_dead"), 0);
        let topic = Topic::new("test");
        for i in 0..10 {
            assert!(!net.node(NodeId(i)).mesh_peers(&topic).is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = build_network(15, seed);
            net.run_until(8_000);
            net.invoke(NodeId(0), |node, ctx| {
                node.publish(ctx, Topic::new("test"), b"det".to_vec())
            });
            net.run_until(20_000);
            (1..15)
                .map(|i| {
                    net.node(NodeId(i))
                        .delivered()
                        .iter()
                        .map(|d| d.at_ms)
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    /// An isolated node plus one subscribed receiver, with no bootstrap
    /// links: RPCs are driven into node 0 by hand via `invoke`, so the
    /// control-plane handlers are exercised without mesh traffic in the
    /// way. Simulated time stays below the first heartbeat (armed at
    /// 1000–2000 ms), so per-heartbeat budgets are never reset.
    fn two_isolated_nodes(seed: u64) -> Net {
        let topic = Topic::new("test");
        let mut net: Net = Network::new(ConstantLatency(10), seed);
        for _ in 0..2 {
            let mut node = GossipsubNode::new(
                GossipsubConfig::default(),
                ScoringConfig::default(),
                vec![],
                AcceptAll,
            );
            node.subscribe(topic.clone());
            net.add_node(node);
        }
        net
    }

    #[test]
    fn iwant_split_across_many_rpcs_cannot_exceed_the_heartbeat_budget() {
        let mut net = two_isolated_nodes(21);
        let cap = GossipsubConfig::default().max_iwant_per_heartbeat;
        // node 0 caches 200 distinct messages (no mesh: nothing is sent)
        let ids: Vec<MessageId> = (0..200u32)
            .map(|k| {
                net.invoke(NodeId(0), |node, ctx| {
                    node.publish(ctx, Topic::new("test"), k.to_le_bytes().to_vec())
                })
            })
            .collect();
        assert_eq!(net.metrics().counter("messages_sent"), 0);
        // the attacker requests them one id per IWANT frame — 200 RPCs,
        // each individually far below the per-RPC cap
        for id in &ids {
            let id = *id;
            net.invoke(NodeId(0), |node, ctx| {
                node.on_message(ctx, NodeId(1), Rpc::IWant { ids: vec![id] })
            });
        }
        net.run_until(500);
        assert_eq!(
            net.metrics().counter("messages_sent"),
            cap as u64,
            "served payloads must stop at the per-heartbeat budget"
        );
        assert_eq!(net.node(NodeId(1)).delivered().len(), cap);
        assert_eq!(
            net.metrics().counter("iwant_served_capped"),
            (200 - cap) as u64
        );
    }

    #[test]
    fn rerequesting_the_same_id_is_bounded_by_the_served_budget() {
        let mut net = two_isolated_nodes(22);
        let cap = GossipsubConfig::default().max_iwant_per_heartbeat;
        let id = net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"single".to_vec())
        });
        for _ in 0..200 {
            net.invoke(NodeId(0), |node, ctx| {
                node.on_message(ctx, NodeId(1), Rpc::IWant { ids: vec![id] })
            });
        }
        net.run_until(500);
        // every serve of the same id costs a full payload on the wire;
        // the budget (not the requester) bounds the amplification
        assert_eq!(net.metrics().counter("messages_sent"), cap as u64);
        // the receiver deduplicates: one delivery, the rest are dupes
        assert_eq!(net.node(NodeId(1)).delivered().len(), 1);
    }

    #[test]
    fn graft_flood_is_capped_at_mesh_n_high() {
        let mut net = two_isolated_nodes(23);
        let cfg = GossipsubConfig::default();
        let topic = Topic::new("test");
        // 30 peers announce the subscription, then all graft at once
        // (between two heartbeats, so no prune step runs in between)
        for p in 10..40 {
            net.invoke(NodeId(0), |node, ctx| {
                node.on_message(ctx, NodeId(p), Rpc::Subscribe(Topic::new("test")));
                node.on_message(ctx, NodeId(p), Rpc::Graft(Topic::new("test")));
            });
        }
        let mesh = net.node(NodeId(0)).mesh_peers(&topic);
        assert_eq!(
            mesh.len(),
            cfg.mesh_n_high,
            "graft flood inflated the mesh past D_hi"
        );
        assert_eq!(
            net.metrics().counter("graft_rejected_mesh_full"),
            (30 - cfg.mesh_n_high) as u64
        );
    }

    #[test]
    fn graft_from_peer_that_never_subscribed_is_pruned() {
        let mut net = two_isolated_nodes(24);
        let topic = Topic::new("test");
        net.invoke(NodeId(0), |node, ctx| {
            node.on_message(ctx, NodeId(9), Rpc::Graft(Topic::new("test")))
        });
        assert!(
            !net.node(NodeId(0)).mesh_peers(&topic).contains(&NodeId(9)),
            "unsubscribed peer admitted to the mesh"
        );
        // after announcing the subscription the same peer is admitted
        net.invoke(NodeId(0), |node, ctx| {
            node.on_message(ctx, NodeId(9), Rpc::Subscribe(Topic::new("test")));
            node.on_message(ctx, NodeId(9), Rpc::Graft(Topic::new("test")));
        });
        assert!(net.node(NodeId(0)).mesh_peers(&topic).contains(&NodeId(9)));
    }

    /// A (node 0) sits at `D_hi` — its mesh is packed with 12 phantom
    /// peers — so every graft from B (node 1) is rejected with a PRUNE.
    /// B is below `D_lo` and A is its only candidate: without the
    /// backoff, B re-grafts on every heartbeat and the pair exchanges
    /// GRAFT → PRUNE control frames forever (the regression this test
    /// pins down); with it, B retries only after `prune_backoff_ms`.
    fn graft_pingpong_net(prune_backoff_ms: u64) -> Net {
        let topic = Topic::new("test");
        let mut net: Net = Network::new(ConstantLatency(10), 27);
        let config = GossipsubConfig {
            prune_backoff_ms,
            ..Default::default()
        };
        // A knows nobody (never grafts out); B knows only A
        for peers in [vec![], vec![NodeId(0)]] {
            let mut node = GossipsubNode::new(config, ScoringConfig::default(), peers, AcceptAll);
            node.subscribe(topic.clone());
            net.add_node(node);
        }
        // pack A's mesh with phantom subscribers up to D_hi
        for p in 10..(10 + config.mesh_n_high) {
            net.invoke(NodeId(0), |node, ctx| {
                node.on_message(ctx, NodeId(p), Rpc::Subscribe(Topic::new("test")));
                node.on_message(ctx, NodeId(p), Rpc::Graft(Topic::new("test")));
            });
        }
        assert_eq!(
            net.node(NodeId(0)).mesh_peers(&topic).len(),
            config.mesh_n_high
        );
        net
    }

    #[test]
    fn rejected_graft_backs_off_instead_of_retrying_every_heartbeat() {
        let mut net = graft_pingpong_net(GossipsubConfig::default().prune_backoff_ms);
        // stay under peer_timeout_ms so A's phantom mesh is not swept
        net.run_until(20_000);
        let rejected = net.metrics().counter("graft_rejected_mesh_full");
        // 12 phantom admissions aside: B's live rejections are bounded by
        // the backoff — without it there is one per heartbeat (≈ 18)
        assert!(
            rejected <= 2,
            "graft retried {rejected} times inside one backoff window"
        );
        assert!(
            net.metrics().counter("graft_suppressed_backoff") >= 10,
            "backoff never suppressed a retry"
        );
    }

    #[test]
    fn backoff_expiry_allows_a_deterministic_retry() {
        let mut net = graft_pingpong_net(4_000);
        net.run_until(20_000);
        let rejected = net.metrics().counter("graft_rejected_mesh_full");
        // one retry per expired 4 s window over 20 s: a handful, not one
        // per heartbeat and not zero (the backoff must expire)
        assert!(
            (3..=8).contains(&rejected),
            "expected periodic post-backoff retries, saw {rejected}"
        );
    }

    #[test]
    fn pruned_peer_reannounces_subscription_and_regrafts() {
        // B's one-shot Subscribe to A was lost: A does not know B
        // subscribes, so A prunes B's graft. The prune must make B
        // re-announce, after which the next graft is admitted — without
        // this repair the pair would loop graft → prune forever.
        let mut net = two_isolated_nodes(26);
        let topic = Topic::new("test");
        // A (node 0) receives a graft from B (node 1) it cannot verify
        net.invoke(NodeId(0), |node, ctx| {
            node.on_message(ctx, NodeId(1), Rpc::Graft(Topic::new("test")))
        });
        assert!(!net.node(NodeId(0)).mesh_peers(&topic).contains(&NodeId(1)));
        // A's Prune reaches B; B re-announces Subscribe; A learns B
        net.run_until(100);
        // B's next heartbeat-style graft now succeeds
        net.invoke(NodeId(0), |node, ctx| {
            node.on_message(ctx, NodeId(1), Rpc::Graft(Topic::new("test")))
        });
        assert!(
            net.node(NodeId(0)).mesh_peers(&topic).contains(&NodeId(1)),
            "graft still rejected after the subscription was re-announced"
        );
    }

    #[test]
    fn iwant_serving_of_own_messages_is_jittered_too() {
        let topic = Topic::new("test");
        let mut net: Net = Network::new(ConstantLatency(10), 31);
        for _ in 0..2 {
            let mut node = GossipsubNode::new(
                GossipsubConfig {
                    publish_jitter_ms: 400,
                    ..Default::default()
                },
                ScoringConfig::default(),
                vec![],
                AcceptAll,
            );
            node.subscribe(topic.clone());
            net.add_node(node);
        }
        // the publisher caches its message (no mesh: nothing eager-pushed)
        let id = net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"gossiped-own".to_vec())
        });
        // an observer that heard the IHAVE requests the full payload
        net.invoke(NodeId(0), |node, ctx| {
            node.on_message(ctx, NodeId(1), Rpc::IWant { ids: vec![id] })
        });
        net.run_until(1_000);
        let delivery = net
            .node(NodeId(1))
            .delivered()
            .iter()
            .find(|d| d.id == id)
            .expect("IWANT must still be served");
        // base latency is 10 ms; an unjittered serve would arrive exactly
        // then, leaking the from=publisher timing (seed chosen so the
        // deterministic hold draw is nonzero)
        assert!(
            delivery.at_ms > 10,
            "own-message IWANT serve was not held back (arrived at {} ms)",
            delivery.at_ms
        );
    }

    #[test]
    fn ihave_for_unsubscribed_topic_spends_no_iwant_budget() {
        let mut net = two_isolated_nodes(25);
        let foreign = MessageId::compute(&Topic::new("other"), b"unseen");
        net.invoke(NodeId(0), |node, ctx| {
            node.on_message(
                ctx,
                NodeId(1),
                Rpc::IHave {
                    topic: Topic::new("other"),
                    ids: vec![foreign],
                },
            )
        });
        assert_eq!(net.metrics().counter("ihave_ignored_unsubscribed"), 1);
        assert_eq!(
            net.metrics().counter("iwant_sent"),
            0,
            "IWANT budget spent on an unsubscribed topic"
        );
        // control: the same advertisement on the subscribed topic is acted on
        let local = MessageId::compute(&Topic::new("test"), b"unseen");
        net.invoke(NodeId(0), |node, ctx| {
            node.on_message(
                ctx,
                NodeId(1),
                Rpc::IHave {
                    topic: Topic::new("test"),
                    ids: vec![local],
                },
            )
        });
        assert_eq!(net.metrics().counter("iwant_sent"), 1);
    }

    #[test]
    fn observer_tap_records_arrivals_with_previous_hop() {
        let mut net = build_network(12, 13);
        net.node_mut(NodeId(5)).set_observer(true);
        net.run_until(10_000);
        let id = net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"watched".to_vec())
        });
        net.run_until(30_000);
        let observations = net.node(NodeId(5)).observations();
        assert!(!observations.is_empty(), "observer recorded nothing");
        for obs in observations {
            assert_eq!(obs.id, id);
            assert_ne!(obs.from, NodeId(5), "recorded itself as previous hop");
            assert!(obs.at_ms >= 10_000);
        }
        // the tap is opt-in: everyone else recorded nothing
        for i in 0..12 {
            if i != 5 {
                assert!(net.node(NodeId(i)).observations().is_empty());
            }
        }
    }

    #[test]
    fn publish_jitter_spreads_first_hop_arrivals_without_losing_delivery() {
        let topic = Topic::new("test");
        let adjacency = topology::full_mesh(8);
        let mut net: Net = Network::new(ConstantLatency(10), 9);
        for peers in adjacency {
            let mut node = GossipsubNode::new(
                GossipsubConfig {
                    publish_jitter_ms: 400,
                    ..Default::default()
                },
                ScoringConfig::default(),
                peers,
                AcceptAll,
            );
            node.subscribe(topic.clone());
            net.add_node(node);
        }
        net.run_until(8_000);
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"jittered".to_vec())
        });
        net.run_until(30_000);
        let arrivals: Vec<u64> = (1..8)
            .map(|i| {
                net.node(NodeId(i))
                    .delivered()
                    .iter()
                    .find(|d| d.data == b"jittered")
                    .expect("jitter must not cost delivery")
                    .at_ms
            })
            .collect();
        // constant links would put every first-hop arrival at +10 ms;
        // the per-target holds must spread them out
        let distinct: BTreeSet<u64> = arrivals.iter().copied().collect();
        assert!(distinct.len() > 1, "all arrivals identical despite jitter");
        assert!(arrivals.iter().all(|at| *at >= 8_010));
    }

    #[test]
    fn publish_before_mesh_formation_uses_known_subscribers() {
        let mut net = build_network(10, 6);
        // give Subscribe RPCs (but not heartbeats) time to land
        net.run_until(300);
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"early".to_vec())
        });
        net.run_until(15_000);
        let received = (1..10)
            .filter(|i| {
                net.node(NodeId(*i))
                    .delivered()
                    .iter()
                    .any(|d| d.data == b"early")
            })
            .count();
        assert!(received >= 8, "early publish reached only {received}/9");
    }
}
