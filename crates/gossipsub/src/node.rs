//! The GossipSub protocol state machine.

use crate::config::{GossipsubConfig, ScoringConfig};
use crate::score::PeerScore;
use crate::types::{MessageCache, MessageId, RawMessage, Rpc, Topic};
use rand::seq::SliceRandom;
use std::collections::{BTreeSet, HashMap};
use wakurln_netsim::{Bytes, Context, Node, NodeId};

/// Heartbeat timer token.
const TIMER_HEARTBEAT: u64 = 0;

/// Batch-validation flush timer token (armed only when the validator
/// reports a [`Validator::flush_interval_ms`]).
const TIMER_FLUSH: u64 = 1;

/// Application verdict on an incoming message, produced by a [`Validator`].
///
/// WAKU-RLN-RELAY plugs its proof/epoch/nullifier checks in through this
/// hook (§III "Routing and Slashing": "A routing peer follows the regular
/// routing protocol of WAKU-RELAY […] and additionally does the
/// verification steps of the RLN framework").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationResult {
    /// Deliver locally and forward to the mesh.
    Accept,
    /// Drop and penalize the forwarding peer (counts toward P4).
    Reject,
    /// Drop silently (e.g. out-of-window epoch from an honest but laggy
    /// peer — invalid, but not necessarily malicious).
    Ignore,
}

/// Outcome of handing a message to a (possibly batching) validator via
/// [`Validator::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The verdict is available immediately (serial validators).
    Decided(ValidationResult),
    /// The message was queued; its verdict will be released by a later
    /// [`Validator::flush`] under this ticket.
    Deferred(u64),
}

/// One deferred verdict released by [`Validator::flush`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchDecision {
    /// The ticket handed out by [`Validator::submit`].
    pub ticket: u64,
    /// The verdict for the queued message.
    pub result: ValidationResult,
    /// Simulated CPU cost attributed to this message, microseconds.
    pub cost_micros: u64,
}

/// Message validation hook.
///
/// Serial validators implement [`Validator::validate`] only. Batching
/// validators (e.g. WAKU-RLN-RELAY's staged proof-verification pipeline)
/// additionally override the `submit`/`flush` family: `submit` may defer
/// a message, and the node completes delivery/forwarding when a later
/// `flush` — triggered by a full batch or the flush timer — releases the
/// verdict.
///
/// `Send` because a node (validator included) may execute its share of a
/// same-timestamp event batch on a scheduler worker thread.
pub trait Validator: Send {
    /// Judges a message before delivery/forwarding. `now_ms` is simulated
    /// time; implementations may mutate internal state (nullifier maps…).
    fn validate(&mut self, now_ms: u64, topic: &Topic, data: &[u8]) -> ValidationResult;

    /// Simulated CPU cost of the validation just performed, in
    /// microseconds (drives the E6/E9 relayer-overhead accounting).
    fn last_cost_micros(&self) -> u64 {
        0
    }

    /// Hands a message to the validator, allowing it to defer the
    /// verdict for batched processing. The default forwards to
    /// [`Validator::validate`] and always decides immediately.
    fn submit(&mut self, now_ms: u64, topic: &Topic, data: &[u8]) -> SubmitOutcome {
        SubmitOutcome::Decided(self.validate(now_ms, topic, data))
    }

    /// Whether the internal batch has reached the size at which the node
    /// should flush without waiting for the timer.
    fn flush_due(&self) -> bool {
        false
    }

    /// Resolves queued messages, returning one [`BatchDecision`] per
    /// deferred ticket that is now decided (possibly none).
    fn flush(&mut self, _now_ms: u64) -> Vec<BatchDecision> {
        Vec::new()
    }

    /// The bounded staleness of the batch, i.e. how often the node should
    /// fire a flush timer. `None` (the default) disables the timer — the
    /// validator never defers.
    fn flush_interval_ms(&self) -> Option<u64> {
        None
    }
}

/// Accepts everything at zero cost (plain WAKU-RELAY behaviour).
#[derive(Clone, Copy, Debug, Default)]
pub struct AcceptAll;

impl Validator for AcceptAll {
    fn validate(&mut self, _now_ms: u64, _topic: &Topic, _data: &[u8]) -> ValidationResult {
        ValidationResult::Accept
    }
}

/// A message delivered to the local application.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// Content id.
    pub id: MessageId,
    /// Topic it arrived on.
    pub topic: Topic,
    /// Payload (shared with the forwarding path — no copy per delivery).
    pub data: Bytes,
    /// Simulated arrival time (ms).
    pub at_ms: u64,
}

/// A GossipSub v1.1 peer with a pluggable validator.
///
/// # Examples
///
/// See the crate-level docs for a complete small-network example; unit
/// tests in this module exercise mesh formation, gossip recovery and
/// score-based defenses.
pub struct GossipsubNode<V: Validator> {
    config: GossipsubConfig,
    /// Peers we can open connections to (bootstrap set).
    known_peers: Vec<NodeId>,
    /// Topics we subscribe to.
    subscriptions: BTreeSet<Topic>,
    /// Which known peer subscribes to what (learned from Subscribe RPCs).
    peer_topics: HashMap<Topic, BTreeSet<NodeId>>,
    /// Our mesh per topic.
    mesh: HashMap<Topic, BTreeSet<NodeId>>,
    mcache: MessageCache,
    /// Message id → first-seen time (ms).
    seen: HashMap<MessageId, u64>,
    score: PeerScore,
    validator: V,
    delivered: Vec<Delivery>,
    /// IWANTs already spent per peer this heartbeat.
    iwant_spent: HashMap<NodeId, usize>,
    /// Last time (ms) any RPC arrived from a peer — the liveness signal
    /// behind churn repair (crashed peers go quiet and are pruned after
    /// `peer_timeout_ms`).
    last_heard: HashMap<NodeId, u64>,
    /// Messages whose validation verdict is deferred inside a batching
    /// validator, keyed by the validator's ticket. Delivery and
    /// forwarding complete when a flush releases the verdict. The id is
    /// the one computed at receive time (content hashing is paid once).
    pending_validation: HashMap<u64, (NodeId, RawMessage, MessageId)>,
}

impl<V: Validator> GossipsubNode<V> {
    /// Creates a node with the given bootstrap peers and validator.
    pub fn new(
        config: GossipsubConfig,
        scoring: ScoringConfig,
        known_peers: Vec<NodeId>,
        validator: V,
    ) -> GossipsubNode<V> {
        config.assert_valid();
        GossipsubNode {
            mcache: MessageCache::new(config.history_length),
            config,
            known_peers,
            subscriptions: BTreeSet::new(),
            peer_topics: HashMap::new(),
            mesh: HashMap::new(),
            seen: HashMap::new(),
            score: PeerScore::new(scoring),
            validator,
            delivered: Vec::new(),
            iwant_spent: HashMap::new(),
            last_heard: HashMap::new(),
            pending_validation: HashMap::new(),
        }
    }

    /// Subscribes to a topic (call before the simulation starts, or use
    /// [`GossipsubNode::subscribe_live`] from an invoke context).
    pub fn subscribe(&mut self, topic: Topic) {
        self.subscriptions.insert(topic.clone());
        self.mesh.entry(topic).or_default();
    }

    /// Subscribes at runtime, announcing to all known peers.
    pub fn subscribe_live(&mut self, ctx: &mut Context<Rpc>, topic: Topic) {
        self.subscribe(topic.clone());
        for peer in self.known_peers.clone() {
            ctx.send(peer, Rpc::Subscribe(topic.clone()));
        }
    }

    /// Publishes a message to a topic: eager-push to the mesh (or to known
    /// topic peers while the mesh is still forming). The payload is
    /// shared ([`Bytes`]) from here on — each forward clones a reference,
    /// not the bytes.
    pub fn publish(
        &mut self,
        ctx: &mut Context<Rpc>,
        topic: Topic,
        data: impl Into<Bytes>,
    ) -> MessageId {
        let msg = RawMessage {
            topic: topic.clone(),
            data: data.into(),
        };
        let id = msg.id();
        self.seen.insert(id, ctx.now());
        self.mcache.put(msg.clone());
        ctx.count("published", 1);
        let targets = self.eager_targets(&topic, None);
        for peer in targets {
            ctx.send(peer, Rpc::Forward(msg.clone()));
        }
        id
    }

    /// Messages delivered to the application so far.
    pub fn delivered(&self) -> &[Delivery] {
        &self.delivered
    }

    /// Drains the delivered-message buffer.
    pub fn take_delivered(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.delivered)
    }

    /// Current mesh for a topic (test/diagnostic access).
    pub fn mesh_peers(&self, topic: &Topic) -> Vec<NodeId> {
        self.mesh
            .get(topic)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The peer-score table (diagnostics; baselines read attacker scores).
    pub fn peer_score(&self) -> &PeerScore {
        &self.score
    }

    /// The validator (e.g. to read RLN spam-detection state).
    pub fn validator(&self) -> &V {
        &self.validator
    }

    /// Mutable validator access.
    pub fn validator_mut(&mut self) -> &mut V {
        &mut self.validator
    }

    /// Whether this id has been seen (published or received).
    pub fn has_seen(&self, id: &MessageId) -> bool {
        self.seen.contains_key(id)
    }

    fn eager_targets(&self, topic: &Topic, exclude: Option<NodeId>) -> Vec<NodeId> {
        let mesh = self.mesh.get(topic);
        let candidates: Vec<NodeId> = match mesh {
            Some(m) if !m.is_empty() => m.iter().copied().collect(),
            _ => {
                // mesh not yet formed: fall back to known subscribers
                self.peer_topics
                    .get(topic)
                    .map(|s| s.iter().copied().take(self.config.mesh_n).collect())
                    .unwrap_or_default()
            }
        };
        candidates
            .into_iter()
            .filter(|p| Some(*p) != exclude)
            .filter(|p| !self.config.scoring_enabled || self.score.accepts_publish(*p))
            .collect()
    }

    fn handle_forward(&mut self, ctx: &mut Context<Rpc>, from: NodeId, msg: RawMessage) {
        let id = msg.id();
        if self.seen.contains_key(&id) {
            ctx.count("duplicates", 1);
            return;
        }
        self.seen.insert(id, ctx.now());

        match self.validator.submit(ctx.now(), &msg.topic, &msg.data) {
            SubmitOutcome::Decided(verdict) => {
                ctx.charge_cpu(self.validator.last_cost_micros());
                self.apply_verdict(ctx, from, msg, id, verdict);
            }
            SubmitOutcome::Deferred(ticket) => {
                ctx.count("validation_deferred", 1);
                self.pending_validation.insert(ticket, (from, msg, id));
                if self.validator.flush_due() {
                    self.complete_flush(ctx);
                }
            }
        }
    }

    /// Completes processing of a validated message: scoring, local
    /// delivery and mesh forwarding. Shared by the immediate path and the
    /// batched-flush path.
    fn apply_verdict(
        &mut self,
        ctx: &mut Context<Rpc>,
        from: NodeId,
        msg: RawMessage,
        id: MessageId,
        verdict: ValidationResult,
    ) {
        match verdict {
            ValidationResult::Reject => {
                if self.config.scoring_enabled {
                    self.score.record_invalid(from);
                }
                ctx.count("rejected", 1);
                return;
            }
            ValidationResult::Ignore => {
                ctx.count("ignored", 1);
                return;
            }
            ValidationResult::Accept => {}
        }

        if self.config.scoring_enabled {
            self.score.record_first_delivery(from);
        }
        if self.subscriptions.contains(&msg.topic) {
            self.delivered.push(Delivery {
                id,
                topic: msg.topic.clone(),
                data: msg.data.clone(),
                at_ms: ctx.now(),
            });
            ctx.count("delivered_app", 1);
        }
        self.mcache.put(msg.clone());
        for peer in self.eager_targets(&msg.topic, Some(from)) {
            ctx.send(peer, Rpc::Forward(msg.clone()));
        }
    }

    /// Drains the validator's batch and completes every released verdict.
    fn complete_flush(&mut self, ctx: &mut Context<Rpc>) {
        for decision in self.validator.flush(ctx.now()) {
            let Some((from, msg, id)) = self.pending_validation.remove(&decision.ticket) else {
                continue; // unknown ticket: validator-internal bookkeeping
            };
            ctx.charge_cpu(decision.cost_micros);
            self.apply_verdict(ctx, from, msg, id, decision.result);
        }
    }

    fn handle_ihave(
        &mut self,
        ctx: &mut Context<Rpc>,
        from: NodeId,
        _topic: Topic,
        ids: Vec<MessageId>,
    ) {
        if self.config.scoring_enabled && !self.score.accepts_gossip(from) {
            ctx.count("ihave_ignored_low_score", 1);
            return;
        }
        let spent = self.iwant_spent.entry(from).or_insert(0);
        let budget = self.config.max_iwant_per_heartbeat.saturating_sub(*spent);
        let wanted: Vec<MessageId> = ids
            .into_iter()
            .filter(|id| !self.seen.contains_key(id))
            .take(budget)
            .collect();
        if wanted.is_empty() {
            return;
        }
        *self.iwant_spent.get_mut(&from).expect("just inserted") += wanted.len();
        ctx.count("iwant_sent", wanted.len() as u64);
        ctx.send(from, Rpc::IWant { ids: wanted });
    }

    fn handle_iwant(&mut self, ctx: &mut Context<Rpc>, from: NodeId, ids: Vec<MessageId>) {
        for id in ids.into_iter().take(self.config.max_iwant_per_heartbeat) {
            if let Some(msg) = self.mcache.get(&id) {
                ctx.send(from, Rpc::Forward(msg.clone()));
            }
        }
    }

    fn handle_graft(&mut self, ctx: &mut Context<Rpc>, from: NodeId, topic: Topic) {
        let subscribed = self.subscriptions.contains(&topic);
        let acceptable = !self.config.scoring_enabled || !self.score.should_evict(from);
        if subscribed && acceptable {
            self.mesh.entry(topic).or_default().insert(from);
            self.score.set_in_mesh(from, true);
        } else {
            ctx.send(from, Rpc::Prune(topic));
        }
    }

    fn handle_prune(&mut self, from: NodeId, topic: Topic) {
        if let Some(mesh) = self.mesh.get_mut(&topic) {
            mesh.remove(&from);
        }
        let still_meshed = self.mesh.values().any(|m| m.contains(&from));
        self.score.set_in_mesh(from, still_meshed);
    }

    /// Churn repair: ping quiet peers, presume peers silent beyond the
    /// timeout dead, and drop them from mesh and candidate tables so the
    /// graft step can backfill with live peers.
    fn liveness_sweep(&mut self, ctx: &mut Context<Rpc>) {
        let timeout = self.config.peer_timeout_ms;
        if timeout == 0 {
            return;
        }
        let now = ctx.now();
        // everyone we currently track: mesh members plus known topic peers
        let mut tracked: BTreeSet<NodeId> = BTreeSet::new();
        tracked.extend(self.mesh.values().flatten().copied());
        tracked.extend(self.peer_topics.values().flatten().copied());
        let mut dead: Vec<NodeId> = Vec::new();
        for peer in tracked {
            // a peer we never heard from starts its clock at first sight
            let last = *self.last_heard.entry(peer).or_insert(now);
            let quiet_ms = now.saturating_sub(last);
            if quiet_ms >= timeout {
                dead.push(peer);
            } else if quiet_ms >= timeout / 2 {
                ctx.send(peer, Rpc::Ping);
                ctx.count("pings_sent", 1);
            }
        }
        for peer in dead {
            for mesh in self.mesh.values_mut() {
                mesh.remove(&peer);
            }
            for subscribers in self.peer_topics.values_mut() {
                subscribers.remove(&peer);
            }
            self.score.set_in_mesh(peer, false);
            self.last_heard.remove(&peer);
            ctx.count("peers_presumed_dead", 1);
        }
    }

    fn heartbeat(&mut self, ctx: &mut Context<Rpc>) {
        if self.config.scoring_enabled {
            self.score.heartbeat();
        }
        self.iwant_spent.clear();
        self.liveness_sweep(ctx);

        for topic in self.subscriptions.clone() {
            let mesh = self.mesh.entry(topic.clone()).or_default();

            // evict misbehaving peers
            if self.config.scoring_enabled {
                let evict: Vec<NodeId> = mesh
                    .iter()
                    .copied()
                    .filter(|p| self.score.should_evict(*p))
                    .collect();
                for peer in evict {
                    mesh.remove(&peer);
                    ctx.send(peer, Rpc::Prune(topic.clone()));
                    self.score.set_in_mesh(peer, false);
                    ctx.count("mesh_evictions", 1);
                }
            }

            // graft up to D when below D_lo
            if mesh.len() < self.config.mesh_n_low {
                let need = self.config.mesh_n - mesh.len();
                let mut candidates: Vec<NodeId> = self
                    .peer_topics
                    .get(&topic)
                    .map(|s| {
                        s.iter()
                            .copied()
                            .filter(|p| !mesh.contains(p))
                            .filter(|p| {
                                !self.config.scoring_enabled || !self.score.should_evict(*p)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                candidates.shuffle(ctx.rng());
                for peer in candidates.into_iter().take(need) {
                    mesh.insert(peer);
                    self.score.set_in_mesh(peer, true);
                    ctx.send(peer, Rpc::Graft(topic.clone()));
                }
            }

            // prune down to D when above D_hi
            if mesh.len() > self.config.mesh_n_high {
                let mut members: Vec<NodeId> = mesh.iter().copied().collect();
                // keep the best-scoring peers
                members.sort_by(|a, b| {
                    self.score
                        .score(*b)
                        .partial_cmp(&self.score.score(*a))
                        .expect("scores are finite")
                });
                for peer in members.into_iter().skip(self.config.mesh_n) {
                    mesh.remove(&peer);
                    ctx.send(peer, Rpc::Prune(topic.clone()));
                    self.score.set_in_mesh(peer, false);
                }
            }

            // lazy gossip: IHAVE to non-mesh peers
            let ids = self.mcache.gossip_ids(&topic, self.config.history_gossip);
            if !ids.is_empty() {
                let mesh_snapshot = self.mesh.get(&topic).cloned().unwrap_or_default();
                let mut candidates: Vec<NodeId> = self
                    .peer_topics
                    .get(&topic)
                    .map(|s| {
                        s.iter()
                            .copied()
                            .filter(|p| !mesh_snapshot.contains(p))
                            .filter(|p| {
                                !self.config.scoring_enabled || self.score.accepts_gossip(*p)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                candidates.shuffle(ctx.rng());
                for peer in candidates.into_iter().take(self.config.gossip_lazy) {
                    ctx.send(
                        peer,
                        Rpc::IHave {
                            topic: topic.clone(),
                            ids: ids.clone(),
                        },
                    );
                }
            }
        }

        self.mcache.shift();
        let ttl = self.config.seen_ttl_ms;
        let now = ctx.now();
        self.seen.retain(|_, t| now.saturating_sub(*t) < ttl);
        ctx.set_timer(self.config.heartbeat_ms, TIMER_HEARTBEAT);
    }
}

impl<V: Validator> Node for GossipsubNode<V> {
    type Message = Rpc;

    fn on_start(&mut self, ctx: &mut Context<Rpc>) {
        for topic in self.subscriptions.clone() {
            for peer in self.known_peers.clone() {
                ctx.send(peer, Rpc::Subscribe(topic.clone()));
            }
        }
        // desynchronize heartbeats across the network
        let jitter = {
            use rand::Rng;
            ctx.rng().gen_range(0..self.config.heartbeat_ms)
        };
        ctx.set_timer(self.config.heartbeat_ms + jitter, TIMER_HEARTBEAT);
        if let Some(interval) = self.validator.flush_interval_ms() {
            ctx.set_timer(interval, TIMER_FLUSH);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Rpc>, from: NodeId, msg: Rpc) {
        // any frame proves liveness, even one we will refuse to process
        self.last_heard.insert(from, ctx.now());
        if self.config.scoring_enabled && self.score.graylisted(from) {
            ctx.count("rpc_graylisted", 1);
            return;
        }
        match msg {
            Rpc::Subscribe(topic) => {
                let newly_learned = self
                    .peer_topics
                    .entry(topic.clone())
                    .or_default()
                    .insert(from);
                // Subscription exchange (as on libp2p connection setup):
                // announce our own interest back to a newly seen peer so
                // late joiners discover established subscribers. The
                // `newly_learned` guard terminates the exchange.
                if newly_learned && self.subscriptions.contains(&topic) {
                    ctx.send(from, Rpc::Subscribe(topic));
                }
            }
            Rpc::Unsubscribe(topic) => {
                if let Some(s) = self.peer_topics.get_mut(&topic) {
                    s.remove(&from);
                }
                self.handle_prune(from, topic);
            }
            Rpc::Forward(raw) => self.handle_forward(ctx, from, raw),
            Rpc::IHave { topic, ids } => self.handle_ihave(ctx, from, topic, ids),
            Rpc::IWant { ids } => self.handle_iwant(ctx, from, ids),
            Rpc::Graft(topic) => self.handle_graft(ctx, from, topic),
            Rpc::Prune(topic) => self.handle_prune(from, topic),
            Rpc::Ping => ctx.send(from, Rpc::Pong),
            Rpc::Pong => {} // the `last_heard` update above is the point
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Rpc>, token: u64) {
        if token == TIMER_HEARTBEAT {
            self.heartbeat(ctx);
        } else if token == TIMER_FLUSH {
            self.complete_flush(ctx);
            if let Some(interval) = self.validator.flush_interval_ms() {
                ctx.set_timer(interval, TIMER_FLUSH);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakurln_netsim::{topology, ConstantLatency, Network, UniformLatency};

    type Net = Network<GossipsubNode<AcceptAll>>;

    fn build_network(n: usize, seed: u64) -> Net {
        let topic = Topic::new("test");
        let adjacency = topology::random_regular(n, 6, seed);
        let mut net: Net = Network::new(
            UniformLatency {
                min_ms: 10,
                max_ms: 50,
            },
            seed,
        );
        for peers in adjacency {
            let mut node = GossipsubNode::new(
                GossipsubConfig::default(),
                ScoringConfig::default(),
                peers,
                AcceptAll,
            );
            node.subscribe(topic.clone());
            net.add_node(node);
        }
        net
    }

    #[test]
    fn meshes_form_within_degree_bounds() {
        let mut net = build_network(30, 1);
        net.run_until(10_000);
        let topic = Topic::new("test");
        let cfg = GossipsubConfig::default();
        for i in 0..30 {
            let mesh = net.node(NodeId(i)).mesh_peers(&topic);
            assert!(
                !mesh.is_empty(),
                "node {i} has an empty mesh after formation"
            );
            assert!(
                mesh.len() <= cfg.mesh_n_high + cfg.mesh_n,
                "node {i} oversized"
            );
        }
    }

    #[test]
    fn publish_reaches_all_subscribers() {
        let mut net = build_network(40, 2);
        net.run_until(10_000); // mesh formation
        let topic = Topic::new("test");
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"hello network".to_vec())
        });
        net.run_until(30_000);
        let mut received = 0;
        for i in 1..40 {
            if net
                .node(NodeId(i))
                .delivered()
                .iter()
                .any(|d| d.topic == topic && d.data == b"hello network")
            {
                received += 1;
            }
        }
        assert!(
            received >= 38,
            "only {received}/39 subscribers got the message"
        );
    }

    #[test]
    fn gossip_recovers_from_packet_loss() {
        let mut net = build_network(30, 3);
        net.run_until(10_000);
        net.set_loss_probability(0.20);
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"lossy".to_vec())
        });
        // several heartbeats give IHAVE/IWANT time to fill gaps
        net.run_until(40_000);
        let received = (1..30)
            .filter(|i| {
                net.node(NodeId(*i))
                    .delivered()
                    .iter()
                    .any(|d| d.data == b"lossy")
            })
            .count();
        assert!(received >= 27, "only {received}/29 after gossip recovery");
    }

    #[test]
    fn duplicate_suppression_counts() {
        let mut net = build_network(20, 4);
        net.run_until(10_000);
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"dup".to_vec())
        });
        net.run_until(20_000);
        // dense meshes guarantee duplicates; the seen-cache must absorb them
        assert!(net.metrics().counter("duplicates") > 0);
        for i in 0..20 {
            let count = net
                .node(NodeId(i))
                .delivered()
                .iter()
                .filter(|d| d.data == b"dup")
                .count();
            assert!(count <= 1, "node {i} delivered the message {count} times");
        }
    }

    /// A validator that rejects every payload starting with `0xBA`.
    struct RejectBad;
    impl Validator for RejectBad {
        fn validate(&mut self, _: u64, _: &Topic, data: &[u8]) -> ValidationResult {
            if data.first() == Some(&0xBA) {
                ValidationResult::Reject
            } else {
                ValidationResult::Accept
            }
        }
    }

    #[test]
    fn rejected_messages_do_not_propagate_and_sink_scores() {
        let topic = Topic::new("test");
        let adjacency = topology::full_mesh(6);
        let mut net: Network<GossipsubNode<RejectBad>> = Network::new(ConstantLatency(10), 5);
        for peers in adjacency {
            let mut node = GossipsubNode::new(
                GossipsubConfig::default(),
                ScoringConfig::default(),
                peers,
                RejectBad,
            );
            node.subscribe(topic.clone());
            net.add_node(node);
        }
        net.run_until(5_000);
        // node 0 spams invalid payloads
        for k in 0..8u8 {
            net.invoke(NodeId(0), |node, ctx| {
                node.publish(ctx, Topic::new("test"), vec![0xBA, k])
            });
        }
        net.run_until(8_000);
        // nothing delivered anywhere
        for i in 1..6 {
            assert!(net.node(NodeId(i)).delivered().is_empty());
        }
        assert!(net.metrics().counter("rejected") > 0);
        // direct receivers now grade node 0 negatively
        let punished = (1..6)
            .filter(|i| net.node(NodeId(*i)).peer_score().score(NodeId(0)) < 0.0)
            .count();
        assert!(punished >= 1, "no peer punished the spammer");
    }

    #[test]
    fn mesh_repairs_itself_after_neighbour_crashes() {
        let mut net = build_network(30, 11);
        net.run_until(10_000); // meshes form
        let topic = Topic::new("test");

        // crash every mesh neighbour of node 0 (worst-case local churn)
        let victims = net.node(NodeId(0)).mesh_peers(&topic);
        assert!(!victims.is_empty());
        for v in &victims {
            net.remove_node(*v);
        }

        // pings go unanswered; after peer_timeout_ms the dead are pruned
        // and the heartbeat grafts live replacements
        let timeout = GossipsubConfig::default().peer_timeout_ms;
        net.run_until(10_000 + 2 * timeout);
        let mesh = net.node(NodeId(0)).mesh_peers(&topic);
        assert!(
            !mesh.is_empty(),
            "mesh never recovered after neighbour crashes"
        );
        for peer in &mesh {
            assert!(
                !victims.contains(peer),
                "dead peer {peer} still in the mesh"
            );
            assert!(net.is_active(*peer), "mesh contains a removed node");
        }
        assert!(net.metrics().counter("peers_presumed_dead") >= victims.len() as u64);

        // and the repaired mesh still routes: a publish reaches survivors
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"after the storm".to_vec())
        });
        net.run_until(10_000 + 2 * timeout + 30_000);
        let survivors: Vec<usize> = (1..30).filter(|i| net.is_active(NodeId(*i))).collect();
        let received = survivors
            .iter()
            .filter(|i| {
                net.node(NodeId(**i))
                    .delivered()
                    .iter()
                    .any(|d| d.data == b"after the storm")
            })
            .count();
        assert!(
            received * 10 >= survivors.len() * 9,
            "only {received}/{} survivors reached after repair",
            survivors.len()
        );
    }

    #[test]
    fn quiet_peers_are_pinged_not_pruned() {
        let mut net = build_network(10, 12);
        let timeout = GossipsubConfig::default().peer_timeout_ms;
        // a long quiet stretch with no crashes: pings keep everyone alive
        net.run_until(4 * timeout);
        assert!(net.metrics().counter("pings_sent") > 0);
        assert_eq!(net.metrics().counter("peers_presumed_dead"), 0);
        let topic = Topic::new("test");
        for i in 0..10 {
            assert!(!net.node(NodeId(i)).mesh_peers(&topic).is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = build_network(15, seed);
            net.run_until(8_000);
            net.invoke(NodeId(0), |node, ctx| {
                node.publish(ctx, Topic::new("test"), b"det".to_vec())
            });
            net.run_until(20_000);
            (1..15)
                .map(|i| {
                    net.node(NodeId(i))
                        .delivered()
                        .iter()
                        .map(|d| d.at_ms)
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn publish_before_mesh_formation_uses_known_subscribers() {
        let mut net = build_network(10, 6);
        // give Subscribe RPCs (but not heartbeats) time to land
        net.run_until(300);
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, Topic::new("test"), b"early".to_vec())
        });
        net.run_until(15_000);
        let received = (1..10)
            .filter(|i| {
                net.node(NodeId(*i))
                    .delivered()
                    .iter()
                    .any(|d| d.data == b"early")
            })
            .count();
        assert!(received >= 8, "early publish reached only {received}/9");
    }
}
