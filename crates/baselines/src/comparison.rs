//! Head-to-head spam-protection comparison: RLN vs peer scoring vs PoW.
//!
//! One common scenario — `n` honest peers each publish one message, one
//! attacker floods `k` distinct messages inside a single epoch — executed
//! under each protection scheme. This is the engine behind experiment E6
//! (the paper's §I claims: peer scoring provides no *global* protection
//! and is Sybil-cheap; PoW throttles honest weak devices as much as
//! spammers; RLN removes the spammer network-wide and punishes them
//! financially).

use crate::pow::{self, DeviceProfile, PowEnvelope, PowValidator};
use waku_rln_relay::{Testbed, TestbedConfig};
use wakurln_gossipsub::AcceptAll;
use wakurln_netsim::{topology, Network, NodeId, UniformLatency};
use wakurln_relay::{WakuMessage, WakuRelayNode};

/// Result of one scheme under the common scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemeOutcome {
    /// Scheme label for the report.
    pub scheme: &'static str,
    /// Fraction of honest messages that reached a majority of peers.
    pub honest_delivery_rate: f64,
    /// Fraction of the attacker's `k` messages that reached a majority.
    pub spam_delivery_rate: f64,
    /// Whether the attacker ends the scenario globally excluded
    /// (membership slashed / unable to continue network-wide).
    pub attacker_globally_excluded: bool,
    /// Whether the attacker paid a financial penalty.
    pub attacker_fined: bool,
    /// Mean modeled CPU (µs) spent on validation per relaying peer.
    pub relayer_cpu_micros_mean: f64,
}

/// Common scenario parameters.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Honest peer count (the attacker is one additional peer, index 0).
    pub honest_peers: usize,
    /// Spam messages the attacker emits in one epoch.
    pub spam_k: usize,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Scenario {
        Scenario {
            honest_peers: 11,
            spam_k: 8,
            seed: 7,
        }
    }
}

fn majority(n_peers: usize) -> usize {
    n_peers / 2
}

/// Runs the scenario under WAKU-RLN-RELAY.
pub fn run_rln(scenario: Scenario) -> SchemeOutcome {
    let n = scenario.honest_peers + 1;
    let mut tb = Testbed::build(TestbedConfig {
        n_peers: n,
        tree_depth: 10,
        degree: 4,
        seed: scenario.seed,
        ..Default::default()
    });
    tb.run(8_000, 1_000);

    let attacker = 0usize;
    // honest publishes
    let honest_payloads: Vec<Vec<u8>> =
        (1..n).map(|i| format!("honest-{i}").into_bytes()).collect();
    for (i, p) in honest_payloads.iter().enumerate() {
        // lint:allow(panic-path, reason = "comparison driver: honest members are registered during testbed setup, so publish cannot fail")
        tb.publish(i + 1, p).expect("honest publish");
    }
    // the flood
    let spam_payloads: Vec<Vec<u8>> = (0..scenario.spam_k)
        .map(|i| format!("spam-{i}").into_bytes())
        .collect();
    for p in &spam_payloads {
        let _ = tb.publish_spam(attacker, p);
    }
    tb.run(40_000, 1_000);

    let honest_delivered = honest_payloads
        .iter()
        .enumerate()
        .filter(|(i, p)| tb.delivery_count(p, i + 1) >= majority(n))
        .count();
    let spam_delivered = spam_payloads
        .iter()
        .filter(|p| tb.delivery_count(p, attacker) >= majority(n))
        .count();
    let cpu_total: u64 = (0..n as u64)
        .map(|i| tb.net.metrics().node_counter(i, "cpu_micros"))
        .sum();
    // the attacker's escrowed stake was (partly) burnt on slashing —
    // that's the financial punishment (§I: "spammers are financially
    // punished and those who find spammers are rewarded")
    let fined = tb.chain.balance_of(wakurln_ethsim::types::Address::BURN) > 0;

    SchemeOutcome {
        scheme: "waku-rln-relay",
        honest_delivery_rate: honest_delivered as f64 / honest_payloads.len() as f64,
        spam_delivery_rate: spam_delivered as f64 / spam_payloads.len() as f64,
        attacker_globally_excluded: !tb.is_member(attacker),
        attacker_fined: fined,
        relayer_cpu_micros_mean: cpu_total as f64 / n as f64,
    }
}

/// Runs the scenario under GossipSub peer scoring only (no message
/// validity concept: spam is indistinguishable from traffic).
pub fn run_peer_scoring(scenario: Scenario) -> SchemeOutcome {
    let n = scenario.honest_peers + 1;
    let adjacency = topology::random_regular(n, 4, scenario.seed);
    let mut net: Network<WakuRelayNode<AcceptAll>> = Network::new(
        UniformLatency {
            min_ms: 10,
            max_ms: 80,
        },
        scenario.seed,
    );
    for peers in adjacency {
        net.add_node(WakuRelayNode::with_defaults(peers, AcceptAll));
    }
    net.run_until(8_000);

    let attacker = 0usize;
    let honest_payloads: Vec<Vec<u8>> =
        (1..n).map(|i| format!("honest-{i}").into_bytes()).collect();
    for (i, p) in honest_payloads.iter().enumerate() {
        let msg = WakuMessage::new("/app", p.clone());
        net.invoke(NodeId(i + 1), |node, ctx| node.publish(ctx, &msg));
    }
    let spam_payloads: Vec<Vec<u8>> = (0..scenario.spam_k)
        .map(|i| format!("spam-{i}").into_bytes())
        .collect();
    for p in &spam_payloads {
        let msg = WakuMessage::new("/app", p.clone());
        net.invoke(NodeId(attacker), |node, ctx| node.publish(ctx, &msg));
    }
    net.run_until(48_000);

    let delivered = |payload: &[u8], exclude: usize| -> usize {
        (0..n)
            .filter(|i| *i != exclude)
            .filter(|i| {
                net.node(NodeId(*i))
                    .waku_deliveries()
                    .iter()
                    .any(|(m, _)| m.payload == payload)
            })
            .count()
    };
    let honest_delivered = honest_payloads
        .iter()
        .enumerate()
        .filter(|(i, p)| delivered(p, i + 1) >= majority(n))
        .count();
    let spam_delivered = spam_payloads
        .iter()
        .filter(|p| delivered(p, attacker) >= majority(n))
        .count();
    // is the attacker graylisted anywhere? spam was *valid-looking*, so
    // scores only went up
    let excluded_everywhere = (1..n).all(|i| {
        net.node(NodeId(i))
            .gossipsub()
            .peer_score()
            .graylisted(NodeId(attacker))
    });
    let cpu_total: u64 = (0..n as u64)
        .map(|i| net.metrics().node_counter(i, "cpu_micros"))
        .sum();

    SchemeOutcome {
        scheme: "peer-scoring",
        honest_delivery_rate: honest_delivered as f64 / honest_payloads.len() as f64,
        spam_delivery_rate: spam_delivered as f64 / spam_payloads.len() as f64,
        attacker_globally_excluded: excluded_everywhere,
        attacker_fined: false,
        relayer_cpu_micros_mean: cpu_total as f64 / n as f64,
    }
}

/// PoW scenario parameters: the attacker's and honest devices' hash rates
/// determine who can afford to publish.
#[derive(Clone, Copy, Debug)]
pub struct PowScenario {
    /// Base scenario.
    pub scenario: Scenario,
    /// Required leading-zero bits.
    pub difficulty_bits: u32,
    /// The attacker's device (typically a GPU rig).
    pub attacker_device: DeviceProfile,
    /// Honest devices (typically phones).
    pub honest_device: DeviceProfile,
    /// Epoch used for throughput budgeting, seconds.
    pub epoch_secs: u64,
}

impl Default for PowScenario {
    fn default() -> PowScenario {
        PowScenario {
            scenario: Scenario::default(),
            difficulty_bits: 22,
            // lint:allow(panic-path, reason = "pow::DEVICES is a fixed static table; index 3 (gpu-rig) exists by construction")
            attacker_device: pow::DEVICES[3], // gpu-rig
            // lint:allow(panic-path, reason = "pow::DEVICES is a fixed static table; index 1 (phone) exists by construction")
            honest_device: pow::DEVICES[1], // phone
            epoch_secs: 10,
        }
    }
}

/// Runs the scenario under PoW. Sealing feasibility is budgeted from the
/// device hash rates (the simulation hosts cannot grind 22-bit targets in
/// unit tests); the envelopes routed through the network are genuinely
/// sealed at a small *wire* difficulty so that validation is real.
pub fn run_pow(params: PowScenario) -> SchemeOutcome {
    let scenario = params.scenario;
    let n = scenario.honest_peers + 1;
    const WIRE_DIFFICULTY: u32 = 8;

    let adjacency = topology::random_regular(n, 4, scenario.seed);
    let mut net: Network<WakuRelayNode<PowValidator>> = Network::new(
        UniformLatency {
            min_ms: 10,
            max_ms: 80,
        },
        scenario.seed,
    );
    for peers in adjacency {
        net.add_node(WakuRelayNode::with_defaults(
            peers,
            PowValidator::new(WIRE_DIFFICULTY),
        ));
    }
    net.run_until(8_000);

    // honest budget: can a phone seal one message per epoch?
    let honest_budget = params
        .honest_device
        .seals_per_epoch(params.difficulty_bits, params.epoch_secs);
    let honest_payloads: Vec<Vec<u8>> =
        (1..n).map(|i| format!("honest-{i}").into_bytes()).collect();
    let mut honest_sent = 0usize;
    for (i, p) in honest_payloads.iter().enumerate() {
        if honest_budget >= 1.0 {
            let (env, _) = pow::seal(p, WIRE_DIFFICULTY);
            let msg = WakuMessage::new("/app", env.encode());
            net.invoke(NodeId(i + 1), |node, ctx| node.publish(ctx, &msg));
            honest_sent += 1;
        }
    }

    // attacker budget: a GPU rig seals as many as its hash rate allows
    let attacker_budget = params
        .attacker_device
        .seals_per_epoch(params.difficulty_bits, params.epoch_secs)
        .floor() as usize;
    let spam_payloads: Vec<Vec<u8>> = (0..scenario.spam_k)
        .map(|i| format!("spam-{i}").into_bytes())
        .collect();
    let mut spam_sent = Vec::new();
    for p in spam_payloads.iter().take(attacker_budget) {
        let (env, _) = pow::seal(p, WIRE_DIFFICULTY);
        let msg = WakuMessage::new("/app", env.encode());
        net.invoke(NodeId(0), |node, ctx| node.publish(ctx, &msg));
        spam_sent.push(p.clone());
    }
    net.run_until(48_000);

    let delivered = |payload: &[u8], exclude: usize| -> usize {
        (0..n)
            .filter(|i| *i != exclude)
            .filter(|i| {
                net.node(NodeId(*i)).waku_deliveries().iter().any(|(m, _)| {
                    PowEnvelope::decode(&m.payload)
                        .map(|e| e.payload == payload)
                        .unwrap_or(false)
                })
            })
            .count()
    };
    let honest_delivered = honest_payloads
        .iter()
        .enumerate()
        .filter(|(i, p)| delivered(p, i + 1) >= majority(n))
        .count();
    let spam_delivered = spam_payloads
        .iter()
        .filter(|p| delivered(p, 0) >= majority(n))
        .count();
    let _ = honest_sent;
    let cpu_total: u64 = (0..n as u64)
        .map(|i| net.metrics().node_counter(i, "cpu_micros"))
        .sum();

    SchemeOutcome {
        scheme: "proof-of-work",
        honest_delivery_rate: honest_delivered as f64 / honest_payloads.len() as f64,
        spam_delivery_rate: spam_delivered as f64 / spam_payloads.len() as f64,
        attacker_globally_excluded: false, // PoW never identifies anyone
        attacker_fined: false,
        relayer_cpu_micros_mean: cpu_total as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rln_stops_spam_and_slashes() {
        let out = run_rln(Scenario::default());
        assert!(out.honest_delivery_rate >= 0.8, "{out:?}");
        // at most the first spam message of the epoch goes through
        assert!(out.spam_delivery_rate <= 1.0 / 8.0 + 1e-9, "{out:?}");
        assert!(out.attacker_globally_excluded, "{out:?}");
        assert!(out.attacker_fined, "{out:?}");
    }

    #[test]
    fn peer_scoring_lets_spam_through() {
        let out = run_peer_scoring(Scenario::default());
        assert!(out.honest_delivery_rate >= 0.8, "{out:?}");
        // the paper's criticism: valid-looking bulk messages sail through
        assert!(out.spam_delivery_rate >= 0.9, "{out:?}");
        assert!(!out.attacker_globally_excluded, "{out:?}");
        assert!(!out.attacker_fined);
    }

    #[test]
    fn pow_blocks_phones_not_gpu_spammers() {
        let out = run_pow(PowScenario {
            // phone honest senders, GPU attacker, difficulty sized so a
            // phone cannot seal within an epoch
            difficulty_bits: 24,
            ..Default::default()
        });
        // honest phones were silenced by the difficulty…
        assert!(out.honest_delivery_rate <= 0.1, "{out:?}");
        // …while the GPU attacker spams freely
        assert!(out.spam_delivery_rate >= 0.9, "{out:?}");
        assert!(!out.attacker_globally_excluded);
    }

    #[test]
    fn pow_at_phone_difficulty_lets_everyone_through() {
        let out = run_pow(PowScenario {
            difficulty_bits: 16, // a phone seals ~30/epoch
            ..Default::default()
        });
        assert!(out.honest_delivery_rate >= 0.8, "{out:?}");
        assert!(out.spam_delivery_rate >= 0.9, "{out:?}");
    }
}
