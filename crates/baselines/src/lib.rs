//! # wakurln-baselines
//!
//! The comparator schemes from the paper's §I and the attack library that
//! exercises them:
//!
//! * [`pow`] — Proof-of-Work spam protection (Whisper / EIP-627 style),
//!   with device profiles that expose its resource-discrimination problem,
//! * [`attacks`] — double-signal floods, epoch replays, Sybil costing,
//! * [`comparison`] — the E6 engine: one spam scenario, three schemes
//!   (WAKU-RLN-RELAY vs peer scoring vs PoW), comparable outcome rows.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attacks;
pub mod comparison;
pub mod pow;

pub use attacks::{double_signal_burst, epoch_replay_attack, sybil_cost, SpamReport, SybilCost};
pub use comparison::{run_peer_scoring, run_pow, run_rln, PowScenario, Scenario, SchemeOutcome};
pub use pow::{seal, verify, DeviceProfile, PowEnvelope, PowValidator, DEVICES};
