//! The attack library: adversarial behaviours the evaluation throws at
//! each spam-protection scheme.

use waku_rln_relay::{PublishError, Testbed};
use wakurln_ethsim::types::Wei;

/// Outcome of one spam burst against the RLN testbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpamReport {
    /// Messages the attacker handed to the network.
    pub attempted: u64,
    /// Attempts the attacker's own node could not even send
    /// (e.g. membership already slashed).
    pub send_failures: u64,
    /// Distinct spam payloads that reached at least half the honest peers.
    pub delivered_majority: u64,
    /// Double-signal detections across all validators after the burst.
    pub detections: u64,
    /// Whether the attacker lost their membership (slashed on chain).
    pub slashed: bool,
}

/// The double-signaling flood: publish `k` distinct messages inside one
/// epoch, bypassing the attacker's local rate limiter. This is the attack
/// the RLN construction is designed to make self-defeating (§II/§III).
pub fn double_signal_burst(testbed: &mut Testbed, attacker: usize, k: usize) -> SpamReport {
    let mut report = SpamReport::default();
    let payloads: Vec<Vec<u8>> = (0..k)
        .map(|i| format!("spam-burst-{i}").into_bytes())
        .collect();
    for payload in &payloads {
        report.attempted += 1;
        if let Err(e) = testbed.publish_spam(attacker, payload) {
            match e {
                PublishError::MembershipLost => report.send_failures += 1,
                // lint:allow(panic-path, reason = "attack driver: an unhandled PublishError variant means the scenario wiring is wrong, not a runtime condition")
                other => panic!("unexpected publish failure: {other}"),
            }
        }
    }
    // let gossip, detection, slashing and sync play out
    testbed.run(40_000, 1_000);
    let half = testbed.config().n_peers / 2;
    for payload in &payloads {
        if testbed.delivery_count(payload, attacker) >= half {
            report.delivered_majority += 1;
        }
    }
    report.detections = testbed.total_spam_detections();
    report.slashed = !testbed.is_member(attacker);
    report
}

/// The epoch-replay attack (§III): a peer signs messages for epochs far in
/// the past (or future). Returns how many of `offsets` got majority
/// delivery — with a correct `Thr` window this is the count of offsets
/// inside the window.
pub fn epoch_replay_attack(
    testbed: &mut Testbed,
    attacker: usize,
    offsets: &[i64],
) -> Vec<(i64, bool)> {
    let mut results = Vec::with_capacity(offsets.len());
    for &offset in offsets {
        let payload = format!("replay-{offset}").into_bytes();
        testbed
            .publish_with_epoch_offset(attacker, &payload, offset)
            // lint:allow(panic-path, reason = "attack driver: the attacker was registered with funded stake during setup")
            .expect("attacker can always send");
        testbed.run(15_000, 1_000);
        let half = testbed.config().n_peers / 2;
        results.push((offset, testbed.delivery_count(&payload, attacker) >= half));
    }
    results
}

/// Economic comparison of Sybil attacks (§I/§IV: "Sybil attack is also
/// mitigated by making registration expensive").
///
/// Returns the attacker's cost in wei to field `bot_count` identities
/// under each scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SybilCost {
    /// Number of identities.
    pub bot_count: u64,
    /// RLN: stake per registration, all of it slashable on first
    /// double-signal.
    pub rln_wei: Wei,
    /// Peer scoring: identities are free (fresh `NodeId`s reset scores).
    pub peer_scoring_wei: Wei,
    /// PoW: identities are free; the cost is per *message*, not per
    /// identity.
    pub pow_wei: Wei,
}

/// Computes the identity-acquisition cost table.
pub fn sybil_cost(bot_count: u64, stake: Wei) -> SybilCost {
    SybilCost {
        bot_count,
        rln_wei: stake * bot_count as Wei,
        peer_scoring_wei: 0,
        pow_wei: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waku_rln_relay::TestbedConfig;

    fn testbed() -> Testbed {
        let mut tb = Testbed::build(TestbedConfig {
            n_peers: 8,
            tree_depth: 10,
            degree: 4,
            seed: 5,
            ..Default::default()
        });
        tb.run(8_000, 1_000); // mesh formation
        tb
    }

    #[test]
    fn double_signal_burst_gets_attacker_slashed() {
        let mut tb = testbed();
        let report = double_signal_burst(&mut tb, 0, 4);
        assert_eq!(report.attempted, 4);
        assert!(report.detections >= 1, "no detection: {report:?}");
        assert!(report.slashed, "attacker kept membership: {report:?}");
        // the flood did not achieve majority delivery for most messages
        assert!(
            report.delivered_majority <= 1,
            "spam flooded through: {report:?}"
        );
    }

    #[test]
    fn replay_outside_window_blocked_inside_allowed() {
        let mut tb = testbed();
        // Thr = 2 with default scheme (T = 10 s, D = 20 s)
        let results = epoch_replay_attack(&mut tb, 1, &[-10, -1, 0]);
        let map: std::collections::HashMap<i64, bool> = results.into_iter().collect();
        assert!(!map[&-10], "deep replay delivered");
        assert!(map[&0], "current epoch blocked");
        assert!(map[&-1], "within-window epoch blocked");
    }

    #[test]
    fn sybil_cost_table() {
        let c = sybil_cost(1_000_000, wakurln_ethsim::types::ETHER);
        assert_eq!(c.peer_scoring_wei, 0);
        assert_eq!(c.pow_wei, 0);
        assert_eq!(c.rln_wei, 1_000_000 * wakurln_ethsim::types::ETHER);
    }
}
