//! Proof-of-Work spam protection (the Whisper / EIP-627 baseline).
//!
//! §I: PoW "is computationally expensive hence not suitable for
//! resource-constrained devices". Each message must carry a nonce such
//! that `SHA-256(payload ‖ nonce)` has `difficulty_bits` leading zero
//! bits; sealing costs an expected `2^difficulty_bits` hashes, while
//! verification costs one hash. The spam rate of an attacker is bounded
//! only by their hash rate — and so is an honest phone's publish rate,
//! which is the scheme's fatal flaw reproduced in experiment E6.

use serde::{Deserialize, Serialize};
use wakurln_crypto::sha256::Sha256;
use wakurln_gossipsub::{Topic, ValidationResult, Validator};

/// A PoW-sealed message envelope.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowEnvelope {
    /// The nonce making the hash meet the difficulty target.
    pub nonce: u64,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl PowEnvelope {
    /// Serializes as `nonce:u64 | payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.payload.len());
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses the wire form.
    ///
    /// Returns `None` when shorter than the nonce header.
    pub fn decode(bytes: &[u8]) -> Option<PowEnvelope> {
        if bytes.len() < 8 {
            return None;
        }
        let mut nonce = [0u8; 8];
        nonce.copy_from_slice(&bytes[..8]);
        Some(PowEnvelope {
            nonce: u64::from_le_bytes(nonce),
            payload: bytes[8..].to_vec(),
        })
    }
}

fn pow_hash(payload: &[u8], nonce: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(payload);
    h.update(&nonce.to_le_bytes());
    h.finalize()
}

/// Counts leading zero bits of a digest.
fn leading_zero_bits(digest: &[u8; 32]) -> u32 {
    let mut bits = 0;
    for byte in digest {
        if *byte == 0 {
            bits += 8;
        } else {
            bits += byte.leading_zeros();
            break;
        }
    }
    bits
}

/// Seals `payload` at the given difficulty, returning the envelope and the
/// number of hash attempts spent (the real work an honest device pays).
pub fn seal(payload: &[u8], difficulty_bits: u32) -> (PowEnvelope, u64) {
    let mut nonce = 0u64;
    loop {
        if leading_zero_bits(&pow_hash(payload, nonce)) >= difficulty_bits {
            return (
                PowEnvelope {
                    nonce,
                    payload: payload.to_vec(),
                },
                nonce + 1,
            );
        }
        nonce += 1;
    }
}

/// Verifies an envelope against the difficulty (one hash).
pub fn verify(envelope: &PowEnvelope, difficulty_bits: u32) -> bool {
    leading_zero_bits(&pow_hash(&envelope.payload, envelope.nonce)) >= difficulty_bits
}

/// A device class, characterized by its hash rate — the axis along which
/// PoW discriminates (paper §I: resource-restricted devices).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human label for reports.
    pub name: &'static str,
    /// SHA-256 hashes per second this device sustains.
    pub hash_rate_hz: f64,
}

/// Device classes used by the E6/E9 comparisons.
pub const DEVICES: [DeviceProfile; 4] = [
    DeviceProfile {
        name: "iot-sensor",
        hash_rate_hz: 5_000.0,
    },
    DeviceProfile {
        name: "phone",
        hash_rate_hz: 200_000.0,
    },
    DeviceProfile {
        name: "laptop",
        hash_rate_hz: 5_000_000.0,
    },
    DeviceProfile {
        name: "gpu-rig",
        hash_rate_hz: 2_000_000_000.0,
    },
];

impl DeviceProfile {
    /// Expected seconds to seal one message at `difficulty_bits`.
    pub fn seconds_per_seal(&self, difficulty_bits: u32) -> f64 {
        (1u64 << difficulty_bits.min(63)) as f64 / self.hash_rate_hz
    }

    /// Messages this device can seal per `epoch_secs` window (the honest
    /// throughput PoW permits — and equally the spam throughput it fails
    /// to stop for powerful attackers).
    pub fn seals_per_epoch(&self, difficulty_bits: u32, epoch_secs: u64) -> f64 {
        epoch_secs as f64 / self.seconds_per_seal(difficulty_bits)
    }
}

/// GossipSub validator enforcing the PoW difficulty.
#[derive(Clone, Debug)]
pub struct PowValidator {
    /// Required leading zero bits.
    pub difficulty_bits: u32,
    /// Modeled cost of one verification hash, microseconds.
    pub verify_micros: u64,
    accepted: u64,
    rejected: u64,
}

impl PowValidator {
    /// Creates a validator for the given difficulty.
    pub fn new(difficulty_bits: u32) -> PowValidator {
        PowValidator {
            difficulty_bits,
            verify_micros: 5,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Envelopes accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Envelopes rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

impl Validator for PowValidator {
    fn validate(&mut self, _now_ms: u64, _topic: &Topic, data: &[u8]) -> ValidationResult {
        // peel off the WAKU envelope first, then check the seal
        let envelope = wakurln_relay::WakuMessage::decode(data)
            .ok()
            .and_then(|waku| PowEnvelope::decode(&waku.payload));
        match envelope {
            Some(env) if verify(&env, self.difficulty_bits) => {
                self.accepted += 1;
                ValidationResult::Accept
            }
            _ => {
                self.rejected += 1;
                ValidationResult::Reject
            }
        }
    }

    fn last_cost_micros(&self) -> u64 {
        self.verify_micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_verify_roundtrip() {
        let (env, attempts) = seal(b"hello", 8);
        assert!(verify(&env, 8));
        assert!(attempts >= 1);
        // stricter target not necessarily met
        assert!(!verify(&env, 30));
    }

    #[test]
    fn tampered_payload_fails() {
        let (mut env, _) = seal(b"hello", 10);
        env.payload[0] ^= 1;
        assert!(!verify(&env, 10));
    }

    #[test]
    fn envelope_codec_roundtrip() {
        let (env, _) = seal(b"data", 4);
        assert_eq!(PowEnvelope::decode(&env.encode()), Some(env));
        assert_eq!(PowEnvelope::decode(b"short"), None);
    }

    #[test]
    fn sealing_cost_grows_exponentially() {
        // average attempts over a few payloads to smooth variance
        let avg = |bits: u32| -> f64 {
            let total: u64 = (0..8u8).map(|i| seal(&[i, bits as u8], bits).1).sum();
            total as f64 / 8.0
        };
        let low = avg(4);
        let high = avg(10);
        // expected 16 vs 1024 attempts; allow generous slack
        assert!(high > low * 8.0, "low {low}, high {high}");
    }

    #[test]
    fn leading_zero_bits_edges() {
        assert_eq!(leading_zero_bits(&[0xff; 32]), 0);
        assert_eq!(leading_zero_bits(&[0x00; 32]), 256);
        let mut d = [0u8; 32];
        d[0] = 0x01;
        assert_eq!(leading_zero_bits(&d), 7);
    }

    #[test]
    fn device_profiles_discriminate() {
        // the paper's point: at a difficulty that barely slows a laptop,
        // an IoT sensor cannot publish at all within an epoch
        let difficulty = 22;
        let epoch = 10;
        let iot = DEVICES[0].seals_per_epoch(difficulty, epoch);
        let laptop = DEVICES[2].seals_per_epoch(difficulty, epoch);
        let gpu = DEVICES[3].seals_per_epoch(difficulty, epoch);
        assert!(iot < 0.1, "iot can seal {iot} msgs/epoch");
        assert!(laptop >= 1.0, "laptop only {laptop}");
        // and a GPU rig spams right through the same difficulty
        assert!(gpu > 1000.0, "gpu {gpu}");
    }

    #[test]
    fn validator_accepts_valid_rejects_invalid() {
        let wrap =
            |env: &PowEnvelope| wakurln_relay::WakuMessage::new("/app", env.encode()).encode();
        let mut v = PowValidator::new(8);
        let (env, _) = seal(b"ok", 8);
        assert_eq!(
            v.validate(0, &Topic::new("t"), &wrap(&env)),
            ValidationResult::Accept
        );
        let (weak, _) = seal(b"weak", 1);
        // weak seal almost certainly fails 8-bit target; if it got lucky,
        // adjust by checking verify first
        let expected = if verify(&weak, 8) {
            ValidationResult::Accept
        } else {
            ValidationResult::Reject
        };
        assert_eq!(v.validate(0, &Topic::new("t"), &wrap(&weak)), expected);
        assert_eq!(
            v.validate(0, &Topic::new("t"), b"junk"),
            ValidationResult::Reject
        );
        assert!(v.rejected() >= 1);
    }
}
