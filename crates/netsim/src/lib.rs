//! # wakurln-netsim
//!
//! A deterministic discrete-event network simulator: the substrate on
//! which the reproduction's GossipSub / WAKU-RELAY / WAKU-RLN-RELAY
//! protocols run, replacing the authors' live libp2p deployment with a
//! reproducible environment (DESIGN.md §2).
//!
//! * [`sim`] — event queue, nodes, contexts, deterministic execution,
//!   churn support (late joins via [`sim::Network::add_node`], crashes
//!   via [`sim::Network::remove_node`], crash→restart via
//!   [`sim::Network::restore_node`]) and fault injection (partitions via
//!   [`sim::Network::set_partition`], link-degradation bursts via
//!   [`sim::Network::set_degradation`]),
//! * [`scheduler`] — the deterministic sharded batch scheduler: events
//!   sharing a timestamp execute as a shard-partitioned batch (worker
//!   threads behind the `parallel` feature) and merge back in canonical
//!   order, so `threads = 1` and `threads = N` are byte-identical,
//! * [`bytes`] — `Arc`-backed shared payload bytes (clone-free gossip
//!   forwarding with `O(1)` wire-size accounting),
//! * [`latency`] — link latency and loss models (and the network-delay
//!   bound `D` that sizes the protocol's epoch threshold `Thr = D/T`),
//! * [`topology`] — bootstrap peer-set generators,
//! * [`metrics`] — counters, per-node accounting, latency series.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bytes;
pub mod latency;
pub mod metrics;
pub mod scheduler;
pub mod sim;
pub mod topology;
mod wheel;

pub use bytes::Bytes;
pub use latency::{ConstantLatency, InternetLatency, LatencyModel, UniformLatency};
pub use metrics::Metrics;
pub use scheduler::stream_seed;
pub use sim::{Context, Network, Node, NodeId, Payload, QuiescenceOutcome};
