//! The deterministic sharded batch scheduler.
//!
//! [`Network::run_until`](crate::sim::Network::run_until) used to pop one
//! event at a time off the global queue; every callback serialized on the
//! single shared RNG and the shared metrics table. This module replaces
//! that loop with a **batch → shard → merge** pipeline that admits
//! multi-threaded execution without giving up byte-identical determinism:
//!
//! 1. **Batch** — pop *all* events sharing the earliest timestamp, in
//!    sequence order.
//! 2. **Shard** — partition the batch by destination node. Each node owns
//!    a private RNG stream (split from the network seed by node index via
//!    [`stream_seed`]), so a node's execution depends only on its own
//!    state and events — never on which shard or thread it lands on.
//!    Shards execute on scoped worker threads (feature `parallel`), or
//!    inline when the batch is too small to amortize a fan-out.
//! 3. **Merge** — each executed event hands back its collected effects
//!    and buffered metric updates; the main thread replays them in
//!    canonical event-sequence order, sampling link latency/loss from a
//!    dedicated link stream and assigning fresh sequence numbers.
//!
//! Because node streams are keyed by node index (not by shard), and the
//! merge order is the canonical `(timestamp, sequence)` order (not the
//! completion order), `threads = 1` and `threads = N` produce the same
//! simulation bit for bit — the property `tests/scheduler_determinism.rs`
//! holds the whole stack to.
//!
//! Workers receive **owned** node slots through channels (the workspace
//! forbids `unsafe`, so no scoped `&mut` aliasing tricks): a round moves
//! each busy node's slot out of the node store, ships it to a worker
//! together with that node's events, and reinstalls it when the results
//! come back. A slot move is a shallow `memcpy` of the node struct —
//! cheap next to proof validation, hashing and mesh maintenance.

use crate::sim::{
    apply_metric_op, Effect, EventKind, MetricOp, Network, Node, NodeId, QueuedEvent,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::mpsc;

/// Stream id of the link RNG (latency + loss draws). Node streams use
/// their node index; no simulation reaches `u64::MAX` nodes.
pub(crate) const LINK_STREAM: u64 = u64::MAX;

/// Fewer live events than this per round execute inline: a cross-thread
/// round costs two channel hops per worker plus wakeup latency, which
/// only pays for itself once a round carries real work.
const MIN_EVENTS_PER_WORKER: usize = 8;

/// Derives the seed of an independent RNG stream from the network seed
/// and a stream id (a node index; the link stream — latency and loss
/// draws — uses the reserved id `u64::MAX`).
///
/// Two SplitMix64 finalizer rounds over `seed ⊕ mix(stream)`: nearby
/// stream ids (node 0, 1, 2, …) land in unrelated generator states, and
/// the derivation depends only on `(seed, stream)` — **not** on shard
/// count, thread count or execution order, which is what keeps per-node
/// randomness stable when the scheduler re-partitions work.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        ^ stream
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x632b_e59b_d9b4_e019);
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

/// A node's events for one round: `(original sequence, event)` pairs in
/// sequence order.
type NodeEvents<M> = Vec<(u64, EventKind<M>)>;

/// One node's mutable simulation state: the protocol machine plus its
/// private RNG stream. Moved out of the store wholesale when a worker
/// thread takes over the node for a round.
#[derive(Clone)]
pub(crate) struct Slot<N> {
    pub(crate) node: N,
    pub(crate) rng: StdRng,
}

/// The shard-partitionable node store: every per-node mutable thing the
/// scheduler must hand to exactly one worker at a time lives in a
/// [`Slot`]; liveness flags stay behind (they are read-only during a
/// round and consulted while merging sends).
#[derive(Clone)]
pub(crate) struct NodeStore<N> {
    slots: Vec<Option<Slot<N>>>,
    active: Vec<bool>,
}

impl<N> NodeStore<N> {
    pub(crate) fn new() -> NodeStore<N> {
        NodeStore {
            slots: Vec::new(),
            active: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, node: N, rng: StdRng) -> usize {
        self.slots.push(Some(Slot { node, rng }));
        self.active.push(true);
        self.slots.len() - 1
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn is_active(&self, index: usize) -> bool {
        self.active.get(index).copied().unwrap_or(false)
    }

    pub(crate) fn active_len(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Marks a node dead; returns whether it was alive.
    pub(crate) fn deactivate(&mut self, index: usize) -> bool {
        std::mem::replace(&mut self.active[index], false)
    }

    /// Marks a dead node live again (crash → restart on the *same* slot:
    /// the node struct and its RNG stream are untouched); returns whether
    /// it was dead.
    pub(crate) fn reactivate(&mut self, index: usize) -> bool {
        !std::mem::replace(&mut self.active[index], true)
    }

    pub(crate) fn node(&self, index: usize) -> &N {
        // lint:allow(panic-path, reason = "slot discipline: callers hold indices of checked-in slots; a missing slot is a scheduler bug")
        &self.slots[index].as_ref().expect("slot checked out").node
    }

    pub(crate) fn node_mut(&mut self, index: usize) -> &mut N {
        // lint:allow(panic-path, reason = "slot discipline: callers hold indices of checked-in slots; a missing slot is a scheduler bug")
        &mut self.slots[index].as_mut().expect("slot checked out").node
    }

    pub(crate) fn slot_mut(&mut self, index: usize) -> &mut Slot<N> {
        // lint:allow(panic-path, reason = "slot discipline: callers hold indices of checked-in slots; a missing slot is a scheduler bug")
        self.slots[index].as_mut().expect("slot checked out")
    }

    /// Checks a slot out for a worker round.
    fn take(&mut self, index: usize) -> Slot<N> {
        // lint:allow(panic-path, reason = "slot discipline: take() runs exactly once per checked-in slot per batch")
        self.slots[index].take().expect("slot already checked out")
    }

    /// Returns a checked-out slot.
    fn put(&mut self, index: usize, slot: Slot<N>) {
        debug_assert!(self.slots[index].is_none(), "slot not checked out");
        self.slots[index] = Some(slot);
    }
}

/// The output of one executed event, tagged with its canonical sequence
/// number so the merge can restore serial order no matter which thread
/// produced it.
struct Executed<M> {
    seq: u64,
    origin: NodeId,
    effects: Vec<Effect<M>>,
    ops: Vec<MetricOp>,
}

/// One node's work for a round: its checked-out slot plus the events
/// addressed to it, in sequence order.
struct Shard<N: Node> {
    now: u64,
    id: NodeId,
    slot: Slot<N>,
    events: NodeEvents<N::Message>,
}

/// A shard after execution: the slot travels back with the outputs.
struct ShardResult<N: Node> {
    id: NodeId,
    slot: Slot<N>,
    executed: Vec<Executed<N::Message>>,
}

/// Runs the events of one shard against its node, in order, collecting
/// each event's output. Identical code runs inline (threads = 1 / small
/// rounds) and on workers — the execution path cannot diverge.
fn execute_shard<N: Node>(
    now: u64,
    id: NodeId,
    slot: &mut Slot<N>,
    events: NodeEvents<N::Message>,
) -> Vec<Executed<N::Message>> {
    let mut out = Vec::with_capacity(events.len());
    let mut rng = std::mem::replace(&mut slot.rng, StdRng::seed_from_u64(0));
    for (seq, kind) in events {
        let mut ctx = crate::sim::Context::new(now, id, rng);
        match kind {
            EventKind::Start => slot.node.on_start(&mut ctx),
            EventKind::Deliver { from, msg } => {
                ctx.count("messages_delivered", 1);
                slot.node.on_message(&mut ctx, from, msg);
            }
            EventKind::Timer { token } => slot.node.on_timer(&mut ctx, token),
        }
        let (r, effects, ops) = ctx.finish();
        rng = r;
        out.push(Executed {
            seq,
            origin: id,
            effects,
            ops,
        });
    }
    slot.rng = rng;
    out
}

/// What a worker hands back for one round: the executed shards, or the
/// panic payload of a node callback that blew up. Forwarding the payload
/// (instead of letting the worker die silently) is what keeps a panic a
/// *panic* — without it the main thread would block forever on a result
/// that never comes while the other workers keep the channel open.
type RoundOutcome<N> = Result<Vec<ShardResult<N>>, Box<dyn std::any::Any + Send + 'static>>;

/// A per-run worker pool: scoped threads that receive owned shards and
/// return them executed. Lives for one `run_until`/`run_to_quiescence`
/// call; blocked on `recv` between rounds, shut down by dropping the
/// senders when the run's scope closes.
struct WorkerPool<N: Node> {
    shard_txs: Vec<mpsc::Sender<Vec<Shard<N>>>>,
    result_rx: mpsc::Receiver<RoundOutcome<N>>,
}

impl<N: Node> WorkerPool<N> {
    fn start<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        workers: usize,
    ) -> WorkerPool<N>
    where
        N: 'env,
    {
        let (result_tx, result_rx) = mpsc::channel::<RoundOutcome<N>>();
        let mut shard_txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Vec<Shard<N>>>();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok(shards) = rx.recv() {
                    let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shards
                            .into_iter()
                            .map(|mut shard| {
                                let executed = execute_shard(
                                    shard.now,
                                    shard.id,
                                    &mut shard.slot,
                                    std::mem::take(&mut shard.events),
                                );
                                ShardResult {
                                    id: shard.id,
                                    slot: shard.slot,
                                    executed,
                                }
                            })
                            .collect::<Vec<ShardResult<N>>>()
                    }));
                    let died = results.is_err();
                    if result_tx.send(results).is_err() || died {
                        break; // run ended mid-round, or our shards are gone
                    }
                }
            });
            shard_txs.push(tx);
        }
        WorkerPool {
            shard_txs,
            result_rx,
        }
    }
}

impl<N: Node> Network<N> {
    /// The batch → shard → merge loop shared by
    /// [`Network::run_until`](crate::sim::Network::run_until) and
    /// [`Network::run_to_quiescence`](crate::sim::Network::run_to_quiescence):
    /// processes every event with `at ≤ limit`.
    pub(crate) fn run_batched(&mut self, limit: u64) {
        self.ensure_started();
        let workers = self.threads.min(self.nodes.len()).max(1);
        if workers > 1 {
            std::thread::scope(|scope| {
                let pool = WorkerPool::start(scope, workers);
                self.drive(limit, Some(&pool));
                // senders drop here; workers see a closed channel and exit
            });
        } else {
            self.drive(limit, None);
        }
    }

    /// Round loop: one iteration per populated timestamp. Events emitted
    /// *at* the current timestamp (zero-latency sends, zero-delay timers)
    /// carry higher sequence numbers than everything already queued, so
    /// they form the next round at the same `now` — exactly the order the
    /// serial loop produced.
    fn drive(&mut self, limit: u64, pool: Option<&WorkerPool<N>>) {
        let mut batch: Vec<QueuedEvent<N::Message>> = Vec::new();
        loop {
            // batch: every event at the earliest timestamp ≤ limit, in
            // seq order — one timing-wheel operation
            batch.clear();
            let Some(at) = self.queue.pop_next_batch(limit, &mut batch) else {
                break;
            };
            self.now = at;
            self.dispatched += batch.len() as u64;
            self.run_round(&mut batch, pool);
        }
    }

    /// Executes one round (all events of one timestamp) and merges the
    /// outputs back in canonical order.
    fn run_round(
        &mut self,
        batch: &mut Vec<QueuedEvent<N::Message>>,
        pool: Option<&WorkerPool<N>>,
    ) {
        if batch.len() == 1 {
            // the common sparse case (one heartbeat, one delivery):
            // skip grouping and sorting entirely
            // lint:allow(panic-path, reason = "guarded: the enclosing branch runs only for single-event batches")
            let event = batch.pop().expect("len checked");
            let id = event.node;
            if !self.nodes.is_active(id.index()) {
                match event.kind {
                    EventKind::Deliver { .. } => self.metrics.count("messages_to_removed_peer", 1),
                    EventKind::Timer { .. } => self.metrics.count("timers_dropped_dead_node", 1),
                    EventKind::Start => {}
                }
                return;
            }
            let slot = self.nodes.slot_mut(id.index());
            let executed = execute_shard(self.now, id, slot, vec![(event.seq, event.kind)]);
            for ex in executed {
                for op in ex.ops {
                    apply_metric_op(&mut self.metrics, op);
                }
                self.apply_effects(ex.origin, ex.effects);
            }
            return;
        }
        let mut executed: Vec<Executed<N::Message>> = Vec::with_capacity(batch.len());
        // shard the live events by destination node (dead nodes produce
        // their drop-accounting inline; their state is never touched)
        let mut shard_of: HashMap<usize, usize> = HashMap::new();
        let mut shards: Vec<(NodeId, NodeEvents<N::Message>)> = Vec::new();
        let mut live_events = 0usize;
        for event in batch.drain(..) {
            let id = event.node;
            if !self.nodes.is_active(id.index()) {
                // the node died while this event was in flight
                let op = match event.kind {
                    EventKind::Deliver { .. } => {
                        Some(MetricOp::Count("messages_to_removed_peer", 1))
                    }
                    EventKind::Timer { .. } => Some(MetricOp::Count("timers_dropped_dead_node", 1)),
                    EventKind::Start => None,
                };
                executed.push(Executed {
                    seq: event.seq,
                    origin: id,
                    effects: Vec::new(),
                    ops: op.into_iter().collect(),
                });
                continue;
            }
            live_events += 1;
            let slot = *shard_of.entry(id.index()).or_insert_with(|| {
                shards.push((id, Vec::new()));
                shards.len() - 1
            });
            shards[slot].1.push((event.seq, event.kind));
        }

        let fan_out = match pool {
            Some(pool) if shards.len() >= 2 => {
                let workers = pool
                    .shard_txs
                    .len()
                    .min(shards.len())
                    .min(live_events / MIN_EVENTS_PER_WORKER);
                (workers >= 2).then_some((pool, workers))
            }
            _ => None,
        };

        match fan_out {
            None => {
                // inline: same execute_shard as the workers run
                for (id, events) in shards {
                    let slot = self.nodes.slot_mut(id.index());
                    executed.extend(execute_shard(self.now, id, slot, events));
                }
            }
            Some((pool, workers)) => {
                self.parallel_rounds += 1;
                // balance shards over workers by event count (largest
                // first, greedily onto the lightest worker)
                let mut order: Vec<usize> = (0..shards.len()).collect();
                order.sort_by_key(|i| std::cmp::Reverse(shards[*i].1.len()));
                let mut assignment: Vec<Vec<Shard<N>>> = (0..workers).map(|_| Vec::new()).collect();
                let mut load = vec![0usize; workers];
                // drain shards in assignment order without reshuffling the vec
                let mut shards: Vec<Option<(NodeId, NodeEvents<N::Message>)>> =
                    shards.into_iter().map(Some).collect();
                for i in order {
                    // lint:allow(panic-path, reason = "each shard is assigned exactly once; take() runs once per filled shard")
                    let (id, events) = shards[i].take().expect("assigned once");
                    // lint:allow(panic-path, reason = "workers >= 2 in the parallel branch, so min_by_key always sees candidates")
                    let w = (0..workers).min_by_key(|w| load[*w]).expect("workers >= 2");
                    load[w] += events.len();
                    assignment[w].push(Shard {
                        now: self.now,
                        id,
                        slot: self.nodes.take(id.index()),
                        events,
                    });
                }
                let mut rounds_sent = 0;
                for (w, work) in assignment.into_iter().enumerate() {
                    if work.is_empty() {
                        continue;
                    }
                    rounds_sent += 1;
                    // lint:allow(panic-path, reason = "worker threads live for the pool lifetime; a dead worker already panicked and must stop the run")
                    pool.shard_txs[w].send(work).expect("worker alive");
                }
                for _ in 0..rounds_sent {
                    // lint:allow(panic-path, reason = "worker threads live for the pool lifetime; a dead worker already panicked and must stop the run")
                    match pool.result_rx.recv().expect("worker alive") {
                        Ok(results) => {
                            for result in results {
                                self.nodes.put(result.id.index(), result.slot);
                                executed.extend(result.executed);
                            }
                        }
                        // a node callback panicked on a worker: re-raise
                        // on the main thread so the run fails loudly
                        // instead of deadlocking on results that will
                        // never arrive
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            }
        }

        // merge: canonical event order, regardless of completion order
        executed.sort_unstable_by_key(|e| e.seq);
        for ex in executed {
            for op in ex.ops {
                apply_metric_op(&mut self.metrics, op);
            }
            self.apply_effects(ex.origin, ex.effects);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::UniformLatency;
    use crate::sim::Context;
    use rand::Rng;

    /// A node whose behaviour leans on every context facility: RNG
    /// draws, timers, sends, global and per-node counters.
    struct Chatty {
        peers: Vec<NodeId>,
        draws: Vec<u64>,
        received: Vec<(u64, NodeId)>,
    }

    impl Node for Chatty {
        type Message = Vec<u8>;
        fn on_start(&mut self, ctx: &mut Context<Vec<u8>>) {
            let jitter = ctx.rng().gen_range(1..50u64);
            ctx.set_timer(jitter, 0);
        }
        fn on_message(&mut self, ctx: &mut Context<Vec<u8>>, from: NodeId, msg: Vec<u8>) {
            self.received.push((ctx.now(), from));
            ctx.count_self("got", 1);
            if msg.len() < 4 {
                let mut fwd = msg;
                fwd.push(0);
                let peer = self.peers[ctx.rng().gen_range(0..self.peers.len())];
                ctx.send(peer, fwd);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<Vec<u8>>, _t: u64) {
            let draw: u64 = ctx.rng().gen();
            self.draws.push(draw);
            ctx.record("draw", (draw % 1000) as f64);
            for peer in self.peers.clone() {
                ctx.send(peer, vec![1]);
            }
            if self.draws.len() < 20 {
                let delay = ctx.rng().gen_range(1..20u64);
                ctx.set_timer(delay, 0);
            }
        }
    }

    /// (per-node draws, per-node receptions, per-node counter total,
    /// messages_sent) — the observable surface compared across threads.
    type ChattyOutcome = (Vec<Vec<u64>>, Vec<Vec<(u64, NodeId)>>, u64, u64);

    fn run_chatty(threads: usize, seed: u64) -> ChattyOutcome {
        let n = 12;
        let mut net: Network<Chatty> = Network::new(
            UniformLatency {
                min_ms: 0,
                max_ms: 7,
            },
            seed,
        );
        for i in 0..n {
            net.add_node(Chatty {
                peers: (0..n).filter(|j| *j != i).map(NodeId).collect(),
                draws: vec![],
                received: vec![],
            });
        }
        net.set_threads(threads);
        net.set_loss_probability(0.05);
        net.run_until(400);
        let draws = (0..n).map(|i| net.node(NodeId(i)).draws.clone()).collect();
        let received = (0..n)
            .map(|i| net.node(NodeId(i)).received.clone())
            .collect();
        let got: u64 = (0..n as u64)
            .map(|i| net.metrics().node_counter(i, "got"))
            .sum();
        (draws, received, got, net.metrics().counter("messages_sent"))
    }

    #[test]
    fn thread_count_does_not_change_the_simulation() {
        let serial = run_chatty(1, 77);
        for threads in [2, 4, 8] {
            assert_eq!(
                run_chatty(threads, 77),
                serial,
                "threads={threads} diverged from threads=1"
            );
        }
    }

    /// The per-node ("per-shard") RNG streams must be a function of
    /// `(seed, node index)` alone — re-partitioning work over a different
    /// shard/thread count must not shift anyone's stream.
    #[test]
    fn node_streams_are_stable_under_shard_count_changes() {
        let (draws_1, ..) = run_chatty(1, 9);
        let (draws_8, ..) = run_chatty(8, 9);
        assert_eq!(draws_1, draws_8);
        // and the streams are genuinely per-node: two nodes with the same
        // behaviour draw different values
        assert_ne!(draws_1[0], draws_1[1]);
    }

    #[test]
    fn stream_seed_is_pure_and_collision_resistant_for_small_ids() {
        let mut seen = std::collections::HashSet::new();
        for node in 0..10_000u64 {
            assert_eq!(stream_seed(42, node), stream_seed(42, node));
            assert!(seen.insert(stream_seed(42, node)), "stream collision");
        }
        assert_ne!(stream_seed(1, 0), stream_seed(2, 0));
        assert_ne!(stream_seed(1, LINK_STREAM), stream_seed(1, 0));
    }

    /// A star broadcast over constant latency produces rounds of ~64
    /// same-timestamp events: the worker pool must actually engage (no
    /// vacuous pass) and still match the serial execution exactly.
    #[test]
    fn big_rounds_fan_out_and_match_serial() {
        struct Spray {
            peers: Vec<NodeId>,
            forwarded: bool,
            received: u64,
            draw: u64,
        }
        impl Node for Spray {
            type Message = Vec<u8>;
            fn on_start(&mut self, ctx: &mut Context<Vec<u8>>) {
                if ctx.node_id() == NodeId(0) {
                    for p in self.peers.clone() {
                        ctx.send(p, vec![0]);
                    }
                }
            }
            fn on_message(&mut self, ctx: &mut Context<Vec<u8>>, _: NodeId, msg: Vec<u8>) {
                self.received += 1;
                self.draw = self.draw.wrapping_add(ctx.rng().gen());
                ctx.count_self("got", 1);
                if !self.forwarded && msg.len() < 3 {
                    self.forwarded = true;
                    let mut fwd = msg;
                    fwd.push(1);
                    for p in self.peers.clone() {
                        ctx.send(p, fwd.clone());
                    }
                }
            }
            fn on_timer(&mut self, _: &mut Context<Vec<u8>>, _: u64) {}
        }
        let build = |threads: usize| {
            let n = 64;
            let mut net: Network<Spray> = Network::new(crate::latency::ConstantLatency(10), 21);
            for i in 0..n {
                net.add_node(Spray {
                    peers: (0..n).filter(|j| *j != i).map(NodeId).collect(),
                    forwarded: false,
                    received: 0,
                    draw: 0,
                });
            }
            net.set_threads(threads);
            net.run_until(100);
            let state: Vec<(u64, u64)> = (0..n)
                .map(|i| (net.node(NodeId(i)).received, net.node(NodeId(i)).draw))
                .collect();
            (
                state,
                net.metrics().counter("messages_sent"),
                net.parallel_rounds(),
            )
        };
        let (serial_state, serial_sent, serial_rounds) = build(1);
        assert_eq!(serial_rounds, 0, "threads=1 must never fan out");
        let (par_state, par_sent, par_rounds) = build(4);
        assert!(par_rounds > 0, "pool never engaged: the test is vacuous");
        assert_eq!(par_state, serial_state);
        assert_eq!(par_sent, serial_sent);
    }

    /// A node-callback panic on a worker thread must surface as a panic
    /// on the caller (not leave the main thread blocked forever on
    /// results that will never arrive).
    #[test]
    #[should_panic(expected = "boom from a worker")]
    fn worker_panics_propagate_instead_of_deadlocking() {
        struct Grenade {
            peers: Vec<NodeId>,
        }
        impl Node for Grenade {
            type Message = Vec<u8>;
            fn on_start(&mut self, ctx: &mut Context<Vec<u8>>) {
                if ctx.node_id() == NodeId(0) {
                    for p in self.peers.clone() {
                        ctx.send(p, vec![0]);
                    }
                }
            }
            fn on_message(&mut self, ctx: &mut Context<Vec<u8>>, _: NodeId, _: Vec<u8>) {
                if ctx.node_id() == NodeId(13) {
                    panic!("boom from a worker");
                }
            }
            fn on_timer(&mut self, _: &mut Context<Vec<u8>>, _: u64) {}
        }
        let n = 64;
        let mut net: Network<Grenade> = Network::new(crate::latency::ConstantLatency(10), 2);
        for i in 0..n {
            net.add_node(Grenade {
                peers: (0..n).filter(|j| *j != i).map(NodeId).collect(),
            });
        }
        net.set_threads(4);
        net.run_until(100); // the t=10 round has 63 events: pool engages
    }

    #[test]
    fn zero_latency_sends_execute_in_the_same_timestamp() {
        struct Relay {
            next: Option<NodeId>,
            got_at: Option<u64>,
        }
        impl Node for Relay {
            type Message = Vec<u8>;
            fn on_start(&mut self, _: &mut Context<Vec<u8>>) {}
            fn on_message(&mut self, ctx: &mut Context<Vec<u8>>, _: NodeId, msg: Vec<u8>) {
                self.got_at = Some(ctx.now());
                if let Some(next) = self.next {
                    ctx.send(next, msg);
                }
            }
            fn on_timer(&mut self, _: &mut Context<Vec<u8>>, _: u64) {}
        }
        let mut net: Network<Relay> = Network::new(crate::latency::ConstantLatency(0), 5);
        for i in 0..5 {
            let next = (i + 1 < 5).then(|| NodeId(i + 1));
            net.add_node(Relay { next, got_at: None });
        }
        net.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"m".to_vec()));
        net.run_until(0);
        // the whole chain collapses into rounds at t = 0
        for i in 1..5 {
            assert_eq!(net.node(NodeId(i)).got_at, Some(0), "node {i}");
        }
    }
}
