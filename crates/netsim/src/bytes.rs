//! Shared immutable payload bytes.
//!
//! Gossip protocols forward the same payload to many peers; carrying it
//! as `Vec<u8>` forces a full copy of the payload on **every** hop (every
//! `Rpc::Forward` clone, every cache insert, every delivery). [`Bytes`]
//! is an `Arc`-backed immutable buffer: cloning is a reference-count bump,
//! and [`Payload::size_bytes`] accounting reads the length without
//! touching the data.

use crate::sim::Payload;
use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte payload.
///
/// ```
/// use wakurln_netsim::Bytes;
///
/// let payload = Bytes::from(vec![1u8, 2, 3]);
/// let forwarded = payload.clone(); // refcount bump, no copy
/// assert_eq!(payload, forwarded);
/// assert_eq!(&payload[..], &[1, 2, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(v.into())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes(v.as_slice().into())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.0.len())
    }
}

impl Payload for Bytes {
    fn size_bytes(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0), "clone must not copy the payload");
        assert_eq!(a.size_bytes(), 1024);
    }

    #[test]
    fn equality_across_shapes() {
        let b = Bytes::from(b"abc");
        assert_eq!(b, *b"abc");
        assert_eq!(b, b"abc");
        assert_eq!(b, b"abc".to_vec());
        assert_eq!(b, b"abc"[..]);
        assert_ne!(b, *b"abd");
        assert_eq!(b.to_vec(), b"abc");
    }

    #[test]
    fn default_is_empty() {
        let b = Bytes::default();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
