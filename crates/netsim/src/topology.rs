//! Topology generators: initial peer sets for overlay protocols.
//!
//! GossipSub discovers and manages its mesh itself, but every peer needs a
//! bootstrap set of known peers. These helpers build the usual shapes used
//! in p2p evaluations (the GossipSub paper evaluates on random regular-ish
//! graphs).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::sim::NodeId;

/// Every peer knows every other peer (small networks / tests).
pub fn full_mesh(n: usize) -> Vec<Vec<NodeId>> {
    (0..n)
        .map(|i| (0..n).filter(|j| *j != i).map(NodeId).collect())
        .collect()
}

/// A ring: each peer knows its two neighbours (worst-case diameter).
pub fn ring(n: usize) -> Vec<Vec<NodeId>> {
    assert!(n >= 2, "ring needs at least 2 nodes");
    (0..n)
        .map(|i| vec![NodeId((i + 1) % n), NodeId((i + n - 1) % n)])
        .collect()
}

/// A random graph where each peer gets `degree` distinct random known
/// peers; edges are symmetrized (so actual degree may exceed `degree`).
///
/// # Panics
///
/// Panics if `degree >= n`.
pub fn random_regular(n: usize, degree: usize, seed: u64) -> Vec<Vec<NodeId>> {
    assert!(degree < n, "degree must be below node count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    let all: Vec<usize> = (0..n).collect();
    for i in 0..n {
        let mut candidates: Vec<usize> = all.iter().copied().filter(|j| *j != i).collect();
        candidates.shuffle(&mut rng);
        for j in candidates.into_iter().take(degree) {
            adj[i].insert(j);
            adj[j].insert(i);
        }
    }
    adj.into_iter()
        .map(|s| s.into_iter().map(NodeId).collect())
        .collect()
}

/// Checks whether the (symmetric) adjacency is a connected graph — used by
/// tests and experiment setup assertions.
pub fn is_connected(adjacency: &[Vec<NodeId>]) -> bool {
    if adjacency.is_empty() {
        return true;
    }
    let n = adjacency.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    // lint:allow(panic-path, reason = "guarded: the empty adjacency returned early, so index 0 exists")
    seen[0] = true;
    let mut visited = 1;
    while let Some(i) = stack.pop() {
        for peer in &adjacency[i] {
            if !seen[peer.0] {
                seen[peer.0] = true;
                visited += 1;
                stack.push(peer.0);
            }
        }
    }
    visited == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_degrees() {
        let t = full_mesh(5);
        assert!(t.iter().all(|peers| peers.len() == 4));
        assert!(is_connected(&t));
    }

    #[test]
    fn ring_is_connected() {
        let t = ring(10);
        assert!(t.iter().all(|peers| peers.len() == 2));
        assert!(is_connected(&t));
    }

    #[test]
    fn random_regular_has_at_least_degree() {
        let t = random_regular(50, 6, 7);
        assert!(t.iter().all(|peers| peers.len() >= 6));
        assert!(is_connected(&t));
    }

    #[test]
    fn random_regular_is_symmetric() {
        let t = random_regular(30, 4, 9);
        for (i, peers) in t.iter().enumerate() {
            for p in peers {
                assert!(t[p.0].contains(&NodeId(i)), "edge {i}<->{p} not symmetric");
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(random_regular(20, 4, 1), random_regular(20, 4, 1));
        assert_ne!(random_regular(20, 4, 1), random_regular(20, 4, 2));
    }

    #[test]
    #[should_panic(expected = "degree must be below")]
    fn degree_too_large_panics() {
        let _ = random_regular(4, 4, 1);
    }
}
