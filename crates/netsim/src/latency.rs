//! Link latency and loss models.

use rand::rngs::StdRng;
use rand::Rng;

use crate::sim::NodeId;

/// Samples a one-way delivery latency in simulated milliseconds.
///
/// Implementations must be deterministic given the RNG state, so that
/// whole simulations replay exactly from a seed.
pub trait LatencyModel: Send {
    /// Latency for a message from `from` to `to`.
    fn sample(&self, rng: &mut StdRng, from: NodeId, to: NodeId) -> u64;

    /// An upper bound `D` on network delay, used by the protocol to size
    /// the epoch-validation threshold `Thr = D / T` (§III).
    fn max_delay_ms(&self) -> u64;

    /// A boxed deep copy of this model, so whole networks can be
    /// checkpointed by `Clone` (the soak harness's checkpoint/restore).
    fn clone_box(&self) -> Box<dyn LatencyModel>;
}

impl Clone for Box<dyn LatencyModel> {
    fn clone(&self) -> Box<dyn LatencyModel> {
        self.clone_box()
    }
}

/// Fixed latency for every link.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency(pub u64);

impl LatencyModel for ConstantLatency {
    fn sample(&self, _rng: &mut StdRng, _from: NodeId, _to: NodeId) -> u64 {
        self.0
    }
    fn max_delay_ms(&self) -> u64 {
        self.0
    }
    fn clone_box(&self) -> Box<dyn LatencyModel> {
        Box::new(*self)
    }
}

/// Uniformly random latency in `[min_ms, max_ms]`.
#[derive(Clone, Copy, Debug)]
pub struct UniformLatency {
    /// Lower bound (inclusive), milliseconds.
    pub min_ms: u64,
    /// Upper bound (inclusive), milliseconds.
    pub max_ms: u64,
}

impl LatencyModel for UniformLatency {
    fn sample(&self, rng: &mut StdRng, _from: NodeId, _to: NodeId) -> u64 {
        rng.gen_range(self.min_ms..=self.max_ms)
    }
    fn max_delay_ms(&self) -> u64 {
        self.max_ms
    }
    fn clone_box(&self) -> Box<dyn LatencyModel> {
        Box::new(*self)
    }
}

/// Internet-like latency: a base propagation delay plus an occasionally
/// heavy tail (models congestion / retransmissions).
#[derive(Clone, Copy, Debug)]
pub struct InternetLatency {
    /// Typical base latency, milliseconds.
    pub base_ms: u64,
    /// Jitter added uniformly on top of the base, milliseconds.
    pub jitter_ms: u64,
    /// Probability of a tail event (e.g. `0.01`).
    pub tail_probability: f64,
    /// Extra delay during a tail event, milliseconds.
    pub tail_ms: u64,
}

impl Default for InternetLatency {
    fn default() -> InternetLatency {
        InternetLatency {
            base_ms: 40,
            jitter_ms: 60,
            tail_probability: 0.01,
            tail_ms: 400,
        }
    }
}

impl LatencyModel for InternetLatency {
    fn sample(&self, rng: &mut StdRng, _from: NodeId, _to: NodeId) -> u64 {
        let mut latency = self.base_ms + rng.gen_range(0..=self.jitter_ms);
        if rng.gen_bool(self.tail_probability) {
            latency += self.tail_ms;
        }
        latency
    }
    fn max_delay_ms(&self) -> u64 {
        self.base_ms + self.jitter_ms + self.tail_ms
    }
    fn clone_box(&self) -> Box<dyn LatencyModel> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = ConstantLatency(50);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng, NodeId(0), NodeId(1)), 50);
        }
        assert_eq!(m.max_delay_ms(), 50);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = UniformLatency {
            min_ms: 10,
            max_ms: 20,
        };
        for _ in 0..100 {
            let l = m.sample(&mut rng, NodeId(0), NodeId(1));
            assert!((10..=20).contains(&l));
        }
    }

    #[test]
    fn internet_respects_max() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = InternetLatency::default();
        for _ in 0..1000 {
            assert!(m.sample(&mut rng, NodeId(0), NodeId(1)) <= m.max_delay_ms());
        }
    }

    #[test]
    fn deterministic_replay_from_seed() {
        let m = InternetLatency::default();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| m.sample(&mut rng, NodeId(0), NodeId(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
