//! Simulation metrics: counters, per-node accounting and value series.

use std::collections::BTreeMap;

/// Aggregated measurements collected during a simulation run.
///
/// Protocols write into this through
/// [`Context`](crate::sim::Context) helpers; experiment harnesses read the
/// totals after [`Network::run_until`](crate::sim::Network::run_until).
/// Per-node keys are explicit `u64` (not `usize`): report fields derived
/// from them are wire-stable across 32- and 64-bit platforms.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    values: BTreeMap<String, Vec<f64>>,
    per_node: BTreeMap<(u64, String), u64>,
    /// Bytes put on the wire by each node. Kept out of `per_node` because
    /// it is bumped on every send — a dense `Vec` avoids a string-keyed
    /// hash insert on the hot path.
    bytes_sent_per_node: Vec<u64>,
}

impl Metrics {
    /// Fresh, empty metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to the global counter `key`.
    pub fn count(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_default() += n;
    }

    /// Adds `n` to a per-node counter.
    pub fn count_node(&mut self, node: u64, key: &str, n: u64) {
        *self.per_node.entry((node, key.to_string())).or_default() += n;
    }

    /// Records a sample into the value series `key`.
    pub fn record(&mut self, key: &str, value: f64) {
        self.values.entry(key.to_string()).or_default().push(value);
    }

    /// Adds `n` bytes to `node`'s wire-output tally (hot path: called on
    /// every simulated send).
    pub fn add_node_bytes_sent(&mut self, node: u64, n: u64) {
        let node = node as usize;
        if self.bytes_sent_per_node.len() <= node {
            self.bytes_sent_per_node.resize(node + 1, 0);
        }
        self.bytes_sent_per_node[node] += n;
    }

    /// Bytes `node` put on the wire so far (0 when it never sent).
    pub fn node_bytes_sent(&self, node: u64) -> u64 {
        self.bytes_sent_per_node
            .get(node as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Reads a global counter (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Reads a per-node counter (0 when absent).
    pub fn node_counter(&self, node: u64, key: &str) -> u64 {
        self.per_node
            .get(&(node, key.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Sums a per-node counter over all nodes.
    pub fn node_counter_total(&self, key: &str) -> u64 {
        self.per_node
            .iter()
            .filter(|((_, k), _)| k == key)
            .map(|(_, v)| *v)
            .sum()
    }

    /// The raw samples of a series (empty slice when absent).
    pub fn samples(&self, key: &str) -> &[f64] {
        self.values.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Arithmetic mean of a series, `None` when empty.
    pub fn mean(&self, key: &str) -> Option<f64> {
        let s = self.samples(key);
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<f64>() / s.len() as f64)
        }
    }

    /// The `p`-th percentile (0.0–1.0) of a series, `None` when empty.
    pub fn percentile(&self, key: &str, p: f64) -> Option<f64> {
        let mut s = self.samples(key).to_vec();
        if s.is_empty() {
            return None;
        }
        s.sort_by(f64::total_cmp);
        let rank = ((s.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        Some(s[rank])
    }

    /// Maximum of a series, `None` when empty.
    pub fn max(&self, key: &str) -> Option<f64> {
        self.samples(key)
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Names of all counters, in sorted (deterministic) order.
    pub fn counter_keys(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("delivered", 3);
        m.count("delivered", 2);
        assert_eq!(m.counter("delivered"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn per_node_counters_are_separate() {
        let mut m = Metrics::new();
        m.count_node(0, "cpu", 10);
        m.count_node(1, "cpu", 20);
        assert_eq!(m.node_counter(0, "cpu"), 10);
        assert_eq!(m.node_counter(1, "cpu"), 20);
        assert_eq!(m.node_counter_total("cpu"), 30);
    }

    #[test]
    fn node_bytes_sent_is_dense_and_sparse_safe() {
        let mut m = Metrics::new();
        m.add_node_bytes_sent(3, 100);
        m.add_node_bytes_sent(3, 50);
        m.add_node_bytes_sent(0, 7);
        assert_eq!(m.node_bytes_sent(3), 150);
        assert_eq!(m.node_bytes_sent(0), 7);
        assert_eq!(m.node_bytes_sent(1), 0);
        assert_eq!(m.node_bytes_sent(99), 0);
    }

    #[test]
    fn series_statistics() {
        let mut m = Metrics::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            m.record("latency", v);
        }
        assert_eq!(m.mean("latency"), Some(3.0));
        assert_eq!(m.percentile("latency", 0.0), Some(1.0));
        assert_eq!(m.percentile("latency", 1.0), Some(5.0));
        assert_eq!(m.percentile("latency", 0.5), Some(3.0));
        assert_eq!(m.max("latency"), Some(5.0));
        assert_eq!(m.mean("nope"), None);
    }
}
