//! The discrete-event simulator core.
//!
//! A [`Network`] owns a set of protocol state machines (one per simulated
//! peer), a global event queue ordered by simulated time, a latency/loss
//! model and the run's [`Metrics`]. Execution is fully deterministic for a
//! given seed: ties in the queue are broken by insertion sequence, and all
//! randomness flows through one seeded RNG.

use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a simulated peer (index into the network's node table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Wire-size accounting for protocol messages (drives the bandwidth
/// counters).
pub trait Payload: Clone {
    /// Approximate serialized size in bytes.
    fn size_bytes(&self) -> usize;
}

impl Payload for Vec<u8> {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// A protocol state machine driven by the simulator.
pub trait Node {
    /// The message type exchanged between peers.
    type Message: Payload;

    /// Called once when the simulation starts (schedule initial timers
    /// here).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>);

    /// Called when a message from `from` is delivered.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Message>,
        from: NodeId,
        msg: Self::Message,
    );

    /// Called when a timer set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Message>, token: u64);
}

enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { token: u64 },
    Start,
}

struct QueuedEvent<M> {
    at: u64,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest (at, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

enum Effect<M> {
    Send { to: NodeId, msg: M },
    Timer { delay_ms: u64, token: u64 },
}

/// The per-callback execution context handed to protocol code.
///
/// Collects side effects (sends, timers) that the simulator applies after
/// the callback returns, and exposes the clock, the RNG and the metrics.
pub struct Context<'a, M> {
    now: u64,
    node: NodeId,
    effects: Vec<Effect<M>>,
    rng: &'a mut StdRng,
    metrics: &'a mut Metrics,
}

impl<'a, M: Payload> Context<'a, M> {
    /// Current simulated time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The node this callback runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`; it arrives after a sampled link latency
    /// (unless dropped by the loss model).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Schedules [`Node::on_timer`] with `token` after `delay_ms`.
    pub fn set_timer(&mut self, delay_ms: u64, token: u64) {
        self.effects.push(Effect::Timer { delay_ms, token });
    }

    /// Deterministic RNG for protocol decisions.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Adds to a global counter.
    pub fn count(&mut self, key: &str, n: u64) {
        self.metrics.count(key, n);
    }

    /// Adds to this node's counter.
    pub fn count_self(&mut self, key: &str, n: u64) {
        self.metrics.count_node(self.node.0, key, n);
    }

    /// Records a sample into a series.
    pub fn record(&mut self, key: &str, value: f64) {
        self.metrics.record(key, value);
    }

    /// Charges simulated CPU time (microseconds) to this node — the
    /// resource-restricted-device accounting used by E6/E9.
    pub fn charge_cpu(&mut self, micros: u64) {
        self.metrics.count_node(self.node.0, "cpu_micros", micros);
    }
}

/// The deterministic discrete-event network.
///
/// # Examples
///
/// ```
/// use wakurln_netsim::{latency::ConstantLatency, sim::{Context, Network, Node, NodeId}};
///
/// struct Echo;
/// impl Node for Echo {
///     type Message = Vec<u8>;
///     fn on_start(&mut self, ctx: &mut Context<'_, Vec<u8>>) {
///         if ctx.node_id() == NodeId(0) {
///             ctx.send(NodeId(1), b"ping".to_vec());
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Context<'_, Vec<u8>>, from: NodeId, msg: Vec<u8>) {
///         if msg == b"ping" { ctx.send(from, b"pong".to_vec()); }
///         else { ctx.count("pong", 1); }
///     }
///     fn on_timer(&mut self, _: &mut Context<'_, Vec<u8>>, _: u64) {}
/// }
///
/// let mut net = Network::new(ConstantLatency(10), 42);
/// net.add_node(Echo);
/// net.add_node(Echo);
/// net.run_until(100);
/// assert_eq!(net.metrics().counter("pong"), 1);
/// ```
pub struct Network<N: Node> {
    nodes: Vec<N>,
    /// Liveness flag per node. `NodeId`s are stable indices, so removal
    /// deactivates in place: a dead node keeps its slot (and its frozen
    /// protocol state, inspectable post-mortem) but receives no further
    /// events — queued deliveries and timers addressed to it are dropped
    /// at dispatch instead of leaking into its state machine.
    active: Vec<bool>,
    queue: BinaryHeap<QueuedEvent<N::Message>>,
    latency: Box<dyn LatencyModel>,
    loss_probability: f64,
    rng: StdRng,
    now: u64,
    seq: u64,
    started: bool,
    metrics: Metrics,
}

impl<N: Node> Network<N> {
    /// Creates a network with the given latency model and RNG seed.
    pub fn new<L: LatencyModel + 'static>(latency: L, seed: u64) -> Network<N> {
        Network {
            nodes: Vec::new(),
            active: Vec::new(),
            queue: BinaryHeap::new(),
            latency: Box::new(latency),
            loss_probability: 0.0,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            seq: 0,
            started: false,
            metrics: Metrics::new(),
        }
    }

    /// Sets an i.i.d. packet-loss probability applied to every send.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss_probability = p;
    }

    /// Upper bound on link delay, exposed for protocol parameterization
    /// (`Thr = D / T`).
    pub fn max_delay_ms(&self) -> u64 {
        self.latency.max_delay_ms()
    }

    /// Adds a node, returning its id. Nodes added after the run started
    /// get their `on_start` immediately (churn support).
    pub fn add_node(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.active.push(true);
        if self.started {
            let seq = self.next_seq();
            self.push(QueuedEvent {
                at: self.now,
                seq,
                node: id,
                kind: EventKind::Start,
            });
        }
        id
    }

    /// Removes a node from the network (simulated crash / leave).
    ///
    /// Deactivation, not deletion: ids stay stable and the node's final
    /// protocol state remains readable through [`Network::node`]. From
    /// this point on
    ///
    /// * messages sent to it are dropped and counted as
    ///   `messages_to_removed_peer`,
    /// * its queued timers are discarded at dispatch (counted as
    ///   `timers_dropped_dead_node`) instead of firing — so periodic
    ///   timers stop re-arming and cannot leak for the rest of the run,
    /// * [`Network::invoke`] on it panics.
    ///
    /// Returns `false` when the node was already removed (idempotent).
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        let was_active = std::mem::replace(&mut self.active[id.0], false);
        if was_active {
            self.metrics.count("nodes_removed", 1);
        }
        was_active
    }

    /// Whether a node is still live (added and not removed).
    pub fn is_active(&self, id: NodeId) -> bool {
        self.active.get(id.0).copied().unwrap_or(false)
    }

    /// Number of live nodes (added minus removed).
    pub fn active_len(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Number of nodes ever added (including removed ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes were added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable access to a node's protocol state (for external inspection
    /// or reconfiguration between runs — effects are not collected here;
    /// use [`Network::invoke`] for actions that need a context).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// Current simulated time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics (experiment harnesses may record their own series).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Runs an external action against one node *now*, with a full effect
    /// context (e.g. "publish a message at t=5000").
    pub fn invoke<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Message>) -> R,
    ) -> R {
        assert!(self.is_active(id), "invoke on removed node {id}");
        self.ensure_started();
        let mut ctx = Context {
            now: self.now,
            node: id,
            effects: Vec::new(),
            rng: &mut self.rng,
            metrics: &mut self.metrics,
        };
        let out = f(&mut self.nodes[id.0], &mut ctx);
        let effects = ctx.effects;
        self.apply_effects(id, effects);
        out
    }

    /// Processes events until simulated time `t` (inclusive). Events
    /// scheduled beyond `t` stay queued; the clock ends at `t`.
    pub fn run_until(&mut self, t: u64) {
        self.ensure_started();
        while let Some(head) = self.queue.peek() {
            if head.at > t {
                break;
            }
            let event = self.queue.pop().expect("peeked");
            self.now = event.at;
            self.dispatch(event);
        }
        self.now = self.now.max(t);
    }

    /// Runs until the event queue is empty (or `hard_stop` is reached).
    pub fn run_to_quiescence(&mut self, hard_stop: u64) {
        self.ensure_started();
        while let Some(head) = self.queue.peek() {
            if head.at > hard_stop {
                break;
            }
            let event = self.queue.pop().expect("peeked");
            self.now = event.at;
            self.dispatch(event);
        }
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                let ev = QueuedEvent {
                    at: self.now,
                    seq: self.next_seq(),
                    node: NodeId(i),
                    kind: EventKind::Start,
                };
                self.push(ev);
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn push(&mut self, ev: QueuedEvent<N::Message>) {
        self.queue.push(ev);
    }

    fn dispatch(&mut self, event: QueuedEvent<N::Message>) {
        let id = event.node;
        if !self.active[id.0] {
            // the node died while this event was in flight
            match event.kind {
                EventKind::Deliver { .. } => self.metrics.count("messages_to_removed_peer", 1),
                EventKind::Timer { .. } => self.metrics.count("timers_dropped_dead_node", 1),
                EventKind::Start => {}
            }
            return;
        }
        let mut ctx = Context {
            now: self.now,
            node: id,
            effects: Vec::new(),
            rng: &mut self.rng,
            metrics: &mut self.metrics,
        };
        match event.kind {
            EventKind::Start => self.nodes[id.0].on_start(&mut ctx),
            EventKind::Deliver { from, msg } => {
                ctx.metrics.count("messages_delivered", 1);
                self.nodes[id.0].on_message(&mut ctx, from, msg)
            }
            EventKind::Timer { token } => self.nodes[id.0].on_timer(&mut ctx, token),
        }
        let effects = ctx.effects;
        self.apply_effects(id, effects);
    }

    fn apply_effects(&mut self, origin: NodeId, effects: Vec<Effect<N::Message>>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    if to.0 >= self.nodes.len() {
                        self.metrics.count("messages_to_unknown_peer", 1);
                        continue;
                    }
                    if !self.active[to.0] {
                        // dead peers take no traffic (connection torn down)
                        self.metrics.count("messages_to_removed_peer", 1);
                        continue;
                    }
                    self.metrics.count("messages_sent", 1);
                    let size = msg.size_bytes() as u64;
                    self.metrics.count("bytes_sent", size);
                    self.metrics.add_node_bytes_sent(origin.0, size);
                    if self.loss_probability > 0.0 && self.rng.gen_bool(self.loss_probability) {
                        self.metrics.count("messages_lost", 1);
                        continue;
                    }
                    let latency = self.latency.sample(&mut self.rng, origin, to);
                    let ev = QueuedEvent {
                        at: self.now + latency,
                        seq: self.next_seq(),
                        node: to,
                        kind: EventKind::Deliver { from: origin, msg },
                    };
                    self.push(ev);
                }
                Effect::Timer { delay_ms, token } => {
                    let ev = QueuedEvent {
                        at: self.now + delay_ms,
                        seq: self.next_seq(),
                        node: origin,
                        kind: EventKind::Timer { token },
                    };
                    self.push(ev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ConstantLatency, UniformLatency};

    /// Counts everything it receives; optionally rebroadcasts once.
    struct Flood {
        neighbors: Vec<NodeId>,
        seen: bool,
        received_at: Option<u64>,
    }

    impl Node for Flood {
        type Message = Vec<u8>;
        fn on_start(&mut self, _ctx: &mut Context<'_, Vec<u8>>) {}
        fn on_message(&mut self, ctx: &mut Context<'_, Vec<u8>>, _from: NodeId, msg: Vec<u8>) {
            if !self.seen {
                self.seen = true;
                self.received_at = Some(ctx.now());
                for n in self.neighbors.clone() {
                    ctx.send(n, msg.clone());
                }
            }
        }
        fn on_timer(&mut self, _: &mut Context<'_, Vec<u8>>, _: u64) {}
    }

    fn ring(n: usize) -> Network<Flood> {
        let mut net = Network::new(ConstantLatency(10), 1);
        for i in 0..n {
            net.add_node(Flood {
                neighbors: vec![NodeId((i + 1) % n), NodeId((i + n - 1) % n)],
                seen: false,
                received_at: None,
            });
        }
        net
    }

    #[test]
    fn flood_covers_ring_with_expected_latency() {
        let mut net = ring(10);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            node.received_at = Some(0);
            for n in node.neighbors.clone() {
                ctx.send(n, b"m".to_vec());
            }
        });
        net.run_until(1_000);
        for i in 0..10 {
            assert!(net.node(NodeId(i)).seen, "node {i} missed the flood");
        }
        // farthest node in a 10-ring is 5 hops: 50 ms
        assert_eq!(net.node(NodeId(5)).received_at, Some(50));
    }

    #[test]
    fn loss_drops_messages() {
        let mut net = ring(4);
        net.set_loss_probability(1.0);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            for n in node.neighbors.clone() {
                ctx.send(n, b"m".to_vec());
            }
        });
        net.run_until(1_000);
        assert_eq!(net.metrics().counter("messages_lost"), 2);
        assert!(!net.node(NodeId(1)).seen);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut net: Network<Flood> = Network::new(
                UniformLatency {
                    min_ms: 5,
                    max_ms: 50,
                },
                seed,
            );
            for i in 0..8 {
                net.add_node(Flood {
                    neighbors: vec![NodeId((i + 1) % 8)],
                    seen: false,
                    received_at: None,
                });
            }
            net.invoke(NodeId(0), |node, ctx| {
                node.seen = true;
                ctx.send(NodeId(1), b"m".to_vec());
            });
            net.run_until(10_000);
            (0..8)
                .map(|i| net.node(NodeId(i)).received_at)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            type Message = Vec<u8>;
            fn on_start(&mut self, ctx: &mut Context<'_, Vec<u8>>) {
                ctx.set_timer(30, 3);
                ctx.set_timer(10, 1);
                ctx.set_timer(20, 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, Vec<u8>>, _: NodeId, _: Vec<u8>) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Vec<u8>>, token: u64) {
                assert_eq!(ctx.now() % 10, 0);
                self.fired.push(token);
            }
        }
        let mut net = Network::new(ConstantLatency(1), 1);
        let id = net.add_node(TimerNode { fired: vec![] });
        net.run_until(100);
        assert_eq!(net.node(id).fired, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_does_not_overshoot() {
        let mut net = ring(4);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            ctx.send(NodeId(1), b"m".to_vec());
        });
        net.run_until(5); // before the 10 ms latency
        assert!(!net.node(NodeId(1)).seen);
        assert_eq!(net.now(), 5);
        net.run_until(10);
        assert!(net.node(NodeId(1)).seen);
    }

    #[test]
    fn send_to_unknown_peer_is_counted_not_fatal() {
        let mut net = ring(2);
        net.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(99), b"m".to_vec()));
        net.run_until(100);
        assert_eq!(net.metrics().counter("messages_to_unknown_peer"), 1);
    }

    #[test]
    fn removed_node_gets_no_messages_and_its_timers_die() {
        struct Beacon {
            heartbeats: u64,
            received: u64,
        }
        impl Node for Beacon {
            type Message = Vec<u8>;
            fn on_start(&mut self, ctx: &mut Context<'_, Vec<u8>>) {
                ctx.set_timer(10, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, Vec<u8>>, _: NodeId, _: Vec<u8>) {
                self.received += 1;
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, Vec<u8>>, _: u64) {
                self.heartbeats += 1;
                ctx.set_timer(10, 0); // periodic: would leak forever if not dropped
            }
        }
        let mut net = Network::new(ConstantLatency(5), 1);
        let a = net.add_node(Beacon {
            heartbeats: 0,
            received: 0,
        });
        let b = net.add_node(Beacon {
            heartbeats: 0,
            received: 0,
        });
        net.run_until(100);
        assert!(net.node(b).heartbeats >= 9);
        net.remove_node(b);
        assert!(!net.is_active(b));
        assert_eq!(net.active_len(), 1);
        assert_eq!(net.len(), 2);
        let heartbeats_at_death = net.node(b).heartbeats;
        let received_at_death = net.node(b).received;

        // a message already in flight plus a new one: neither is delivered
        net.invoke(a, |_, ctx| ctx.send(b, b"to the dead".to_vec()));
        net.run_until(1_000);
        assert_eq!(
            net.node(b).heartbeats,
            heartbeats_at_death,
            "timer fired after removal"
        );
        assert_eq!(
            net.node(b).received,
            received_at_death,
            "message delivered to dead node"
        );
        assert!(net.metrics().counter("messages_to_removed_peer") >= 1);
        // the periodic timer was discarded exactly once, not rescheduled
        assert_eq!(net.metrics().counter("timers_dropped_dead_node"), 1);
        assert_eq!(net.metrics().counter("nodes_removed"), 1);
        // the survivor is unaffected
        assert!(net.node(a).heartbeats >= 90);
    }

    #[test]
    fn remove_node_is_idempotent() {
        let mut net = ring(3);
        assert!(net.remove_node(NodeId(1)));
        assert!(!net.remove_node(NodeId(1)));
        assert_eq!(net.metrics().counter("nodes_removed"), 1);
        assert_eq!(net.active_len(), 2);
    }

    #[test]
    #[should_panic(expected = "invoke on removed node")]
    fn invoke_on_removed_node_panics() {
        let mut net = ring(3);
        net.remove_node(NodeId(0));
        net.invoke(NodeId(0), |_, _| ());
    }

    #[test]
    fn per_node_bandwidth_is_attributed_to_the_sender() {
        let mut net = ring(4);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            for n in node.neighbors.clone() {
                ctx.send(n, vec![0u8; 100]);
            }
        });
        net.run_until(1_000);
        assert!(net.metrics().node_bytes_sent(0) >= 200);
        let total: u64 = (0..4).map(|i| net.metrics().node_bytes_sent(i)).sum();
        assert_eq!(total, net.metrics().counter("bytes_sent"));
    }

    #[test]
    fn late_join_gets_started() {
        let mut net = ring(2);
        net.run_until(50);
        let id = net.add_node(Flood {
            neighbors: vec![NodeId(0)],
            seen: false,
            received_at: None,
        });
        net.run_until(100);
        // reachable: sending to it works
        net.invoke(NodeId(0), |_, ctx| ctx.send(id, b"m".to_vec()));
        net.run_until(200);
        assert!(net.node(id).seen);
    }
}
