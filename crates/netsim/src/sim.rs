//! The discrete-event simulator core.
//!
//! A [`Network`] owns a set of protocol state machines (one per simulated
//! peer), a global event queue ordered by simulated time, a latency/loss
//! model and the run's [`Metrics`]. Execution is fully deterministic for a
//! given seed **and independent of the worker-thread count**: events
//! sharing a timestamp are executed as a batch (possibly on several
//! threads, see [`crate::scheduler`]), each node draws randomness from its
//! own seed-derived stream, and every emitted effect is merged back into
//! the queue in canonical `(timestamp, sequence)` order.

use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use crate::scheduler::{stream_seed, NodeStore, LINK_STREAM};
use crate::wheel::EventWheel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// Identifier of a simulated peer (index into the network's node table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The node-table index this id wraps.
    pub fn index(self) -> usize {
        self.0
    }

    /// The id as an explicit 64-bit integer — the wire-stable form used
    /// by metrics and reports (identical on 32- and 64-bit platforms).
    pub fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Wire-size accounting for protocol messages (drives the bandwidth
/// counters). `Send` because batches of same-timestamp events may be
/// executed on worker threads.
pub trait Payload: Clone + Send {
    /// Approximate serialized size in bytes.
    fn size_bytes(&self) -> usize;
}

impl Payload for Vec<u8> {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// A protocol state machine driven by the simulator.
///
/// Callbacks receive an exclusive `&mut self` plus a [`Context`] that
/// **collects** effects (sends, timers, metric updates) instead of
/// applying them — the scheduler merges every step's collected output
/// back into the global queue in canonical order. A step may therefore
/// run on any worker thread (hence the `Send` supertrait) without
/// changing the simulation outcome.
pub trait Node: Send {
    /// The message type exchanged between peers.
    type Message: Payload + Send;

    /// Called once when the simulation starts (schedule initial timers
    /// here).
    fn on_start(&mut self, ctx: &mut Context<Self::Message>);

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Context<Self::Message>, from: NodeId, msg: Self::Message);

    /// Called when a timer set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<Self::Message>, token: u64);
}

#[derive(Clone)]
pub(crate) enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { token: u64 },
    Start,
}

#[derive(Clone)]
pub(crate) struct QueuedEvent<M> {
    pub(crate) at: u64,
    pub(crate) seq: u64,
    pub(crate) node: NodeId,
    pub(crate) kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Retained for the wheel-vs-heap equivalence property tests: a
        // `BinaryHeap` of these is the reference pop order the timing
        // wheel must reproduce (max-heap: invert so earliest pops first).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

pub(crate) enum Effect<M> {
    Send {
        to: NodeId,
        msg: M,
        /// Sender-side hold-back added on top of the sampled link
        /// latency (see [`Context::send_delayed`]). 0 for plain sends.
        hold_ms: u64,
    },
    Timer {
        delay_ms: u64,
        token: u64,
    },
}

/// One buffered metrics update, replayed into [`Metrics`] when a step's
/// output is merged. Keys are `&'static str` so buffering allocates
/// nothing beyond the op list itself.
pub(crate) enum MetricOp {
    Count(&'static str, u64),
    CountNode(u64, &'static str, u64),
    Record(&'static str, f64),
}

pub(crate) fn apply_metric_op(metrics: &mut Metrics, op: MetricOp) {
    match op {
        MetricOp::Count(key, n) => metrics.count(key, n),
        MetricOp::CountNode(node, key, n) => metrics.count_node(node, key, n),
        MetricOp::Record(key, v) => metrics.record(key, v),
    }
}

/// The per-callback execution context handed to protocol code.
///
/// A context is a pure **step-output collector**: it owns the node's RNG
/// stream for the duration of the step and buffers every side effect
/// (sends, timers, metric updates) the callback emits. It borrows nothing
/// from the [`Network`], so same-timestamp steps on different nodes can
/// execute on different worker threads; the scheduler applies the
/// collected output afterwards in canonical event order.
pub struct Context<M> {
    now: u64,
    node: NodeId,
    rng: StdRng,
    effects: Vec<Effect<M>>,
    ops: Vec<MetricOp>,
}

impl<M: Payload> Context<M> {
    pub(crate) fn new(now: u64, node: NodeId, rng: StdRng) -> Context<M> {
        Context {
            now,
            node,
            rng,
            effects: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Tears the context down into the RNG (handed back to the node's
    /// slot) and the collected step output.
    pub(crate) fn finish(self) -> (StdRng, Vec<Effect<M>>, Vec<MetricOp>) {
        (self.rng, self.effects, self.ops)
    }

    /// Current simulated time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The node this callback runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`; it arrives after a sampled link latency
    /// (unless dropped by the loss model).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send {
            to,
            msg,
            hold_ms: 0,
        });
    }

    /// Sends `msg` to `to` after holding it locally for `hold_ms` before
    /// it enters the link (arrival at `now + hold_ms + latency`). This is
    /// the timing-decorrelation primitive behind publisher-side forward
    /// delays: the hold is part of the *sender's* behaviour, so loss and
    /// latency are still sampled from the link stream in canonical merge
    /// order and determinism is unaffected.
    pub fn send_delayed(&mut self, to: NodeId, msg: M, hold_ms: u64) {
        self.effects.push(Effect::Send { to, msg, hold_ms });
    }

    /// Schedules [`Node::on_timer`] with `token` after `delay_ms`.
    pub fn set_timer(&mut self, delay_ms: u64, token: u64) {
        self.effects.push(Effect::Timer { delay_ms, token });
    }

    /// Deterministic RNG for protocol decisions — this node's private
    /// stream, split from the network seed (see
    /// [`crate::scheduler::stream_seed`]), so draws are independent of
    /// other nodes' activity and of the worker-thread count.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Adds to a global counter.
    pub fn count(&mut self, key: &'static str, n: u64) {
        self.ops.push(MetricOp::Count(key, n));
    }

    /// Adds to this node's counter.
    pub fn count_self(&mut self, key: &'static str, n: u64) {
        self.ops
            .push(MetricOp::CountNode(self.node.as_u64(), key, n));
    }

    /// Records a sample into a series.
    pub fn record(&mut self, key: &'static str, value: f64) {
        self.ops.push(MetricOp::Record(key, value));
    }

    /// Charges simulated CPU time (microseconds) to this node — the
    /// resource-restricted-device accounting used by E6/E9.
    pub fn charge_cpu(&mut self, micros: u64) {
        self.ops.push(MetricOp::CountNode(
            self.node.as_u64(),
            "cpu_micros",
            micros,
        ));
    }
}

/// Outcome of [`Network::run_to_quiescence`]: either the event queue
/// actually drained, or the hard stop was hit with work still pending —
/// a condition callers must not silently swallow (a scenario that never
/// settles is a finding, not a footnote).
#[must_use = "a HardStop outcome means the simulation did not settle; surface it"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuiescenceOutcome {
    /// The queue drained completely; `at_ms` is the time of the last
    /// processed event.
    Quiescent {
        /// Simulated time of the final event, milliseconds.
        at_ms: u64,
    },
    /// Events were still queued when the hard stop cut the run off.
    HardStop {
        /// The hard stop that ended the run, milliseconds.
        hard_stop_ms: u64,
        /// Events left in the queue (all scheduled after the hard stop).
        pending_events: u64,
        /// Timestamp of the earliest pending event, milliseconds.
        next_event_at_ms: u64,
    },
}

impl QuiescenceOutcome {
    /// `true` when the queue drained before the hard stop.
    pub fn is_quiescent(&self) -> bool {
        matches!(self, QuiescenceOutcome::Quiescent { .. })
    }

    /// Events still queued when the run ended (0 when quiescent).
    pub fn pending_events(&self) -> u64 {
        match self {
            QuiescenceOutcome::Quiescent { .. } => 0,
            QuiescenceOutcome::HardStop { pending_events, .. } => *pending_events,
        }
    }
}

/// The deterministic discrete-event network.
///
/// # Examples
///
/// ```
/// use wakurln_netsim::{latency::ConstantLatency, sim::{Context, Network, Node, NodeId}};
///
/// struct Echo;
/// impl Node for Echo {
///     type Message = Vec<u8>;
///     fn on_start(&mut self, ctx: &mut Context<Vec<u8>>) {
///         if ctx.node_id() == NodeId(0) {
///             ctx.send(NodeId(1), b"ping".to_vec());
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Context<Vec<u8>>, from: NodeId, msg: Vec<u8>) {
///         if msg == b"ping" { ctx.send(from, b"pong".to_vec()); }
///         else { ctx.count("pong", 1); }
///     }
///     fn on_timer(&mut self, _: &mut Context<Vec<u8>>, _: u64) {}
/// }
///
/// let mut net = Network::new(ConstantLatency(10), 42);
/// net.add_node(Echo);
/// net.add_node(Echo);
/// net.run_until(100);
/// assert_eq!(net.metrics().counter("pong"), 1);
/// ```
pub struct Network<N: Node> {
    /// Per-node state (protocol machine + private RNG stream + liveness
    /// flag), shard-partitionable for batch execution.
    pub(crate) nodes: NodeStore<N>,
    /// The global event queue: a hierarchical timing wheel with
    /// slab-allocated events (see [`crate::wheel`]), pop-order-identical
    /// to the `BinaryHeap` it replaced.
    pub(crate) queue: EventWheel<N::Message>,
    pub(crate) latency: Box<dyn LatencyModel>,
    pub(crate) loss_probability: f64,
    /// Partition-group assignment by node index; empty = no partition.
    /// Sends between different groups are dropped *before* any link-stream
    /// draw, so cutting/healing a partition is a pure function of this
    /// table and cannot shift the link RNG relative to an unpartitioned
    /// run's surviving sends — the fault layer's half of the determinism
    /// contract. Nodes beyond the table (late joins) are unrestricted.
    pub(crate) partition: Vec<u32>,
    /// Extra i.i.d. loss applied on top of the base loss model while a
    /// link-degradation burst is active (0.0 = off). Drawn from the link
    /// stream *after* the base loss draw, in canonical merge order.
    pub(crate) degraded_extra_loss: f64,
    /// Extra per-hop latency (ms) while a degradation burst is active.
    pub(crate) degraded_extra_latency_ms: u64,
    /// The link stream: latency and loss draws. Consumed only while
    /// merging step outputs (canonical order), never by node callbacks.
    pub(crate) link_rng: StdRng,
    pub(crate) seed: u64,
    pub(crate) now: u64,
    pub(crate) seq: u64,
    pub(crate) started: bool,
    pub(crate) metrics: Metrics,
    pub(crate) threads: usize,
    pub(crate) dispatched: u64,
    pub(crate) parallel_rounds: u64,
}

impl<N: Node + Clone> Clone for Network<N> {
    /// Deep-copies the whole simulation — nodes, queue, RNG streams,
    /// metrics — producing an independent network that replays
    /// byte-identically from this instant (the soak harness's
    /// checkpoint/restore primitive).
    fn clone(&self) -> Network<N> {
        Network {
            nodes: self.nodes.clone(),
            queue: self.queue.clone(),
            latency: self.latency.clone(),
            loss_probability: self.loss_probability,
            partition: self.partition.clone(),
            degraded_extra_loss: self.degraded_extra_loss,
            degraded_extra_latency_ms: self.degraded_extra_latency_ms,
            link_rng: self.link_rng.clone(),
            seed: self.seed,
            now: self.now,
            seq: self.seq,
            started: self.started,
            metrics: self.metrics.clone(),
            threads: self.threads,
            dispatched: self.dispatched,
            parallel_rounds: self.parallel_rounds,
        }
    }
}

impl<N: Node> Network<N> {
    /// Creates a network with the given latency model and RNG seed.
    pub fn new<L: LatencyModel + 'static>(latency: L, seed: u64) -> Network<N> {
        Network {
            nodes: NodeStore::new(),
            queue: EventWheel::new(),
            latency: Box::new(latency),
            loss_probability: 0.0,
            partition: Vec::new(),
            degraded_extra_loss: 0.0,
            degraded_extra_latency_ms: 0,
            link_rng: StdRng::seed_from_u64(stream_seed(seed, LINK_STREAM)),
            seed,
            now: 0,
            seq: 0,
            started: false,
            metrics: Metrics::new(),
            threads: 1,
            dispatched: 0,
            parallel_rounds: 0,
        }
    }

    /// Sets an i.i.d. packet-loss probability applied to every send.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss_probability = p;
    }

    /// Installs a network partition: `groups[i]` is node `i`'s side of
    /// the cut, and every send whose endpoints sit in different groups is
    /// dropped (counted as `messages_lost_partition`). Nodes past the end
    /// of the table — e.g. peers joining mid-partition — are unrestricted.
    /// The drop decision is made before any link-stream draw, so the cut
    /// never shifts latency/loss sampling for the traffic that survives.
    pub fn set_partition(&mut self, groups: Vec<u32>) {
        self.partition = groups;
    }

    /// Heals any active partition (all links restored).
    pub fn clear_partition(&mut self) {
        self.partition.clear();
    }

    /// Whether a partition is currently installed.
    pub fn partition_active(&self) -> bool {
        !self.partition.is_empty()
    }

    /// Starts a link-degradation burst: every send suffers `extra_loss`
    /// additional i.i.d. loss (drawn after the base loss model, counted
    /// as `messages_lost_degraded`) and `extra_latency_ms` extra delay.
    pub fn set_degradation(&mut self, extra_loss: f64, extra_latency_ms: u64) {
        assert!(
            (0.0..=1.0).contains(&extra_loss),
            "probability out of range"
        );
        self.degraded_extra_loss = extra_loss;
        self.degraded_extra_latency_ms = extra_latency_ms;
    }

    /// Ends a link-degradation burst.
    pub fn clear_degradation(&mut self) {
        self.degraded_extra_loss = 0.0;
        self.degraded_extra_latency_ms = 0;
    }

    /// Sets the worker-thread count for batch execution. `0` means
    /// auto-detect (available parallelism). The simulation outcome is
    /// byte-identical for every thread count — see the determinism
    /// contract in `docs/ARCHITECTURE.md`. Without the `parallel`
    /// feature the count is clamped to 1.
    pub fn set_threads(&mut self, threads: usize) {
        let resolved = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        #[cfg(feature = "parallel")]
        {
            self.threads = resolved.max(1);
        }
        #[cfg(not(feature = "parallel"))]
        {
            let _ = resolved;
            self.threads = 1;
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Upper bound on link delay, exposed for protocol parameterization
    /// (`Thr = D / T`).
    pub fn max_delay_ms(&self) -> u64 {
        self.latency.max_delay_ms()
    }

    /// Adds a node, returning its id. The node receives its own RNG
    /// stream, split deterministically from the network seed by index.
    /// Nodes added after the run started get their `on_start`
    /// immediately (churn support).
    pub fn add_node(&mut self, node: N) -> NodeId {
        let index = self.nodes.len();
        let rng = StdRng::seed_from_u64(stream_seed(self.seed, index as u64));
        let id = NodeId(self.nodes.push(node, rng));
        if self.started {
            let seq = self.next_seq();
            self.push(QueuedEvent {
                at: self.now,
                seq,
                node: id,
                kind: EventKind::Start,
            });
        }
        id
    }

    /// Removes a node from the network (simulated crash / leave).
    ///
    /// Deactivation, not deletion: ids stay stable and the node's final
    /// protocol state remains readable through [`Network::node`]. From
    /// this point on
    ///
    /// * messages sent to it are dropped and counted as
    ///   `messages_to_removed_peer`,
    /// * its queued timers are discarded at dispatch (counted as
    ///   `timers_dropped_dead_node`) instead of firing — so periodic
    ///   timers stop re-arming and cannot leak for the rest of the run,
    /// * [`Network::invoke`] on it panics.
    ///
    /// Returns `false` when the node was already removed (idempotent).
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        let was_active = self.nodes.deactivate(id.index());
        if was_active {
            self.metrics.count("nodes_removed", 1);
        }
        was_active
    }

    /// Restores a previously removed node (simulated crash → restart):
    /// the *same* [`NodeId`] comes back to life with whatever protocol
    /// state its struct still holds, so per-node metrics keyed by
    /// [`NodeId::as_u64`] stay continuous across the outage. The node's
    /// private RNG stream is untouched (it resumes where it left off —
    /// a property of the slot, not of liveness). If the run has started,
    /// `on_start` is rescheduled so the protocol can re-announce itself
    /// (gossipsub re-subscribes, timers re-arm). Callers wanting a
    /// cold-boot rejoin reset the node state via
    /// [`Network::node_mut`] before restoring.
    ///
    /// Returns `false` when the node was already active (idempotent —
    /// no duplicate `on_start` is scheduled).
    pub fn restore_node(&mut self, id: NodeId) -> bool {
        let was_dead = self.nodes.reactivate(id.index());
        if was_dead {
            self.metrics.count("nodes_restored", 1);
            if self.started {
                let seq = self.next_seq();
                self.push(QueuedEvent {
                    at: self.now,
                    seq,
                    node: id,
                    kind: EventKind::Start,
                });
            }
        }
        was_dead
    }

    /// Whether a node is still live (added and not removed).
    pub fn is_active(&self, id: NodeId) -> bool {
        self.nodes.is_active(id.index())
    }

    /// Number of live nodes (added minus removed).
    pub fn active_len(&self) -> usize {
        self.nodes.active_len()
    }

    /// Number of nodes ever added (including removed ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes were added.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 0
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &N {
        self.nodes.node(id.index())
    }

    /// Mutable access to a node's protocol state (for external inspection
    /// or reconfiguration between runs — effects are not collected here;
    /// use [`Network::invoke`] for actions that need a context).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        self.nodes.node_mut(id.index())
    }

    /// Current simulated time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics (experiment harnesses may record their own series).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Events dispatched to node callbacks so far (includes events
    /// dropped at dead nodes; drives the `--progress` throughput line).
    pub fn events_dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Events still waiting in the queue.
    pub fn pending_events(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Rounds that actually fanned out to worker threads (0 with
    /// `threads = 1`, or when every round stayed under the inline
    /// threshold). Diagnostic: lets benches and tests assert the
    /// parallel path really executed rather than passing vacuously.
    pub fn parallel_rounds(&self) -> u64 {
        self.parallel_rounds
    }

    /// Runs an external action against one node *now*, with a full effect
    /// context (e.g. "publish a message at t=5000").
    pub fn invoke<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut Context<N::Message>) -> R,
    ) -> R {
        assert!(self.is_active(id), "invoke on removed node {id}");
        self.ensure_started();
        let slot = self.nodes.slot_mut(id.index());
        let rng = std::mem::replace(&mut slot.rng, StdRng::seed_from_u64(0));
        let mut ctx = Context::new(self.now, id, rng);
        let out = f(&mut slot.node, &mut ctx);
        let (rng, effects, ops) = ctx.finish();
        self.nodes.slot_mut(id.index()).rng = rng;
        for op in ops {
            apply_metric_op(&mut self.metrics, op);
        }
        self.apply_effects(id, effects);
        out
    }

    /// Processes events until simulated time `t` (inclusive). Events
    /// scheduled beyond `t` stay queued; the clock ends at `t`.
    pub fn run_until(&mut self, t: u64) {
        self.run_batched(t);
        self.now = self.now.max(t);
    }

    /// Runs until the event queue is empty (or `hard_stop` is reached),
    /// reporting which of the two actually happened — callers decide
    /// whether leftover events are expected (periodic protocol timers
    /// re-arm forever) or a stall worth surfacing.
    pub fn run_to_quiescence(&mut self, hard_stop: u64) -> QuiescenceOutcome {
        self.run_batched(hard_stop);
        match self.queue.next_event_at() {
            None => QuiescenceOutcome::Quiescent { at_ms: self.now },
            Some(next_at) => QuiescenceOutcome::HardStop {
                hard_stop_ms: hard_stop,
                pending_events: self.queue.len() as u64,
                next_event_at_ms: next_at,
            },
        }
    }

    pub(crate) fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                let ev = QueuedEvent {
                    at: self.now,
                    seq: self.next_seq(),
                    node: NodeId(i),
                    kind: EventKind::Start,
                };
                self.push(ev);
            }
        }
    }

    pub(crate) fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn push(&mut self, ev: QueuedEvent<N::Message>) {
        self.queue.push(ev);
    }

    /// Applies one step's collected effects: sends sample the link
    /// stream (loss, latency) and enqueue deliveries; timers re-enqueue
    /// on the origin. Always called in canonical event order, which is
    /// what keeps the link stream — and therefore the whole simulation —
    /// independent of the worker-thread count.
    pub(crate) fn apply_effects(&mut self, origin: NodeId, effects: Vec<Effect<N::Message>>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg, hold_ms } => {
                    if to.index() >= self.nodes.len() {
                        self.metrics.count("messages_to_unknown_peer", 1);
                        continue;
                    }
                    if !self.nodes.is_active(to.index()) {
                        // dead peers take no traffic (connection torn down)
                        self.metrics.count("messages_to_removed_peer", 1);
                        continue;
                    }
                    // partition cut: decided purely from the group table,
                    // before any link-stream draw (see `partition` docs)
                    if !self.partition.is_empty() {
                        let cut = match (
                            self.partition.get(origin.index()),
                            self.partition.get(to.index()),
                        ) {
                            (Some(a), Some(b)) => a != b,
                            _ => false,
                        };
                        if cut {
                            self.metrics.count("messages_lost_partition", 1);
                            continue;
                        }
                    }
                    self.metrics.count("messages_sent", 1);
                    let size = msg.size_bytes() as u64;
                    self.metrics.count("bytes_sent", size);
                    self.metrics.add_node_bytes_sent(origin.as_u64(), size);
                    if self.loss_probability > 0.0 && self.link_rng.gen_bool(self.loss_probability)
                    {
                        self.metrics.count("messages_lost", 1);
                        continue;
                    }
                    if self.degraded_extra_loss > 0.0
                        && self.link_rng.gen_bool(self.degraded_extra_loss)
                    {
                        self.metrics.count("messages_lost_degraded", 1);
                        continue;
                    }
                    let latency = self.latency.sample(&mut self.link_rng, origin, to)
                        + self.degraded_extra_latency_ms;
                    let ev = QueuedEvent {
                        at: self.now + hold_ms + latency,
                        seq: self.next_seq(),
                        node: to,
                        kind: EventKind::Deliver { from: origin, msg },
                    };
                    self.push(ev);
                }
                Effect::Timer { delay_ms, token } => {
                    let ev = QueuedEvent {
                        at: self.now + delay_ms,
                        seq: self.next_seq(),
                        node: origin,
                        kind: EventKind::Timer { token },
                    };
                    self.push(ev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ConstantLatency, UniformLatency};

    /// Counts everything it receives; optionally rebroadcasts once.
    struct Flood {
        neighbors: Vec<NodeId>,
        seen: bool,
        received_at: Option<u64>,
    }

    impl Node for Flood {
        type Message = Vec<u8>;
        fn on_start(&mut self, _ctx: &mut Context<Vec<u8>>) {}
        fn on_message(&mut self, ctx: &mut Context<Vec<u8>>, _from: NodeId, msg: Vec<u8>) {
            if !self.seen {
                self.seen = true;
                self.received_at = Some(ctx.now());
                for n in self.neighbors.clone() {
                    ctx.send(n, msg.clone());
                }
            }
        }
        fn on_timer(&mut self, _: &mut Context<Vec<u8>>, _: u64) {}
    }

    fn ring(n: usize) -> Network<Flood> {
        let mut net = Network::new(ConstantLatency(10), 1);
        for i in 0..n {
            net.add_node(Flood {
                neighbors: vec![NodeId((i + 1) % n), NodeId((i + n - 1) % n)],
                seen: false,
                received_at: None,
            });
        }
        net
    }

    #[test]
    fn flood_covers_ring_with_expected_latency() {
        let mut net = ring(10);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            node.received_at = Some(0);
            for n in node.neighbors.clone() {
                ctx.send(n, b"m".to_vec());
            }
        });
        net.run_until(1_000);
        for i in 0..10 {
            assert!(net.node(NodeId(i)).seen, "node {i} missed the flood");
        }
        // farthest node in a 10-ring is 5 hops: 50 ms
        assert_eq!(net.node(NodeId(5)).received_at, Some(50));
    }

    #[test]
    fn loss_drops_messages() {
        let mut net = ring(4);
        net.set_loss_probability(1.0);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            for n in node.neighbors.clone() {
                ctx.send(n, b"m".to_vec());
            }
        });
        net.run_until(1_000);
        assert_eq!(net.metrics().counter("messages_lost"), 2);
        assert!(!net.node(NodeId(1)).seen);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut net: Network<Flood> = Network::new(
                UniformLatency {
                    min_ms: 5,
                    max_ms: 50,
                },
                seed,
            );
            for i in 0..8 {
                net.add_node(Flood {
                    neighbors: vec![NodeId((i + 1) % 8)],
                    seen: false,
                    received_at: None,
                });
            }
            net.invoke(NodeId(0), |node, ctx| {
                node.seen = true;
                ctx.send(NodeId(1), b"m".to_vec());
            });
            net.run_until(10_000);
            (0..8)
                .map(|i| net.node(NodeId(i)).received_at)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            type Message = Vec<u8>;
            fn on_start(&mut self, ctx: &mut Context<Vec<u8>>) {
                ctx.set_timer(30, 3);
                ctx.set_timer(10, 1);
                ctx.set_timer(20, 2);
            }
            fn on_message(&mut self, _: &mut Context<Vec<u8>>, _: NodeId, _: Vec<u8>) {}
            fn on_timer(&mut self, ctx: &mut Context<Vec<u8>>, token: u64) {
                assert_eq!(ctx.now() % 10, 0);
                self.fired.push(token);
            }
        }
        let mut net = Network::new(ConstantLatency(1), 1);
        let id = net.add_node(TimerNode { fired: vec![] });
        net.run_until(100);
        assert_eq!(net.node(id).fired, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_does_not_overshoot() {
        let mut net = ring(4);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            ctx.send(NodeId(1), b"m".to_vec());
        });
        net.run_until(5); // before the 10 ms latency
        assert!(!net.node(NodeId(1)).seen);
        assert_eq!(net.now(), 5);
        net.run_until(10);
        assert!(net.node(NodeId(1)).seen);
    }

    #[test]
    fn send_delayed_holds_back_delivery_by_exactly_the_hold() {
        let mut net = ring(2); // constant 10 ms links
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            ctx.send_delayed(NodeId(1), b"m".to_vec(), 25);
        });
        net.run_until(34); // hold 25 + latency 10 = arrival at 35
        assert!(!net.node(NodeId(1)).seen);
        net.run_until(35);
        assert!(net.node(NodeId(1)).seen);
        assert_eq!(net.node(NodeId(1)).received_at, Some(35));
    }

    #[test]
    fn send_to_unknown_peer_is_counted_not_fatal() {
        let mut net = ring(2);
        net.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(99), b"m".to_vec()));
        net.run_until(100);
        assert_eq!(net.metrics().counter("messages_to_unknown_peer"), 1);
    }

    #[test]
    fn removed_node_gets_no_messages_and_its_timers_die() {
        struct Beacon {
            heartbeats: u64,
            received: u64,
        }
        impl Node for Beacon {
            type Message = Vec<u8>;
            fn on_start(&mut self, ctx: &mut Context<Vec<u8>>) {
                ctx.set_timer(10, 0);
            }
            fn on_message(&mut self, _: &mut Context<Vec<u8>>, _: NodeId, _: Vec<u8>) {
                self.received += 1;
            }
            fn on_timer(&mut self, ctx: &mut Context<Vec<u8>>, _: u64) {
                self.heartbeats += 1;
                ctx.set_timer(10, 0); // periodic: would leak forever if not dropped
            }
        }
        let mut net = Network::new(ConstantLatency(5), 1);
        let a = net.add_node(Beacon {
            heartbeats: 0,
            received: 0,
        });
        let b = net.add_node(Beacon {
            heartbeats: 0,
            received: 0,
        });
        net.run_until(100);
        assert!(net.node(b).heartbeats >= 9);
        net.remove_node(b);
        assert!(!net.is_active(b));
        assert_eq!(net.active_len(), 1);
        assert_eq!(net.len(), 2);
        let heartbeats_at_death = net.node(b).heartbeats;
        let received_at_death = net.node(b).received;

        // a message already in flight plus a new one: neither is delivered
        net.invoke(a, |_, ctx| ctx.send(b, b"to the dead".to_vec()));
        net.run_until(1_000);
        assert_eq!(
            net.node(b).heartbeats,
            heartbeats_at_death,
            "timer fired after removal"
        );
        assert_eq!(
            net.node(b).received,
            received_at_death,
            "message delivered to dead node"
        );
        assert!(net.metrics().counter("messages_to_removed_peer") >= 1);
        // the periodic timer was discarded exactly once, not rescheduled
        assert_eq!(net.metrics().counter("timers_dropped_dead_node"), 1);
        assert_eq!(net.metrics().counter("nodes_removed"), 1);
        // the survivor is unaffected
        assert!(net.node(a).heartbeats >= 90);
    }

    #[test]
    fn remove_node_is_idempotent() {
        let mut net = ring(3);
        assert!(net.remove_node(NodeId(1)));
        assert!(!net.remove_node(NodeId(1)));
        assert_eq!(net.metrics().counter("nodes_removed"), 1);
        assert_eq!(net.active_len(), 2);
    }

    #[test]
    fn restore_node_revives_the_same_slot_and_is_idempotent() {
        let mut net = ring(3);
        net.run_until(10);
        net.remove_node(NodeId(1));
        assert!(!net.is_active(NodeId(1)));
        // restoring an active node is a no-op
        assert!(!net.restore_node(NodeId(0)));
        assert_eq!(net.metrics().counter("nodes_restored"), 0);
        // the dead node comes back under the same id
        assert!(net.restore_node(NodeId(1)));
        assert!(!net.restore_node(NodeId(1)), "second restore must no-op");
        assert_eq!(net.metrics().counter("nodes_restored"), 1);
        assert!(net.is_active(NodeId(1)));
        assert_eq!(net.active_len(), 3);
        // traffic flows to it again and is attributed to the same id
        net.invoke(NodeId(0), |_, ctx| ctx.send(NodeId(1), b"m".to_vec()));
        net.run_until(100);
        assert!(net.node(NodeId(1)).seen);
    }

    #[test]
    fn restore_reschedules_on_start_for_started_runs() {
        struct Beacon {
            starts: u64,
        }
        impl Node for Beacon {
            type Message = Vec<u8>;
            fn on_start(&mut self, _: &mut Context<Vec<u8>>) {
                self.starts += 1;
            }
            fn on_message(&mut self, _: &mut Context<Vec<u8>>, _: NodeId, _: Vec<u8>) {}
            fn on_timer(&mut self, _: &mut Context<Vec<u8>>, _: u64) {}
        }
        let mut net: Network<Beacon> = Network::new(ConstantLatency(5), 1);
        let a = net.add_node(Beacon { starts: 0 });
        net.run_until(50);
        assert_eq!(net.node(a).starts, 1);
        net.remove_node(a);
        net.restore_node(a);
        net.run_until(100);
        assert_eq!(net.node(a).starts, 2, "restart must re-run on_start");
    }

    #[test]
    fn partition_cuts_cross_group_traffic_only() {
        let mut net = ring(4);
        net.set_partition(vec![0, 0, 1, 1]);
        assert!(net.partition_active());
        // same side: delivered
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            ctx.send(NodeId(1), b"m".to_vec());
        });
        // across the cut: dropped
        net.invoke(NodeId(1), |_, ctx| ctx.send(NodeId(2), b"m".to_vec()));
        net.run_until(1_000);
        assert!(net.node(NodeId(1)).seen);
        assert!(!net.node(NodeId(2)).seen);
        // the explicit 1→2 send plus node 1's flood rebroadcast to 2
        assert_eq!(net.metrics().counter("messages_lost_partition"), 2);
        // heal: traffic crosses again
        net.clear_partition();
        net.invoke(NodeId(1), |_, ctx| ctx.send(NodeId(2), b"m".to_vec()));
        net.run_until(2_000);
        assert!(net.node(NodeId(2)).seen);
    }

    #[test]
    fn partition_drop_does_not_shift_the_link_stream() {
        // two runs, identical same-side traffic; run B adds cross-cut
        // sends that the partition eats. Surviving arrival times must be
        // identical — the cut consumes no link-stream draws.
        let run = |cross: bool| {
            let mut net: Network<Flood> = Network::new(
                UniformLatency {
                    min_ms: 5,
                    max_ms: 50,
                },
                7,
            );
            for _ in 0..4 {
                net.add_node(Flood {
                    neighbors: vec![],
                    seen: false,
                    received_at: None,
                });
            }
            net.set_partition(vec![0, 0, 1, 1]);
            net.invoke(NodeId(0), |_, ctx| {
                if cross {
                    ctx.send(NodeId(2), b"cut".to_vec());
                }
                ctx.send(NodeId(1), b"a".to_vec());
            });
            net.run_until(1_000);
            net.node(NodeId(1)).received_at
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn degradation_adds_loss_and_latency_then_clears() {
        let mut net = ring(2); // constant 10 ms links
        net.set_degradation(0.0, 25);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            ctx.send(NodeId(1), b"m".to_vec());
        });
        net.run_until(1_000);
        assert_eq!(net.node(NodeId(1)).received_at, Some(35)); // 10 + 25
        net.clear_degradation();
        let mut lossy = ring(2);
        lossy.set_degradation(1.0, 0);
        lossy.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            ctx.send(NodeId(1), b"m".to_vec());
        });
        lossy.run_until(1_000);
        assert!(!lossy.node(NodeId(1)).seen);
        assert_eq!(lossy.metrics().counter("messages_lost_degraded"), 1);
    }

    #[test]
    #[should_panic(expected = "invoke on removed node")]
    fn invoke_on_removed_node_panics() {
        let mut net = ring(3);
        net.remove_node(NodeId(0));
        net.invoke(NodeId(0), |_, _| ());
    }

    #[test]
    fn per_node_bandwidth_is_attributed_to_the_sender() {
        let mut net = ring(4);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            for n in node.neighbors.clone() {
                ctx.send(n, vec![0u8; 100]);
            }
        });
        net.run_until(1_000);
        assert!(net.metrics().node_bytes_sent(0) >= 200);
        let total: u64 = (0..4).map(|i| net.metrics().node_bytes_sent(i)).sum();
        assert_eq!(total, net.metrics().counter("bytes_sent"));
    }

    #[test]
    fn late_join_gets_started() {
        let mut net = ring(2);
        net.run_until(50);
        let id = net.add_node(Flood {
            neighbors: vec![NodeId(0)],
            seen: false,
            received_at: None,
        });
        net.run_until(100);
        // reachable: sending to it works
        net.invoke(NodeId(0), |_, ctx| ctx.send(id, b"m".to_vec()));
        net.run_until(200);
        assert!(net.node(id).seen);
    }

    #[test]
    fn quiescence_reports_leftover_events() {
        let mut net = ring(4);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            ctx.send(NodeId(1), b"m".to_vec());
        });
        // the flood settles well before 1000 ms: queue drains
        let outcome = net.run_to_quiescence(1_000);
        assert!(outcome.is_quiescent());
        assert_eq!(outcome.pending_events(), 0);
        assert_eq!(net.pending_events(), 0);

        // an in-flight message past the hard stop must be reported
        net.invoke(NodeId(2), |_, ctx| ctx.send(NodeId(3), b"late".to_vec()));
        let now = net.now();
        let outcome = net.run_to_quiescence(now); // delivery is now+10
        match outcome {
            QuiescenceOutcome::HardStop {
                pending_events,
                next_event_at_ms,
                ..
            } => {
                assert_eq!(pending_events, 1);
                assert_eq!(next_event_at_ms, now + 10);
            }
            QuiescenceOutcome::Quiescent { .. } => panic!("should have pending work"),
        }
    }

    #[test]
    fn dispatched_counter_tracks_events() {
        let mut net = ring(4);
        net.invoke(NodeId(0), |node, ctx| {
            node.seen = true;
            ctx.send(NodeId(1), b"m".to_vec());
        });
        net.run_until(1_000);
        // 4 starts + deliveries (flood over the ring)
        assert!(net.events_dispatched() >= 5);
    }
}
