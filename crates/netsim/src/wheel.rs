//! Hierarchical timing wheel: the simulator's event queue.
//!
//! Replaces the global `BinaryHeap` with a calendar-queue structure
//! tuned for the scheduler's access pattern — `pop everything at the
//! earliest timestamp, in sequence order` — which a heap serves in
//! `O(k log n)` per round but the wheel serves in amortized `O(k)`:
//!
//! * **11 levels × 64 slots** (6 bits per level, 66 ≥ 64 bits) cover
//!   every `u64` millisecond timestamp. An event's level is the highest
//!   6-bit group in which its timestamp differs from the wheel's
//!   current time; its slot is that group's value. Level 0 therefore
//!   resolves single milliseconds inside the current 64 ms window.
//! * **Occupancy bitmasks** (one `u64` per level) make "earliest
//!   non-empty slot" a `trailing_zeros` instruction.
//! * **Slab-allocated events**: slots store `u32` handles into a slab
//!   `Vec` with an intrusive free list, so cascading a slot to lower
//!   levels moves 4-byte handles, never message payloads, and event
//!   storage is reused without allocator churn.
//!
//! # Determinism contract
//!
//! The wheel preserves the exact `(at, seq)` pop order of the heap it
//! replaces (the PR 4 contract the batch → shard → merge scheduler
//! depends on). The argument:
//!
//! 1. Sequence numbers are globally monotonic and events are pushed in
//!    sequence order, so every slot `Vec` is seq-ordered as pushed.
//! 2. A 64 ms window's events cascade to level 0 *in one operation*,
//!    exactly when the wheel's time first enters that window — before
//!    any new push inside the window can occur (pushes always carry
//!    `at ≥ now ≥ cur`). Cascading iterates the slot in order, so
//!    seq order is preserved, and later pushes append after it.
//! 3. A level-0 slot holds exactly one timestamp, so draining it yields
//!    the full `(at == min)` batch in seq order — byte-identical to
//!    popping the heap until the head's timestamp changes.
//!
//! The equivalence is additionally property-tested against a real
//! `BinaryHeap` over random `(at, seq)` workloads below.

use crate::sim::QueuedEvent;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// ⌈64 / 6⌉ levels cover the full u64 timestamp range.
const LEVELS: usize = 11;
const NO_FREE: u32 = u32::MAX;

#[derive(Clone)]
enum SlabEntry<M> {
    Occupied(Box<QueuedEvent<M>>),
    /// Free-list link to the next vacant slab index (`NO_FREE` ends it).
    Vacant(u32),
}

/// The event queue: see the module docs for structure and invariants.
///
/// Key invariant maintained throughout: `cur` only advances by entering
/// the window of the globally earliest event, and entering a window
/// cascades that window's slot entirely — so every stored handle's
/// (level, slot) position remains consistent with `cur` at all times,
/// and the earliest event is always in the first occupied slot of the
/// lowest non-empty level.
pub(crate) struct EventWheel<M> {
    levels: Vec<[Vec<u32>; SLOTS]>,
    occupied: [u64; LEVELS],
    slab: Vec<SlabEntry<M>>,
    free_head: u32,
    /// The wheel's reference time: the timestamp of the last popped
    /// batch. All queued events satisfy `at ≥ cur`.
    cur: u64,
    len: usize,
}

impl<M: Clone> Clone for EventWheel<M> {
    fn clone(&self) -> EventWheel<M> {
        EventWheel {
            levels: self.levels.clone(),
            occupied: self.occupied,
            slab: self.slab.clone(),
            free_head: self.free_head,
            cur: self.cur,
            len: self.len,
        }
    }
}

impl<M> EventWheel<M> {
    pub(crate) fn new() -> EventWheel<M> {
        EventWheel {
            levels: (0..LEVELS)
                .map(|_| std::array::from_fn(|_| Vec::new()))
                .collect(),
            occupied: [0; LEVELS],
            slab: Vec::new(),
            free_head: NO_FREE,
            cur: 0,
            len: 0,
        }
    }

    /// Queued events.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Level and slot for `at`, relative to the wheel's current time.
    fn level_slot(&self, at: u64) -> (usize, usize) {
        debug_assert!(at >= self.cur, "event scheduled in the past");
        let diff = at ^ self.cur;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((at >> (SLOT_BITS as usize * level) as u32) & SLOT_MASK) as usize;
        (level, slot)
    }

    fn insert_handle(&mut self, handle: u32, at: u64) {
        let (level, slot) = self.level_slot(at);
        self.levels[level][slot].push(handle);
        self.occupied[level] |= 1 << slot;
    }

    fn event_at(&self, handle: u32) -> u64 {
        match &self.slab[handle as usize] {
            SlabEntry::Occupied(ev) => ev.at,
            SlabEntry::Vacant(_) => unreachable!("queued handle points at a vacant slab entry"),
        }
    }

    /// Enqueues an event (`ev.at` must be ≥ the last popped timestamp).
    pub(crate) fn push(&mut self, ev: QueuedEvent<M>) {
        let at = ev.at;
        let handle = if self.free_head != NO_FREE {
            let handle = self.free_head;
            match std::mem::replace(
                &mut self.slab[handle as usize],
                SlabEntry::Occupied(Box::new(ev)),
            ) {
                SlabEntry::Vacant(next) => self.free_head = next,
                SlabEntry::Occupied(_) => unreachable!("free list points at an occupied entry"),
            }
            handle
        } else {
            assert!(self.slab.len() < u32::MAX as usize, "event slab full");
            self.slab.push(SlabEntry::Occupied(Box::new(ev)));
            (self.slab.len() - 1) as u32
        };
        self.insert_handle(handle, at);
        self.len += 1;
    }

    /// Timestamp of the earliest queued event, without popping.
    pub(crate) fn next_event_at(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let level = (0..LEVELS)
            .find(|&l| self.occupied[l] != 0)
            // lint:allow(panic-path, reason = "occupancy invariant: len > 0 means some level has a set bit")
            .expect("len > 0 but no occupied slot");
        let slot = self.occupied[level].trailing_zeros() as usize;
        if level == 0 {
            // a level-0 slot is a single millisecond in the current window
            Some((self.cur & !SLOT_MASK) | slot as u64)
        } else {
            // a coarser slot spans many timestamps: scan it for the min
            self.levels[level][slot]
                .iter()
                .map(|&h| self.event_at(h))
                .min()
        }
    }

    /// Pops **every** event at the earliest queued timestamp into `out`
    /// (in `(at, seq)` order), provided that timestamp is ≤ `limit`.
    /// Returns the batch timestamp, or `None` if the queue is empty or
    /// the earliest event lies beyond `limit` (queue untouched).
    pub(crate) fn pop_next_batch(
        &mut self,
        limit: u64,
        out: &mut Vec<QueuedEvent<M>>,
    ) -> Option<u64> {
        let at = self.next_event_at()?;
        if at > limit {
            return None;
        }
        // Advance into the target window. `at` is the global minimum, so
        // this changes `cur` only within the window of the first occupied
        // slot of the lowest non-empty level — every other stored
        // position stays consistent (see struct docs).
        self.cur = at;
        loop {
            let level = (0..LEVELS)
                .find(|&l| self.occupied[l] != 0)
                // lint:allow(panic-path, reason = "occupancy invariant: a recorded minimum implies a set bit at some level")
                .expect("min exists but no occupied slot");
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                debug_assert_eq!(slot as u64, at & SLOT_MASK, "min not in the current window");
                // lint:allow(panic-path, reason = "level 0 always exists and slot comes from a SLOT_MASK-masked index")
                let handles = std::mem::take(&mut self.levels[0][slot]);
                self.occupied[0] &= !(1 << slot);
                self.len -= handles.len();
                out.reserve(handles.len());
                for handle in handles {
                    let entry = std::mem::replace(
                        &mut self.slab[handle as usize],
                        SlabEntry::Vacant(self.free_head),
                    );
                    self.free_head = handle;
                    match entry {
                        SlabEntry::Occupied(ev) => {
                            debug_assert_eq!(ev.at, at);
                            out.push(*ev);
                        }
                        SlabEntry::Vacant(_) => unreachable!("popped handle was vacant"),
                    }
                }
                return Some(at);
            }
            // cascade: redistribute the slot to lower levels relative to
            // the new `cur`, preserving (seq) order
            let handles = std::mem::take(&mut self.levels[level][slot]);
            self.occupied[level] &= !(1 << slot);
            for handle in handles {
                let at_h = self.event_at(handle);
                self.insert_handle(handle, at_h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{EventKind, NodeId};
    use proptest::prelude::*;
    use std::collections::BinaryHeap;

    fn ev(at: u64, seq: u64) -> QueuedEvent<Vec<u8>> {
        QueuedEvent {
            at,
            seq,
            node: NodeId(0),
            kind: EventKind::Timer { token: seq },
        }
    }

    /// Drains both queues batch-by-batch, checking identical order.
    fn assert_matches_heap(
        mut wheel: EventWheel<Vec<u8>>,
        mut heap: BinaryHeap<QueuedEvent<Vec<u8>>>,
    ) {
        let mut batch = Vec::new();
        loop {
            batch.clear();
            let at = wheel.pop_next_batch(u64::MAX, &mut batch);
            match at {
                None => {
                    assert!(heap.is_empty(), "wheel drained before the heap");
                    break;
                }
                Some(at) => {
                    for got in &batch {
                        let want = heap.pop().expect("heap drained before the wheel");
                        assert_eq!((got.at, got.seq), (want.at, want.seq));
                        assert_eq!(got.at, at);
                    }
                    assert!(
                        heap.peek().map(|h| h.at != at).unwrap_or(true),
                        "wheel batch at t={at} did not take every event of the timestamp"
                    );
                }
            }
        }
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn single_timestamp_batch_pops_in_seq_order() {
        let mut wheel = EventWheel::new();
        for seq in 1..=5u64 {
            wheel.push(ev(100, seq));
        }
        let mut batch = Vec::new();
        assert_eq!(wheel.pop_next_batch(u64::MAX, &mut batch), Some(100));
        let seqs: Vec<u64> = batch.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn limit_defers_future_events() {
        let mut wheel = EventWheel::new();
        wheel.push(ev(50, 1));
        wheel.push(ev(5_000, 2));
        let mut batch = Vec::new();
        assert_eq!(wheel.pop_next_batch(100, &mut batch), Some(50));
        batch.clear();
        assert_eq!(wheel.pop_next_batch(100, &mut batch), None);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.next_event_at(), Some(5_000));
        assert_eq!(wheel.pop_next_batch(u64::MAX, &mut batch), Some(5_000));
    }

    #[test]
    fn interleaved_push_pop_at_same_timestamp() {
        // zero-latency sends: new events land at the timestamp just popped
        let mut wheel = EventWheel::new();
        wheel.push(ev(10, 1));
        let mut batch = Vec::new();
        assert_eq!(wheel.pop_next_batch(u64::MAX, &mut batch), Some(10));
        wheel.push(ev(10, 2)); // same instant, pushed mid-round
        wheel.push(ev(11, 3));
        batch.clear();
        assert_eq!(wheel.pop_next_batch(u64::MAX, &mut batch), Some(10));
        assert_eq!(batch[0].seq, 2);
        batch.clear();
        assert_eq!(wheel.pop_next_batch(u64::MAX, &mut batch), Some(11));
        assert_eq!(batch[0].seq, 3);
    }

    #[test]
    fn distant_timestamps_cascade_across_levels() {
        let mut wheel = EventWheel::new();
        // one event per level distance: 1, 64, 64², … plus u64 extremes
        let times = [
            1u64,
            63,
            64,
            65,
            4_095,
            4_096,
            262_144,
            1 << 40,
            u64::MAX - 1,
        ];
        for (i, &t) in times.iter().enumerate() {
            wheel.push(ev(t, i as u64 + 1));
        }
        let mut popped = Vec::new();
        let mut batch = Vec::new();
        while let Some(at) = wheel.pop_next_batch(u64::MAX, &mut batch) {
            popped.push(at);
            batch.clear();
        }
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(popped, want);
    }

    #[test]
    fn slab_reuses_freed_entries() {
        let mut wheel = EventWheel::new();
        let mut batch = Vec::new();
        for round in 0..100u64 {
            for k in 0..8u64 {
                wheel.push(ev(round * 10, round * 8 + k + 1));
            }
            batch.clear();
            wheel.pop_next_batch(u64::MAX, &mut batch);
            assert_eq!(batch.len(), 8);
        }
        // the slab never grew past one round's worth of live events
        assert!(wheel.slab.len() <= 8, "slab grew to {}", wheel.slab.len());
    }

    proptest! {
        /// The tentpole equivalence property: over random `(at, seq)`
        /// workloads with interleaved pushes (monotone seq, timestamps
        /// at mixed magnitudes), the wheel pops byte-identically to a
        /// `BinaryHeap` ordered by `(at, seq)`.
        #[test]
        fn pops_match_binary_heap(
            jumps in proptest::collection::vec((0u64..3, 0u64..200_000, 1usize..6), 1..60)
        ) {
            let mut wheel = EventWheel::new();
            let mut heap: BinaryHeap<QueuedEvent<Vec<u8>>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut base = 0u64;
            for (scale, offset, burst) in jumps {
                // mixed magnitudes: near, mid and far future
                let at = base + (offset << (scale * 13));
                for _ in 0..burst {
                    seq += 1;
                    wheel.push(ev(at, seq));
                    heap.push(ev(at, seq));
                }
                // occasionally advance time by popping one batch from both
                if seq.is_multiple_of(3) {
                    let mut batch = Vec::new();
                    if let Some(t) = wheel.pop_next_batch(u64::MAX, &mut batch) {
                        base = base.max(t);
                        for got in &batch {
                            let want = heap.pop().unwrap();
                            prop_assert_eq!((got.at, got.seq), (want.at, want.seq));
                        }
                    }
                }
            }
            assert_matches_heap(wheel, heap);
        }

        /// Dense same-timestamp bursts (the scheduler's hot case) keep
        /// strict seq order through cascades.
        #[test]
        fn bursty_rounds_preserve_seq_order(
            rounds in proptest::collection::vec((0u64..500, 1usize..20), 1..40)
        ) {
            let mut wheel = EventWheel::new();
            let mut heap: BinaryHeap<QueuedEvent<Vec<u8>>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut at = 0u64;
            for (gap, burst) in rounds {
                at += gap;
                for _ in 0..burst {
                    seq += 1;
                    wheel.push(ev(at, seq));
                    heap.push(ev(at, seq));
                }
            }
            assert_matches_heap(wheel, heap);
        }
    }
}
