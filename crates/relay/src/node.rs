//! The WAKU-RELAY peer: anonymous topic-based pub/sub over GossipSub.

use crate::message::WakuMessage;
use wakurln_gossipsub::{
    Delivery, GossipsubConfig, GossipsubNode, MessageId, Rpc, ScoringConfig, Topic, Validator,
};
use wakurln_netsim::{Context, Node, NodeId};

/// The default WAKU pub/sub topic (all peers of one network share it; the
/// paper's Figure 1 groups RLN membership per pub/sub topic).
pub const DEFAULT_PUBSUB_TOPIC: &str = "/waku/2/default-waku/proto";

/// A WAKU-RELAY peer: GossipSub routing plus the anonymized
/// [`WakuMessage`] envelope.
///
/// Generic over the GossipSub [`Validator`] so that WAKU-RLN-RELAY can
/// attach its RLN validation pipeline without this crate knowing about
/// proofs.
#[derive(Clone)]
pub struct WakuRelayNode<V: Validator> {
    inner: GossipsubNode<V>,
    pubsub_topic: Topic,
}

impl<V: Validator> WakuRelayNode<V> {
    /// Creates a relay peer subscribed to `pubsub_topic`.
    pub fn new(
        config: GossipsubConfig,
        scoring: ScoringConfig,
        known_peers: Vec<NodeId>,
        validator: V,
        pubsub_topic: Topic,
    ) -> WakuRelayNode<V> {
        let mut inner = GossipsubNode::new(config, scoring, known_peers, validator);
        inner.subscribe(pubsub_topic.clone());
        WakuRelayNode {
            inner,
            pubsub_topic,
        }
    }

    /// Creates a peer on the default pub/sub topic.
    pub fn with_defaults(known_peers: Vec<NodeId>, validator: V) -> WakuRelayNode<V> {
        WakuRelayNode::new(
            GossipsubConfig::default(),
            ScoringConfig::default(),
            known_peers,
            validator,
            Topic::new(DEFAULT_PUBSUB_TOPIC),
        )
    }

    /// The pub/sub topic this peer participates in.
    pub fn pubsub_topic(&self) -> &Topic {
        &self.pubsub_topic
    }

    /// Publishes an anonymized message.
    pub fn publish(&mut self, ctx: &mut Context<Rpc>, message: &WakuMessage) -> MessageId {
        self.inner
            .publish(ctx, self.pubsub_topic.clone(), message.encode())
    }

    /// Messages delivered to this peer, decoded. Malformed payloads are
    /// skipped (they were already counted by validation).
    pub fn waku_deliveries(&self) -> Vec<(WakuMessage, u64)> {
        self.inner
            .delivered()
            .iter()
            .filter_map(|d: &Delivery| WakuMessage::decode(&d.data).ok().map(|m| (m, d.at_ms)))
            .collect()
    }

    /// Raw gossipsub deliveries (id, time) for latency accounting.
    pub fn raw_deliveries(&self) -> &[Delivery] {
        self.inner.delivered()
    }

    /// Switches the passive observer tap on the underlying gossip node
    /// (see [`GossipsubNode::set_observer`]): while enabled, every
    /// incoming message forward is recorded with its previous hop and
    /// arrival time — the colluding-surveillance adversary's view.
    pub fn set_observer(&mut self, observer: bool) {
        self.inner.set_observer(observer);
    }

    /// Wire-level observation records taken while the tap was enabled.
    pub fn observations(&self) -> &[wakurln_gossipsub::Observation] {
        self.inner.observations()
    }

    /// Access to the underlying GossipSub state (mesh, scores, validator).
    pub fn gossipsub(&self) -> &GossipsubNode<V> {
        &self.inner
    }

    /// Mutable access to the underlying GossipSub node.
    pub fn gossipsub_mut(&mut self) -> &mut GossipsubNode<V> {
        &mut self.inner
    }

    /// The validator (e.g. the RLN pipeline state).
    pub fn validator(&self) -> &V {
        self.inner.validator()
    }

    /// Mutable validator access.
    pub fn validator_mut(&mut self) -> &mut V {
        self.inner.validator_mut()
    }
}

impl<V: Validator> Node for WakuRelayNode<V> {
    type Message = Rpc;

    fn on_start(&mut self, ctx: &mut Context<Rpc>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Rpc>, from: NodeId, msg: Rpc) {
        self.inner.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<Rpc>, token: u64) {
        self.inner.on_timer(ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakurln_gossipsub::AcceptAll;
    use wakurln_netsim::{topology, Network, UniformLatency};

    fn network(n: usize, seed: u64) -> Network<WakuRelayNode<AcceptAll>> {
        let adjacency = topology::random_regular(n, 5, seed);
        let mut net = Network::new(
            UniformLatency {
                min_ms: 10,
                max_ms: 40,
            },
            seed,
        );
        for peers in adjacency {
            net.add_node(WakuRelayNode::with_defaults(peers, AcceptAll));
        }
        net
    }

    #[test]
    fn waku_messages_flow_end_to_end() {
        let mut net = network(25, 1);
        net.run_until(8_000);
        let msg = WakuMessage::new("/app/1/chat/proto", b"gm, anonymously".to_vec());
        net.invoke(NodeId(3), |node, ctx| node.publish(ctx, &msg));
        net.run_until(20_000);
        let mut got = 0;
        for i in 0..25 {
            if i == 3 {
                continue;
            }
            let deliveries = net.node(NodeId(i)).waku_deliveries();
            if deliveries.iter().any(|(m, _)| {
                m.payload == b"gm, anonymously" && m.content_topic == "/app/1/chat/proto"
            }) {
                got += 1;
            }
        }
        assert!(got >= 23, "delivered to {got}/24");
    }

    #[test]
    fn content_topics_multiplex_over_one_pubsub_topic() {
        let mut net = network(10, 2);
        net.run_until(8_000);
        net.invoke(NodeId(0), |node, ctx| {
            node.publish(ctx, &WakuMessage::new("/app/a", b"1".to_vec()));
            node.publish(ctx, &WakuMessage::new("/app/b", b"2".to_vec()))
        });
        net.run_until(20_000);
        let deliveries = net.node(NodeId(5)).waku_deliveries();
        let topics: Vec<&str> = deliveries
            .iter()
            .map(|(m, _)| m.content_topic.as_str())
            .collect();
        assert!(topics.contains(&"/app/a"));
        assert!(topics.contains(&"/app/b"));
    }

    #[test]
    fn duplicate_publish_is_deduplicated_network_wide() {
        let mut net = network(10, 3);
        net.run_until(8_000);
        let msg = WakuMessage::new("/app", b"same-bytes".to_vec());
        // two different peers publish identical bytes — content addressing
        // collapses them
        net.invoke(NodeId(0), |node, ctx| node.publish(ctx, &msg));
        net.invoke(NodeId(1), |node, ctx| node.publish(ctx, &msg));
        net.run_until(20_000);
        for i in 2..10 {
            let n = net
                .node(NodeId(i))
                .waku_deliveries()
                .iter()
                .filter(|(m, _)| m.payload == b"same-bytes")
                .count();
            assert!(n <= 1, "node {i} saw {n} copies");
        }
    }
}
