//! The anonymized WAKU message envelope and its wire codec.

use serde::{Deserialize, Serialize};

/// A WAKU-RELAY message.
///
/// Deliberately minimal: a payload and a *content topic* (application-level
/// routing key within a pub/sub topic). There is **no sender identifier,
//  no signature, and no per-sender sequence number** — this is WAKU-RELAY's
/// anonymization of protocol messages (§I: sender anonymity "is protected
/// by anonymizing protocol messages i.e., removing personally identifiable
/// information (PII) that binds a message to its owner").
///
/// The `timestamp` is coarse (seconds) and optional; publishers that care
/// about timing correlation can omit it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakuMessage {
    /// Application payload (for WAKU-RLN-RELAY: an encoded RLN signal).
    pub payload: Vec<u8>,
    /// Application content topic, e.g. `"/app/1/chat/proto"`.
    pub content_topic: String,
    /// Optional coarse timestamp (UNIX seconds).
    pub timestamp: Option<u64>,
}

/// Errors from [`WakuMessage::decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced field length.
    Truncated,
    /// The content topic is not valid UTF-8.
    BadTopic,
    /// Trailing bytes after the message.
    TrailingBytes,
    /// A length field exceeds sane bounds.
    LengthOverflow,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadTopic => write!(f, "content topic is not valid utf-8"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after message"),
            CodecError::LengthOverflow => write!(f, "length field exceeds limits"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum accepted field length (16 MiB) — guards decoders against
/// adversarial length fields.
const MAX_FIELD: usize = 16 * 1024 * 1024;

impl WakuMessage {
    /// Creates a message without a timestamp.
    pub fn new(content_topic: impl Into<String>, payload: Vec<u8>) -> WakuMessage {
        WakuMessage {
            payload,
            content_topic: content_topic.into(),
            timestamp: None,
        }
    }

    /// Serializes to the wire format:
    /// `topic_len:u32 | topic | ts_flag:u8 [| ts:u64] | payload_len:u32 | payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.content_topic.len() + self.payload.len());
        out.extend_from_slice(&(self.content_topic.len() as u32).to_le_bytes());
        out.extend_from_slice(self.content_topic.as_bytes());
        match self.timestamp {
            Some(ts) => {
                out.push(1);
                out.extend_from_slice(&ts.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses the wire format produced by [`WakuMessage::encode`].
    ///
    /// # Errors
    ///
    /// Any malformed input yields a [`CodecError`]; decoding never panics.
    pub fn decode(bytes: &[u8]) -> Result<WakuMessage, CodecError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let topic_len = cur.read_u32()? as usize;
        if topic_len > MAX_FIELD {
            return Err(CodecError::LengthOverflow);
        }
        let topic_bytes = cur.read_slice(topic_len)?;
        let content_topic =
            String::from_utf8(topic_bytes.to_vec()).map_err(|_| CodecError::BadTopic)?;
        let ts_flag = cur.read_u8()?;
        let timestamp = match ts_flag {
            0 => None,
            _ => Some(cur.read_u64()?),
        };
        let payload_len = cur.read_u32()? as usize;
        if payload_len > MAX_FIELD {
            return Err(CodecError::LengthOverflow);
        }
        let payload = cur.read_slice(payload_len)?.to_vec();
        if cur.pos != bytes.len() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(WakuMessage {
            payload,
            content_topic,
            timestamp,
        })
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn read_slice(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(CodecError::LengthOverflow)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.read_slice(1)?[0])
    }
    fn read_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.read_slice(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }
    fn read_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.read_slice(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_with_and_without_timestamp() {
        let mut m = WakuMessage::new("/app/1/chat/proto", b"hello".to_vec());
        assert_eq!(WakuMessage::decode(&m.encode()).unwrap(), m);
        m.timestamp = Some(1_654_041_600);
        assert_eq!(WakuMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn empty_payload_and_topic() {
        let m = WakuMessage::new("", vec![]);
        assert_eq!(WakuMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn truncation_detected() {
        let enc = WakuMessage::new("t", b"data".to_vec()).encode();
        for cut in 0..enc.len() {
            assert!(
                WakuMessage::decode(&enc[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut enc = WakuMessage::new("t", b"data".to_vec()).encode();
        enc.push(0);
        assert_eq!(WakuMessage::decode(&enc), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn hostile_length_fields_rejected() {
        // topic length claims 4 GiB
        let mut enc = Vec::new();
        enc.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(WakuMessage::decode(&enc), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn envelope_carries_no_sender_fields() {
        // structural anonymity check: the encoding of two identical
        // messages from "different senders" is byte-identical — there is
        // nowhere for PII to hide.
        let a = WakuMessage::new("/t", b"same".to_vec()).encode();
        let b = WakuMessage::new("/t", b"same".to_vec()).encode();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(topic in ".{0,40}", payload in proptest::collection::vec(any::<u8>(), 0..256),
                          ts in proptest::option::of(any::<u64>())) {
            let m = WakuMessage { payload, content_topic: topic, timestamp: ts };
            prop_assert_eq!(WakuMessage::decode(&m.encode()).unwrap(), m);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = WakuMessage::decode(&bytes);
        }
    }
}
