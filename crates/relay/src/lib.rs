//! # wakurln-relay
//!
//! WAKU-RELAY: the anonymous gossip-based pub/sub protocol that
//! WAKU-RLN-RELAY extends (paper §I). Receiver anonymity comes from the
//! gossip routing itself; sender anonymity from the PII-free
//! [`WakuMessage`] envelope — no signatures, no sender ids, no sequence
//! numbers.
//!
//! * [`message`] — the anonymized envelope and its wire codec,
//! * [`node`] — the relay peer over GossipSub with pluggable validation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod message;
pub mod node;

pub use message::{CodecError, WakuMessage};
pub use node::{WakuRelayNode, DEFAULT_PUBSUB_TOPIC};
