//! Fork–join helpers backing the `parallel` feature.
//!
//! The build environment carries no external crates, so instead of rayon
//! this is a minimal scoped-thread fan-out with the same data-parallel
//! shape: split a slice into per-worker chunks, run a closure on each,
//! collect results in order. With the `parallel` feature disabled (or for
//! small inputs) everything runs inline on the caller's thread, so callers
//! never need to special-case.

/// Number of workers a fan-out may use.
pub fn max_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Maps `f` over disjoint chunks of `items` on scoped worker threads,
/// returning per-chunk results in input order.
///
/// `f` receives `(offset_of_chunk, chunk)` so callers can reconstruct
/// global indices. Inputs smaller than `min_per_thread` per worker shrink
/// the worker count, down to an inline call on the current thread.
pub fn par_chunk_map<T, R, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let workers = max_threads()
        .min(items.len() / min_per_thread.max(1))
        .max(1);
    if workers <= 1 {
        return vec![f(0, items)];
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || f(i * chunk_len, chunk)))
            .collect();
        handles
            .into_iter()
            // lint:allow(panic-path, reason = "a panicked worker must propagate: swallowing it would silently corrupt the proof batch")
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Maps `f` over `items` element-wise with worker-thread fan-out,
/// preserving order.
pub fn par_map<T, R, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_chunk_map(items, min_per_thread, |_, chunk| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, 1, |x| x * 2);
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunk_map_offsets_are_global() {
        let items: Vec<u64> = (0..100).collect();
        let checks = par_chunk_map(&items, 1, |offset, chunk| {
            chunk
                .iter()
                .enumerate()
                .all(|(i, v)| *v == (offset + i) as u64)
        });
        assert!(checks.into_iter().all(|ok| ok));
    }

    #[test]
    fn small_inputs_run_inline() {
        let items = [1u64];
        assert_eq!(par_map(&items, 64, |x| x + 1), vec![2]);
        let empty: [u64; 0] = [];
        assert_eq!(par_map(&empty, 1, |x| *x), Vec::<u64>::new());
    }
}
