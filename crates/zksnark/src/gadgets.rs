//! Circuit gadgets: reusable constraint-generating building blocks.
//!
//! Each gadget simultaneously computes values (witness synthesis) and emits
//! the constraints that pin those values down. The Poseidon gadget shares
//! its parameters with the native implementation in
//! [`wakurln_crypto::poseidon`], so in-circuit and out-of-circuit hashes
//! agree by construction — a property the tests assert.

use crate::r1cs::{ConstraintSystem, LinearCombination, Variable};
use wakurln_crypto::field::Fr;
use wakurln_crypto::poseidon::{self, PoseidonParams, FULL_ROUNDS};

/// A value in the circuit: a linear combination plus its current assignment.
///
/// Keeping values as linear combinations lets additions and
/// constant-multiplications stay constraint-free; only genuine
/// multiplications (and the Poseidon S-box) allocate.
#[derive(Clone, Debug)]
pub struct Num {
    /// Symbolic form.
    pub lc: LinearCombination,
    /// Assigned value.
    pub value: Fr,
}

impl Num {
    /// Allocates a fresh witness variable.
    pub fn alloc_witness(cs: &mut ConstraintSystem, value: Fr) -> Num {
        let var = cs.alloc_witness(value);
        Num {
            lc: LinearCombination::from_var(var),
            value,
        }
    }

    /// Allocates a fresh public-input variable.
    pub fn alloc_instance(cs: &mut ConstraintSystem, value: Fr) -> Num {
        let var = cs.alloc_instance(value);
        Num {
            lc: LinearCombination::from_var(var),
            value,
        }
    }

    /// The constant `c` (no allocation).
    pub fn constant(c: Fr) -> Num {
        Num {
            lc: LinearCombination::constant(c),
            value: c,
        }
    }

    /// Constraint-free addition.
    pub fn add(&self, other: &Num) -> Num {
        Num {
            lc: self.lc.clone().add_scaled(&other.lc, Fr::ONE),
            value: self.value + other.value,
        }
    }

    /// Constraint-free addition of a constant.
    pub fn add_constant(&self, c: Fr) -> Num {
        Num {
            lc: self.lc.clone().add_term(Variable::One, c),
            value: self.value + c,
        }
    }

    /// Constraint-free multiplication by a constant.
    pub fn scale(&self, c: Fr) -> Num {
        Num {
            lc: LinearCombination::zero().add_scaled(&self.lc, c),
            value: self.value * c,
        }
    }

    /// Multiplication: allocates the product and one constraint.
    pub fn mul(&self, cs: &mut ConstraintSystem, other: &Num, label: &'static str) -> Num {
        let value = self.value * other.value;
        let var = cs.alloc_witness(value);
        cs.enforce(
            label,
            self.lc.clone(),
            other.lc.clone(),
            LinearCombination::from_var(var),
        );
        Num {
            lc: LinearCombination::from_var(var),
            value,
        }
    }

    /// Enforces equality with another `Num` (one constraint).
    pub fn enforce_equal(&self, cs: &mut ConstraintSystem, other: &Num, label: &'static str) {
        cs.enforce_equal(label, self.lc.clone(), other.lc.clone());
    }
}

/// A wire constrained to 0 or 1.
#[derive(Clone, Debug)]
pub struct Boolean {
    /// The underlying number (value is 0 or 1).
    pub num: Num,
}

impl Boolean {
    /// Allocates a witness bit and enforces `b · (1 − b) = 0`.
    pub fn alloc_witness(cs: &mut ConstraintSystem, bit: bool) -> Boolean {
        let value = Fr::from(bit);
        let var = cs.alloc_witness(value);
        let lc = LinearCombination::from_var(var);
        let one_minus = LinearCombination::constant(Fr::ONE).add_term(var, -Fr::ONE);
        cs.enforce("boolean", lc.clone(), one_minus, LinearCombination::zero());
        Boolean {
            num: Num { lc, value },
        }
    }

    /// The assigned bit.
    pub fn value(&self) -> bool {
        self.num.value.is_one()
    }
}

/// Conditionally swaps `(a, b) → (b, a)` when `bit` is 1.
///
/// Used for Merkle-path ordering: the path element is hashed on the left or
/// right depending on the leaf-index bit. Costs 2 constraints.
pub fn conditional_swap(cs: &mut ConstraintSystem, a: &Num, b: &Num, bit: &Boolean) -> (Num, Num) {
    // left  = a + bit·(b − a)
    // right = b + bit·(a − b)
    let b_minus_a = Num {
        lc: b.lc.clone().add_scaled(&a.lc, -Fr::ONE),
        value: b.value - a.value,
    };
    let delta = bit.num.mul(cs, &b_minus_a, "swap/delta");
    let left = a.add(&delta);
    let right = Num {
        lc: b.lc.clone().add_scaled(&delta.lc, -Fr::ONE),
        value: b.value - delta.value,
    };
    (left, right)
}

/// The Poseidon x⁵ S-box on a `Num`: 3 constraints.
fn sbox(cs: &mut ConstraintSystem, x: &Num) -> Num {
    let x2 = x.mul(cs, x, "poseidon/x2");
    let x4 = x2.mul(cs, &x2, "poseidon/x4");
    x4.mul(cs, x, "poseidon/x5")
}

/// In-circuit Poseidon permutation, mirroring
/// [`wakurln_crypto::poseidon::permute_with`] term for term.
pub fn poseidon_permutation(
    cs: &mut ConstraintSystem,
    params: &PoseidonParams,
    state: &[Num],
) -> Vec<Num> {
    assert_eq!(state.len(), params.t, "state width mismatch");
    let t = params.t;
    let half_full = FULL_ROUNDS / 2;
    let total = params.total_rounds();
    let mut state: Vec<Num> = state.to_vec();
    for round in 0..total {
        // AddRoundKey (free)
        for (i, s) in state.iter_mut().enumerate() {
            *s = s.add_constant(params.round_constants[round * t + i]);
        }
        // S-box
        let is_full = round < half_full || round >= half_full + params.rounds_p;
        if is_full {
            for s in state.iter_mut() {
                *s = sbox(cs, s);
            }
        } else {
            state[0] = sbox(cs, &state[0]);
        }
        // MDS (free: linear). Reduce each output combination so that
        // un-sboxed lanes in partial rounds don't grow exponentially.
        let mut next = Vec::with_capacity(t);
        for row in params.mds.iter() {
            let mut acc = Num::constant(Fr::ZERO);
            for (j, s) in state.iter().enumerate() {
                acc = acc.add(&s.scale(row[j]));
            }
            acc.lc = acc.lc.reduce();
            next.push(acc);
        }
        state = next;
    }
    state
}

/// In-circuit `H(a)` (width-2 Poseidon compression), matching
/// [`wakurln_crypto::poseidon::hash1`].
pub fn poseidon_hash1(cs: &mut ConstraintSystem, a: &Num) -> Num {
    let params = poseidon::params(2);
    let state = vec![Num::constant(Fr::ZERO), a.clone()];
    let out = poseidon_permutation(cs, params, &state);
    // lint:allow(panic-path, reason = "poseidon_permutation returns the full width-2 state; the first element exists")
    out.into_iter().next().expect("width-2 output")
}

/// In-circuit `H(a, b)` (width-3 Poseidon compression), matching
/// [`wakurln_crypto::poseidon::hash2`].
pub fn poseidon_hash2(cs: &mut ConstraintSystem, a: &Num, b: &Num) -> Num {
    let params = poseidon::params(3);
    let state = vec![Num::constant(Fr::ZERO), a.clone(), b.clone()];
    let out = poseidon_permutation(cs, params, &state);
    // lint:allow(panic-path, reason = "poseidon_permutation returns the full width-3 state; the first element exists")
    out.into_iter().next().expect("width-3 output")
}

/// In-circuit Merkle root computation from a leaf, index bits and siblings.
///
/// Returns the root `Num`. Costs `depth · (2 + |hash2|)` constraints plus
/// one boolean constraint per level.
pub fn merkle_root(
    cs: &mut ConstraintSystem,
    leaf: &Num,
    index_bits: &[Boolean],
    siblings: &[Num],
) -> Num {
    assert_eq!(index_bits.len(), siblings.len(), "path length mismatch");
    let mut cur = leaf.clone();
    for (bit, sibling) in index_bits.iter().zip(siblings.iter()) {
        let (left, right) = conditional_swap(cs, &cur, sibling, bit);
        cur = poseidon_hash2(cs, &left, &right);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakurln_crypto::merkle::FullMerkleTree;

    #[test]
    fn num_linear_ops_are_constraint_free() {
        let mut cs = ConstraintSystem::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_u64(3));
        let b = Num::alloc_witness(&mut cs, Fr::from_u64(4));
        let c = a.add(&b).scale(Fr::from_u64(2)).add_constant(Fr::ONE);
        assert_eq!(c.value, Fr::from_u64(15));
        assert_eq!(cs.num_constraints(), 0);
        assert_eq!(cs.eval(&c.lc), Fr::from_u64(15));
    }

    #[test]
    fn mul_allocates_one_constraint() {
        let mut cs = ConstraintSystem::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_u64(6));
        let b = Num::alloc_witness(&mut cs, Fr::from_u64(7));
        let p = a.mul(&mut cs, &b, "p");
        assert_eq!(p.value, Fr::from_u64(42));
        assert_eq!(cs.num_constraints(), 1);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn boolean_constraint_rejects_non_bits() {
        let mut cs = ConstraintSystem::new();
        let _ = Boolean::alloc_witness(&mut cs, true);
        assert!(cs.is_satisfied().is_ok());
        // forge a non-bit by hand
        let mut cs2 = ConstraintSystem::new();
        let var = cs2.alloc_witness(Fr::from_u64(2));
        let lc = LinearCombination::from_var(var);
        let one_minus = LinearCombination::constant(Fr::ONE).add_term(var, -Fr::ONE);
        cs2.enforce("boolean", lc, one_minus, LinearCombination::zero());
        assert!(cs2.is_satisfied().is_err());
    }

    #[test]
    fn conditional_swap_both_directions() {
        for bit in [false, true] {
            let mut cs = ConstraintSystem::new();
            let a = Num::alloc_witness(&mut cs, Fr::from_u64(10));
            let b = Num::alloc_witness(&mut cs, Fr::from_u64(20));
            let bool_bit = Boolean::alloc_witness(&mut cs, bit);
            let (l, r) = conditional_swap(&mut cs, &a, &b, &bool_bit);
            if bit {
                assert_eq!((l.value, r.value), (Fr::from_u64(20), Fr::from_u64(10)));
            } else {
                assert_eq!((l.value, r.value), (Fr::from_u64(10), Fr::from_u64(20)));
            }
            assert!(cs.is_satisfied().is_ok());
            assert_eq!(cs.eval(&l.lc), l.value);
            assert_eq!(cs.eval(&r.lc), r.value);
        }
    }

    #[test]
    fn poseidon_gadget_matches_native_hash1() {
        let mut cs = ConstraintSystem::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_u64(42));
        let h = poseidon_hash1(&mut cs, &a);
        assert_eq!(h.value, poseidon::hash1(Fr::from_u64(42)));
        assert!(cs.is_satisfied().is_ok());
        assert_eq!(cs.eval(&h.lc), h.value);
    }

    #[test]
    fn poseidon_gadget_matches_native_hash2() {
        let mut cs = ConstraintSystem::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_u64(1));
        let b = Num::alloc_witness(&mut cs, Fr::from_u64(2));
        let h = poseidon_hash2(&mut cs, &a, &b);
        assert_eq!(h.value, poseidon::hash2(Fr::from_u64(1), Fr::from_u64(2)));
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn poseidon_constraint_count_is_as_designed() {
        // width 3: 8 full rounds × 3 lanes + 57 partial rounds, 3 constraints
        // per S-box
        let mut cs = ConstraintSystem::new();
        let a = Num::alloc_witness(&mut cs, Fr::ONE);
        let b = Num::alloc_witness(&mut cs, Fr::ONE);
        let _ = poseidon_hash2(&mut cs, &a, &b);
        let expected = (8 * 3 + 57) * 3;
        assert_eq!(cs.num_constraints(), expected);
    }

    #[test]
    fn merkle_gadget_matches_native_tree() {
        let depth = 8;
        let mut tree = FullMerkleTree::new(depth).unwrap();
        for i in 0..10u64 {
            tree.append(Fr::from_u64(1000 + i)).unwrap();
        }
        let index = 6u64;
        let leaf_val = tree.leaf(index).unwrap();
        let proof = tree.proof(index).unwrap();

        let mut cs = ConstraintSystem::new();
        let leaf = Num::alloc_witness(&mut cs, leaf_val);
        let bits: Vec<Boolean> = (0..depth)
            .map(|l| Boolean::alloc_witness(&mut cs, (index >> l) & 1 == 1))
            .collect();
        let siblings: Vec<Num> = proof
            .siblings
            .iter()
            .map(|s| Num::alloc_witness(&mut cs, *s))
            .collect();
        let root = merkle_root(&mut cs, &leaf, &bits, &siblings);
        assert_eq!(root.value, tree.root());
        assert!(cs.is_satisfied().is_ok());
        assert_eq!(cs.eval(&root.lc), tree.root());
    }

    #[test]
    fn merkle_gadget_detects_wrong_sibling() {
        let depth = 4;
        let mut tree = FullMerkleTree::new(depth).unwrap();
        tree.append(Fr::from_u64(5)).unwrap();
        let proof = tree.proof(0).unwrap();

        let mut cs = ConstraintSystem::new();
        let leaf = Num::alloc_witness(&mut cs, Fr::from_u64(5));
        let bits: Vec<Boolean> = (0..depth)
            .map(|_| Boolean::alloc_witness(&mut cs, false))
            .collect();
        let mut siblings: Vec<Num> = proof
            .siblings
            .iter()
            .map(|s| Num::alloc_witness(&mut cs, *s))
            .collect();
        siblings[1] = Num::alloc_witness(&mut cs, Fr::from_u64(666));
        let root = merkle_root(&mut cs, &leaf, &bits, &siblings);
        // constraints are satisfied (the witness is self-consistent)…
        assert!(cs.is_satisfied().is_ok());
        // …but the computed root no longer matches the tree
        assert_ne!(root.value, tree.root());
    }
}
