//! Rank-1 Constraint System (R1CS).
//!
//! The RLN statement ("my key is in the membership tree, and the nullifier
//! and secret share attached to this message are correctly derived from my
//! key and the epoch") is expressed as an R1CS: a list of constraints
//! `⟨A_i, z⟩ · ⟨B_i, z⟩ = ⟨C_i, z⟩` over the variable vector
//! `z = (1, instance…, witness…)`.
//!
//! This is the same intermediate representation Groth16 consumes; the
//! simulated backend in [`crate::snark`] proves satisfaction of exactly
//! these constraints.

use serde::{Deserialize, Serialize};
use std::fmt;
use wakurln_crypto::field::Fr;

/// A variable in the constraint system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Variable {
    /// The constant `1` wire.
    One,
    /// The `i`-th public input.
    Instance(usize),
    /// The `i`-th private witness value.
    Witness(usize),
}

/// A sparse linear combination `Σ coeff · var`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearCombination {
    terms: Vec<(Variable, Fr)>,
}

impl LinearCombination {
    /// The empty (zero) combination.
    pub fn zero() -> LinearCombination {
        LinearCombination::default()
    }

    /// A combination holding the constant `c`.
    pub fn constant(c: Fr) -> LinearCombination {
        LinearCombination::zero().add_term(Variable::One, c)
    }

    /// A combination holding a single variable with coefficient 1.
    pub fn from_var(v: Variable) -> LinearCombination {
        LinearCombination::zero().add_term(v, Fr::ONE)
    }

    /// Adds `coeff · var` and returns the extended combination.
    pub fn add_term(mut self, var: Variable, coeff: Fr) -> LinearCombination {
        if !coeff.is_zero() {
            self.terms.push((var, coeff));
        }
        self
    }

    /// Adds another combination scaled by `scale`.
    pub fn add_scaled(mut self, other: &LinearCombination, scale: Fr) -> LinearCombination {
        for (v, c) in &other.terms {
            let sc = *c * scale;
            if !sc.is_zero() {
                self.terms.push((*v, sc));
            }
        }
        self
    }

    /// Merges duplicate variables and drops zero coefficients.
    ///
    /// Linear combinations that are repeatedly folded into each other (as
    /// in the Poseidon MDS layer, where un-sboxed lanes mix every round)
    /// would otherwise grow exponentially in term count; reducing keeps the
    /// term count bounded by the number of distinct variables.
    pub fn reduce(mut self) -> LinearCombination {
        self.terms.sort_unstable_by_key(|(v, _)| *v);
        let mut out: Vec<(Variable, Fr)> = Vec::with_capacity(self.terms.len());
        for (v, c) in self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| !c.is_zero());
        LinearCombination { terms: out }
    }

    /// Number of (variable, coefficient) terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over the terms.
    pub fn iter(&self) -> impl Iterator<Item = &(Variable, Fr)> {
        self.terms.iter()
    }
}

impl From<Variable> for LinearCombination {
    fn from(v: Variable) -> LinearCombination {
        LinearCombination::from_var(v)
    }
}

/// One R1CS constraint `a · b = c` with a diagnostic label.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Constraint {
    /// Left factor.
    pub a: LinearCombination,
    /// Right factor.
    pub b: LinearCombination,
    /// Product.
    pub c: LinearCombination,
    /// Human-readable origin (e.g. `"poseidon/sbox"`).
    pub label: &'static str,
}

/// Error returned when an assignment does not satisfy the system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsatisfiedConstraint {
    /// Index of the violated constraint.
    pub index: usize,
    /// Label of the violated constraint.
    pub label: &'static str,
}

impl fmt::Display for UnsatisfiedConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint #{} ({}) is not satisfied",
            self.index, self.label
        )
    }
}

impl std::error::Error for UnsatisfiedConstraint {}

/// An R1CS instance together with a (possibly partial) assignment.
///
/// The same type serves circuit *synthesis* (building constraints while
/// computing the assignment, prover side) and *shape extraction* (the list
/// of constraints, setup side).
///
/// # Examples
///
/// ```
/// use wakurln_zksnark::r1cs::{ConstraintSystem, LinearCombination};
/// use wakurln_crypto::field::Fr;
///
/// // prove knowledge of x with x * x = 9
/// let mut cs = ConstraintSystem::new();
/// let nine = cs.alloc_instance(Fr::from_u64(9));
/// let x = cs.alloc_witness(Fr::from_u64(3));
/// cs.enforce(
///     "square",
///     LinearCombination::from_var(x),
///     LinearCombination::from_var(x),
///     LinearCombination::from_var(nine),
/// );
/// assert!(cs.is_satisfied().is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ConstraintSystem {
    instance: Vec<Fr>,
    witness: Vec<Fr>,
    constraints: Vec<Constraint>,
}

impl ConstraintSystem {
    /// Creates an empty system.
    pub fn new() -> ConstraintSystem {
        ConstraintSystem::default()
    }

    /// Allocates a public-input variable carrying `value`.
    pub fn alloc_instance(&mut self, value: Fr) -> Variable {
        self.instance.push(value);
        Variable::Instance(self.instance.len() - 1)
    }

    /// Allocates a private witness variable carrying `value`.
    pub fn alloc_witness(&mut self, value: Fr) -> Variable {
        self.witness.push(value);
        Variable::Witness(self.witness.len() - 1)
    }

    /// Adds the constraint `a · b = c`.
    pub fn enforce(
        &mut self,
        label: &'static str,
        a: LinearCombination,
        b: LinearCombination,
        c: LinearCombination,
    ) {
        self.constraints.push(Constraint { a, b, c, label });
    }

    /// Convenience: enforce that two combinations are equal
    /// (`(a - c) · 1 = 0`).
    pub fn enforce_equal(
        &mut self,
        label: &'static str,
        a: LinearCombination,
        c: LinearCombination,
    ) {
        self.enforce(label, a, LinearCombination::constant(Fr::ONE), c);
    }

    /// Evaluates a linear combination under the current assignment.
    pub fn eval(&self, lc: &LinearCombination) -> Fr {
        let mut acc = Fr::ZERO;
        for (v, c) in lc.iter() {
            let val = match v {
                Variable::One => Fr::ONE,
                Variable::Instance(i) => self.instance[*i],
                Variable::Witness(i) => self.witness[*i],
            };
            acc += val * *c;
        }
        acc
    }

    /// Returns the value currently assigned to `v`.
    pub fn value_of(&self, v: Variable) -> Fr {
        match v {
            Variable::One => Fr::ONE,
            Variable::Instance(i) => self.instance[i],
            Variable::Witness(i) => self.witness[i],
        }
    }

    /// Checks every constraint against the assignment.
    ///
    /// # Errors
    ///
    /// Returns the first [`UnsatisfiedConstraint`] encountered.
    pub fn is_satisfied(&self) -> Result<(), UnsatisfiedConstraint> {
        for (index, con) in self.constraints.iter().enumerate() {
            let a = self.eval(&con.a);
            let b = self.eval(&con.b);
            let c = self.eval(&con.c);
            if a * b != c {
                return Err(UnsatisfiedConstraint {
                    index,
                    label: con.label,
                });
            }
        }
        Ok(())
    }

    /// Checks every constraint, fanning evaluation out across worker
    /// threads (the prover's hot path; behaves exactly like
    /// [`ConstraintSystem::is_satisfied`], including reporting the *first*
    /// violated constraint).
    ///
    /// # Errors
    ///
    /// Returns the lowest-index [`UnsatisfiedConstraint`].
    pub fn is_satisfied_par(&self) -> Result<(), UnsatisfiedConstraint> {
        let violations =
            crate::parallel::par_chunk_map(&self.constraints, 2048, |offset, chunk| {
                chunk.iter().enumerate().find_map(|(i, con)| {
                    let a = self.eval(&con.a);
                    let b = self.eval(&con.b);
                    let c = self.eval(&con.c);
                    (a * b != c).then_some(UnsatisfiedConstraint {
                        index: offset + i,
                        label: con.label,
                    })
                })
            });
        match violations.into_iter().flatten().min_by_key(|u| u.index) {
            Some(unsatisfied) => Err(unsatisfied),
            None => Ok(()),
        }
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of public-input variables (excluding the constant one).
    pub fn num_instance(&self) -> usize {
        self.instance.len()
    }

    /// Number of witness variables.
    pub fn num_witness(&self) -> usize {
        self.witness.len()
    }

    /// The public-input assignment.
    pub fn instance_values(&self) -> &[Fr] {
        &self.instance
    }

    /// The witness assignment.
    pub fn witness_values(&self) -> &[Fr] {
        &self.witness
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Serialized size (bytes) of the constraint matrices, used to model
    /// the prover-key size for the E3 storage experiment (a Groth16 proving
    /// key is linear in the number of constraint-matrix entries).
    pub fn matrix_bytes(&self) -> usize {
        // one (variable tag + index + 32-byte coefficient) entry ≈ 40 bytes
        self.constraints
            .iter()
            .map(|c| (c.a.len() + c.b.len() + c.c.len()) * 40)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfied_square() {
        let mut cs = ConstraintSystem::new();
        let nine = cs.alloc_instance(Fr::from_u64(9));
        let x = cs.alloc_witness(Fr::from_u64(3));
        cs.enforce(
            "sq",
            LinearCombination::from_var(x),
            LinearCombination::from_var(x),
            LinearCombination::from_var(nine),
        );
        assert!(cs.is_satisfied().is_ok());
        assert_eq!(cs.num_constraints(), 1);
        assert_eq!(cs.num_instance(), 1);
        assert_eq!(cs.num_witness(), 1);
    }

    #[test]
    fn unsatisfied_reports_label_and_index() {
        let mut cs = ConstraintSystem::new();
        let x = cs.alloc_witness(Fr::from_u64(4));
        cs.enforce(
            "bad-square",
            LinearCombination::from_var(x),
            LinearCombination::from_var(x),
            LinearCombination::constant(Fr::from_u64(9)),
        );
        let err = cs.is_satisfied().unwrap_err();
        assert_eq!(err.index, 0);
        assert_eq!(err.label, "bad-square");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn linear_combination_arithmetic() {
        let mut cs = ConstraintSystem::new();
        let a = cs.alloc_witness(Fr::from_u64(5));
        let b = cs.alloc_witness(Fr::from_u64(7));
        let lc = LinearCombination::zero()
            .add_term(a, Fr::from_u64(2))
            .add_term(b, Fr::from_u64(3))
            .add_term(Variable::One, Fr::from_u64(100));
        assert_eq!(cs.eval(&lc), Fr::from_u64(2 * 5 + 3 * 7 + 100));
    }

    #[test]
    fn add_scaled_combines() {
        let mut cs = ConstraintSystem::new();
        let a = cs.alloc_witness(Fr::from_u64(4));
        let base = LinearCombination::from_var(a);
        let scaled = LinearCombination::constant(Fr::ONE).add_scaled(&base, Fr::from_u64(10));
        assert_eq!(cs.eval(&scaled), Fr::from_u64(41));
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let lc = LinearCombination::zero().add_term(Variable::One, Fr::ZERO);
        assert!(lc.is_empty());
    }

    #[test]
    fn enforce_equal_is_satisfied_only_on_equality() {
        let mut cs = ConstraintSystem::new();
        let a = cs.alloc_witness(Fr::from_u64(5));
        let b = cs.alloc_witness(Fr::from_u64(5));
        cs.enforce_equal(
            "eq",
            LinearCombination::from_var(a),
            LinearCombination::from_var(b),
        );
        assert!(cs.is_satisfied().is_ok());

        let mut cs2 = ConstraintSystem::new();
        let a = cs2.alloc_witness(Fr::from_u64(5));
        let b = cs2.alloc_witness(Fr::from_u64(6));
        cs2.enforce_equal(
            "eq",
            LinearCombination::from_var(a),
            LinearCombination::from_var(b),
        );
        assert!(cs2.is_satisfied().is_err());
    }

    #[test]
    fn matrix_bytes_scales_with_terms() {
        let mut cs = ConstraintSystem::new();
        let x = cs.alloc_witness(Fr::ONE);
        cs.enforce(
            "t",
            LinearCombination::from_var(x),
            LinearCombination::from_var(x),
            LinearCombination::from_var(x),
        );
        assert_eq!(cs.matrix_bytes(), 3 * 40);
    }
}
