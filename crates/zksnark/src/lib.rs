//! # wakurln-zksnark
//!
//! The zero-knowledge layer of the WAKU-RLN-RELAY reproduction: a real
//! R1CS constraint system and the actual RLN circuit (Poseidon hashing,
//! Merkle membership, Shamir-share correctness), proved and verified by a
//! simulated Groth16-shaped backend ([`snark::SimSnark`]).
//!
//! * [`r1cs`] — constraint system and linear combinations,
//! * [`gadgets`] — Poseidon / Merkle / boolean circuit gadgets,
//! * [`circuit`] — the RLN statement from the paper's §II,
//! * [`snark`] — setup / prove / verify with constant-size proofs.
//!
//! See DESIGN.md §2 for exactly which SNARK properties are real versus
//! simulated.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod circuit;
pub mod gadgets;
pub mod parallel;
pub mod r1cs;
pub mod snark;

pub use circuit::{RlnCircuit, RlnPublicInputs, RlnWitness};
pub use snark::{Proof, ProveError, ProvingKey, SimSnark, VerifyingKey};
