//! The RLN circuit.
//!
//! Public inputs (the order is part of the proof binding):
//!
//! 1. `root` — membership tree root,
//! 2. `external_nullifier` — the epoch `∅`,
//! 3. `x` — Shamir evaluation point, `x = H(m)`,
//! 4. `y` — Shamir share value, `y = sk + a1·x`,
//! 5. `internal_nullifier` — `φ = H(a1)` with `a1 = H(sk, ∅)`.
//!
//! Witness: the member secret `sk`, the leaf index, and the Merkle
//! authentication path of `pk = H(sk)`.
//!
//! The circuit enforces exactly the statement from the paper's §II: the
//! signer's key is in the membership tree, and the disclosed share and
//! internal nullifier are honestly derived — so a rate violation *must*
//! leak a usable secret share.

use crate::gadgets::{merkle_root, poseidon_hash1, poseidon_hash2, Boolean, Num};
use crate::r1cs::ConstraintSystem;
use serde::{Deserialize, Serialize};
use wakurln_crypto::field::Fr;
use wakurln_crypto::merkle::MerkleProof;
use wakurln_crypto::poseidon;

/// The public inputs of an RLN proof, in canonical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RlnPublicInputs {
    /// Membership tree root the prover claims membership under.
    pub root: Fr,
    /// External nullifier (the epoch).
    pub external_nullifier: Fr,
    /// Shamir evaluation point `x = H(m)`.
    pub x: Fr,
    /// Shamir share value `y = sk + H(sk, ∅)·x`.
    pub y: Fr,
    /// Internal nullifier `φ = H(H(sk, ∅))`.
    pub internal_nullifier: Fr,
}

impl RlnPublicInputs {
    /// Flattens to the canonical field-element vector (binding order).
    pub fn to_vec(&self) -> Vec<Fr> {
        vec![
            self.root,
            self.external_nullifier,
            self.x,
            self.y,
            self.internal_nullifier,
        ]
    }
}

/// The private witness of an RLN proof.
#[derive(Clone, Debug)]
pub struct RlnWitness {
    /// The member's secret key.
    pub sk: Fr,
    /// Index of `pk = H(sk)` in the membership tree.
    pub leaf_index: u64,
    /// Sibling hashes of the authentication path (leaf level first).
    pub path_siblings: Vec<Fr>,
}

impl RlnWitness {
    /// Builds a witness from a secret key and a Merkle proof for `H(sk)`.
    pub fn new(sk: Fr, proof: &MerkleProof) -> RlnWitness {
        RlnWitness {
            sk,
            leaf_index: proof.index,
            path_siblings: proof.siblings.clone(),
        }
    }
}

/// The RLN circuit for a fixed membership-tree depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RlnCircuit {
    depth: usize,
}

impl RlnCircuit {
    /// Circuit for trees of the given depth.
    pub fn new(depth: usize) -> RlnCircuit {
        RlnCircuit { depth }
    }

    /// The tree depth this circuit proves membership for.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Computes the honest public inputs for a message: the native
    /// (out-of-circuit) counterpart of synthesis, used by signal builders.
    ///
    /// Returns `(public_inputs, a1)` where `a1 = H(sk, ∅)` is the
    /// epoch-bound Shamir slope.
    pub fn derive_public(
        sk: Fr,
        root: Fr,
        external_nullifier: Fr,
        message_hash: Fr,
    ) -> (RlnPublicInputs, Fr) {
        let a1 = poseidon::hash2(sk, external_nullifier);
        let y = sk + a1 * message_hash;
        let internal_nullifier = poseidon::hash1(a1);
        (
            RlnPublicInputs {
                root,
                external_nullifier,
                x: message_hash,
                y,
                internal_nullifier,
            },
            a1,
        )
    }

    /// Synthesizes the circuit into `cs` under the given assignment.
    ///
    /// The constraints are emitted unconditionally; whether the assignment
    /// satisfies them is checked by the caller (the prover refuses to
    /// produce proofs for unsatisfied systems).
    pub fn synthesize(
        &self,
        cs: &mut ConstraintSystem,
        public: &RlnPublicInputs,
        witness: &RlnWitness,
    ) {
        // public inputs, canonical order
        let root = Num::alloc_instance(cs, public.root);
        let external_nullifier = Num::alloc_instance(cs, public.external_nullifier);
        let x = Num::alloc_instance(cs, public.x);
        let y = Num::alloc_instance(cs, public.y);
        let internal_nullifier = Num::alloc_instance(cs, public.internal_nullifier);

        // witness
        let sk = Num::alloc_witness(cs, witness.sk);
        let bits: Vec<Boolean> = (0..self.depth)
            .map(|l| Boolean::alloc_witness(cs, (witness.leaf_index >> l) & 1 == 1))
            .collect();
        let siblings: Vec<Num> = witness
            .path_siblings
            .iter()
            .map(|s| Num::alloc_witness(cs, *s))
            .collect();

        // membership: pk = H(sk) is in the tree under `root`
        let pk = poseidon_hash1(cs, &sk);
        let computed_root = merkle_root(cs, &pk, &bits, &siblings);
        computed_root.enforce_equal(cs, &root, "rln/root");

        // share correctness: a1 = H(sk, ∅); y = sk + a1·x
        let a1 = poseidon_hash2(cs, &sk, &external_nullifier);
        let a1x = a1.mul(cs, &x, "rln/a1x");
        let expected_y = sk.add(&a1x);
        expected_y.enforce_equal(cs, &y, "rln/share");

        // nullifier correctness: φ = H(a1)
        let phi = poseidon_hash1(cs, &a1);
        phi.enforce_equal(cs, &internal_nullifier, "rln/nullifier");
    }

    /// Number of constraints this circuit emits (independent of the
    /// assignment).
    pub fn constraint_count(&self) -> usize {
        let mut cs = ConstraintSystem::new();
        let public = RlnPublicInputs {
            root: Fr::ZERO,
            external_nullifier: Fr::ZERO,
            x: Fr::ZERO,
            y: Fr::ZERO,
            internal_nullifier: Fr::ZERO,
        };
        let witness = RlnWitness {
            sk: Fr::ZERO,
            leaf_index: 0,
            path_siblings: vec![Fr::ZERO; self.depth],
        };
        self.synthesize(&mut cs, &public, &witness);
        cs.num_constraints()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakurln_crypto::merkle::FullMerkleTree;

    fn setup(depth: usize) -> (Fr, FullMerkleTree, u64) {
        let sk = Fr::from_u64(123_456);
        let pk = poseidon::hash1(sk);
        let mut tree = FullMerkleTree::new(depth).unwrap();
        tree.append(Fr::from_u64(7777)).unwrap(); // someone else
        let index = tree.append(pk).unwrap();
        tree.append(Fr::from_u64(8888)).unwrap();
        (sk, tree, index)
    }

    #[test]
    fn honest_witness_satisfies() {
        let depth = 10;
        let (sk, tree, index) = setup(depth);
        let epoch = Fr::from_u64(1_654_041_600);
        let msg_hash = poseidon::hash_bytes_to_field(b"hello waku");
        let (public, _a1) = RlnCircuit::derive_public(sk, tree.root(), epoch, msg_hash);
        let witness = RlnWitness::new(sk, &tree.proof(index).unwrap());

        let mut cs = ConstraintSystem::new();
        RlnCircuit::new(depth).synthesize(&mut cs, &public, &witness);
        assert!(cs.is_satisfied().is_ok());
        assert_eq!(cs.num_instance(), 5);
    }

    #[test]
    fn wrong_secret_fails_root_constraint() {
        let depth = 8;
        let (sk, tree, index) = setup(depth);
        let epoch = Fr::from_u64(99);
        let msg_hash = Fr::from_u64(555);
        // derive public inputs for the wrong key: all hashes self-consistent
        // except membership
        let intruder_sk = sk + Fr::ONE;
        let (public, _) = RlnCircuit::derive_public(intruder_sk, tree.root(), epoch, msg_hash);
        let witness = RlnWitness::new(intruder_sk, &tree.proof(index).unwrap());

        let mut cs = ConstraintSystem::new();
        RlnCircuit::new(depth).synthesize(&mut cs, &public, &witness);
        let err = cs.is_satisfied().unwrap_err();
        assert_eq!(err.label, "rln/root");
    }

    #[test]
    fn tampered_share_fails_share_constraint() {
        let depth = 8;
        let (sk, tree, index) = setup(depth);
        let epoch = Fr::from_u64(99);
        let msg_hash = Fr::from_u64(555);
        let (mut public, _) = RlnCircuit::derive_public(sk, tree.root(), epoch, msg_hash);
        public.y += Fr::ONE; // lie about the share
        let witness = RlnWitness::new(sk, &tree.proof(index).unwrap());

        let mut cs = ConstraintSystem::new();
        RlnCircuit::new(depth).synthesize(&mut cs, &public, &witness);
        let err = cs.is_satisfied().unwrap_err();
        assert_eq!(err.label, "rln/share");
    }

    #[test]
    fn tampered_nullifier_fails_nullifier_constraint() {
        let depth = 8;
        let (sk, tree, index) = setup(depth);
        let epoch = Fr::from_u64(99);
        let msg_hash = Fr::from_u64(555);
        let (mut public, _) = RlnCircuit::derive_public(sk, tree.root(), epoch, msg_hash);
        public.internal_nullifier += Fr::ONE;
        let witness = RlnWitness::new(sk, &tree.proof(index).unwrap());

        let mut cs = ConstraintSystem::new();
        RlnCircuit::new(depth).synthesize(&mut cs, &public, &witness);
        let err = cs.is_satisfied().unwrap_err();
        assert_eq!(err.label, "rln/nullifier");
    }

    #[test]
    fn constraint_count_grows_linearly_with_depth() {
        let c10 = RlnCircuit::new(10).constraint_count();
        let c20 = RlnCircuit::new(20).constraint_count();
        let c30 = RlnCircuit::new(30).constraint_count();
        assert!(c20 > c10 && c30 > c20);
        // linear: equal increments per 10 levels
        assert_eq!(c20 - c10, c30 - c20);
    }

    #[test]
    fn public_inputs_to_vec_order() {
        let p = RlnPublicInputs {
            root: Fr::from_u64(1),
            external_nullifier: Fr::from_u64(2),
            x: Fr::from_u64(3),
            y: Fr::from_u64(4),
            internal_nullifier: Fr::from_u64(5),
        };
        let v = p.to_vec();
        assert_eq!(v.len(), 5);
        assert_eq!(v[0], Fr::from_u64(1));
        assert_eq!(v[4], Fr::from_u64(5));
    }

    #[test]
    fn same_epoch_same_nullifier_different_messages() {
        // the core anti-spam property at the circuit level
        let depth = 8;
        let (sk, tree, _) = setup(depth);
        let epoch = Fr::from_u64(42);
        let (p1, _) = RlnCircuit::derive_public(sk, tree.root(), epoch, Fr::from_u64(1));
        let (p2, _) = RlnCircuit::derive_public(sk, tree.root(), epoch, Fr::from_u64(2));
        assert_eq!(p1.internal_nullifier, p2.internal_nullifier);
        // different epochs → different nullifiers
        let (p3, _) = RlnCircuit::derive_public(sk, tree.root(), epoch + Fr::ONE, Fr::from_u64(1));
        assert_ne!(p1.internal_nullifier, p3.internal_nullifier);
    }
}
