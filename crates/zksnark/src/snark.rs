//! `SimSnark` — a simulated zkSNARK backend with Groth16-shaped costs.
//!
//! **What is real:** proving synthesizes the full RLN witness and checks
//! every R1CS constraint (work linear in circuit size, exactly like the
//! MSMs of a real Groth16 prover); proofs are constant-size; verification
//! is constant-time and rejects any tampering of proof bytes or public
//! inputs; proofs reveal nothing about the witness (they are a PRF output
//! over fresh prover randomness plus a MAC over public inputs).
//!
//! **What is simulated:** soundness rests on a designated-verifier MAC
//! keyed by a secret shared between the proving and verifying keys (the
//! analogue of a structured reference string), not on pairings. A party
//! holding the proving key could forge. This preserves every property the
//! protocol and the paper's evaluation exercise — see DESIGN.md §2 for the
//! substitution rationale.
//!
//! # Examples
//!
//! ```
//! use wakurln_zksnark::{circuit::{RlnCircuit, RlnWitness}, snark::SimSnark};
//! use wakurln_crypto::{field::Fr, merkle::FullMerkleTree, poseidon};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let depth = 10;
//! let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
//!
//! let sk = Fr::from_u64(42);
//! let mut tree = FullMerkleTree::new(depth)?;
//! let index = tree.append(poseidon::hash1(sk))?;
//!
//! let epoch = Fr::from_u64(1000);
//! let msg_hash = poseidon::hash_bytes_to_field(b"hi");
//! let (public, _) = RlnCircuit::derive_public(sk, tree.root(), epoch, msg_hash);
//! let witness = RlnWitness::new(sk, &tree.proof(index)?);
//!
//! let proof = SimSnark::prove(&pk, &public, &witness, &mut rng).unwrap();
//! assert!(SimSnark::verify(&vk, &public, &proof));
//! # Ok::<(), wakurln_crypto::merkle::MerkleError>(())
//! ```

use crate::circuit::{RlnCircuit, RlnPublicInputs, RlnWitness};
use crate::r1cs::ConstraintSystem;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;
use wakurln_crypto::sha256::Sha256;

/// Size in bytes of a serialized proof: three simulated group elements
/// (compressed G1 + G2 + G1, as in Groth16) — 32 + 64 + 32.
pub const PROOF_BYTES: usize = 128;

/// Size in bytes of the MAC binding the proof to its public inputs.
pub const BINDING_BYTES: usize = 32;

/// Errors returned by [`SimSnark::prove`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveError {
    /// The witness does not satisfy the circuit; carries the violated
    /// constraint's label.
    Unsatisfied(&'static str),
    /// The witness path length does not match the circuit depth.
    DepthMismatch {
        /// Depth the proving key was set up for.
        expected: usize,
        /// Path length supplied in the witness.
        got: usize,
    },
}

impl fmt::Display for ProveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProveError::Unsatisfied(label) => {
                write!(f, "witness does not satisfy constraint '{label}'")
            }
            ProveError::DepthMismatch { expected, got } => {
                write!(
                    f,
                    "witness path depth {got} does not match circuit depth {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ProveError {}

/// The proving key: the circuit plus the SRS secret.
///
/// Its reported size models a Groth16 proving key (linear in the number of
/// constraint-matrix entries) — the paper's §IV quotes ≈3.89 MB for the
/// `kilic/rln` prover key, reproduced by experiment E3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProvingKey {
    circuit: RlnCircuit,
    srs_secret: [u8; 32],
    matrix_bytes: usize,
}

impl ProvingKey {
    /// The circuit this key proves.
    pub fn circuit(&self) -> RlnCircuit {
        self.circuit
    }

    /// Modeled serialized size in bytes (constraint matrices plus the
    /// per-variable group elements a Groth16 key carries).
    pub fn size_bytes(&self) -> usize {
        self.matrix_bytes
    }
}

/// The verifying key: constant-size, independent of the circuit depth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VerifyingKey {
    circuit: RlnCircuit,
    srs_secret: [u8; 32],
}

impl VerifyingKey {
    /// The circuit this key verifies.
    pub fn circuit(&self) -> RlnCircuit {
        self.circuit
    }

    /// Serialized size in bytes (a handful of group elements in Groth16;
    /// here the 32-byte SRS secret plus the 8-byte depth tag).
    pub fn size_bytes(&self) -> usize {
        32 + 8
    }
}

/// A constant-size simulated proof.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proof {
    /// Simulated `π_A` (32 bytes) and `π_C` (32 bytes) around `π_B`
    /// (64 bytes) — jointly random-looking bytes derived from fresh prover
    /// randomness, carrying no witness information. Stored as four 32-byte
    /// words for serde compatibility.
    pub elements: [[u8; 32]; 4],
    /// MAC binding `elements` and the public inputs under the SRS secret.
    pub binding: [u8; BINDING_BYTES],
}

impl Proof {
    /// Total serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        PROOF_BYTES + BINDING_BYTES
    }
}

/// The simulated SNARK scheme (see module docs for the fidelity contract).
#[derive(Clone, Copy, Debug)]
pub struct SimSnark;

impl SimSnark {
    /// Runs the (simulated) trusted setup for `circuit`.
    pub fn setup<R: RngCore + ?Sized>(
        circuit: RlnCircuit,
        rng: &mut R,
    ) -> (ProvingKey, VerifyingKey) {
        let mut srs_secret = [0u8; 32];
        rng.fill_bytes(&mut srs_secret);
        // Materialize the constraint matrices once to size the proving key.
        let mut cs = ConstraintSystem::new();
        let public = RlnPublicInputs {
            root: Default::default(),
            external_nullifier: Default::default(),
            x: Default::default(),
            y: Default::default(),
            internal_nullifier: Default::default(),
        };
        let witness = RlnWitness {
            sk: Default::default(),
            leaf_index: 0,
            path_siblings: vec![Default::default(); circuit.depth()],
        };
        circuit.synthesize(&mut cs, &public, &witness);
        let matrix_bytes = cs.matrix_bytes();
        (
            ProvingKey {
                circuit,
                srs_secret,
                matrix_bytes,
            },
            VerifyingKey {
                circuit,
                srs_secret,
            },
        )
    }

    /// Produces a proof for `public` under `witness`.
    ///
    /// Performs full witness synthesis and constraint checking — the
    /// honest-prover work that experiment E1 measures.
    ///
    /// # Errors
    ///
    /// * [`ProveError::DepthMismatch`] — witness path length is wrong.
    /// * [`ProveError::Unsatisfied`] — the witness violates the circuit
    ///   (e.g. the key is not in the tree, or the share was tampered with).
    pub fn prove<R: RngCore + ?Sized>(
        pk: &ProvingKey,
        public: &RlnPublicInputs,
        witness: &RlnWitness,
        rng: &mut R,
    ) -> Result<Proof, ProveError> {
        // check first, draw randomness after: a failing prove consumes no
        // RNG state, so seed-pinned simulations that mix failed proves
        // with later RNG use keep reproducing
        Self::synthesize_and_check(pk, public, witness)?;
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Ok(Self::proof_from_seed(pk, public, seed))
    }

    /// Generates proofs for many statements, fanning the witness synthesis
    /// and constraint checking out across worker threads (with the
    /// `parallel` feature; inline otherwise). Per-statement randomness is
    /// drawn from `rng` up front (one 32-byte seed per job, including jobs
    /// that end up failing), so all-success batches produce proofs
    /// identical to sequential [`SimSnark::prove`] calls on the same RNG.
    pub fn prove_batch<R: RngCore + ?Sized>(
        pk: &ProvingKey,
        jobs: &[(RlnPublicInputs, RlnWitness)],
        rng: &mut R,
    ) -> Vec<Result<Proof, ProveError>> {
        let seeds: Vec<[u8; 32]> = jobs
            .iter()
            .map(|_| {
                let mut seed = [0u8; 32];
                rng.fill_bytes(&mut seed);
                seed
            })
            .collect();
        let seeded: Vec<(&(RlnPublicInputs, RlnWitness), [u8; 32])> =
            jobs.iter().zip(seeds).collect();
        crate::parallel::par_map(&seeded, 1, |((public, witness), seed)| {
            Self::synthesize_and_check(pk, public, witness)?;
            Ok(Self::proof_from_seed(pk, public, *seed))
        })
    }

    /// The honest-prover work: full witness synthesis plus (parallel)
    /// constraint checking.
    fn synthesize_and_check(
        pk: &ProvingKey,
        public: &RlnPublicInputs,
        witness: &RlnWitness,
    ) -> Result<(), ProveError> {
        if witness.path_siblings.len() != pk.circuit.depth() {
            return Err(ProveError::DepthMismatch {
                expected: pk.circuit.depth(),
                got: witness.path_siblings.len(),
            });
        }
        let mut cs = ConstraintSystem::new();
        pk.circuit.synthesize(&mut cs, public, witness);
        cs.is_satisfied_par()
            .map_err(|e| ProveError::Unsatisfied(e.label))
    }

    /// Builds the constant-size proof from explicit prover randomness.
    fn proof_from_seed(pk: &ProvingKey, public: &RlnPublicInputs, seed: [u8; 32]) -> Proof {
        // Zero-knowledge: the proof elements are a PRF of fresh randomness
        // only — independent of the witness.
        let mut elements = [[0u8; 32]; 4];
        for (i, chunk) in elements.iter_mut().enumerate() {
            let mut h = Sha256::new();
            h.update(b"simsnark-element");
            h.update(&seed);
            h.update(&[i as u8]);
            *chunk = h.finalize();
        }
        let binding = Self::binding(&pk.srs_secret, pk.circuit.depth(), public, &elements);
        Proof { elements, binding }
    }

    /// Verifies a proof in constant time (independent of circuit depth) —
    /// the behaviour experiment E2 measures.
    pub fn verify(vk: &VerifyingKey, public: &RlnPublicInputs, proof: &Proof) -> bool {
        let expected = Self::binding(&vk.srs_secret, vk.circuit.depth(), public, &proof.elements);
        // constant-time-ish comparison (not a side-channel concern in a
        // simulation, but cheap to do right)
        expected
            .iter()
            .zip(proof.binding.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }

    /// Verifies many statements, fanning out across worker threads (with
    /// the `parallel` feature; inline otherwise). Returns per-statement
    /// validity in input order — the entry point a validator uses when
    /// draining its message queue.
    pub fn verify_batch(vk: &VerifyingKey, statements: &[(&RlnPublicInputs, &Proof)]) -> Vec<bool> {
        crate::parallel::par_map(statements, 4, |(public, proof)| {
            Self::verify(vk, public, proof)
        })
    }

    fn binding(
        secret: &[u8; 32],
        depth: usize,
        public: &RlnPublicInputs,
        elements: &[[u8; 32]; 4],
    ) -> [u8; BINDING_BYTES] {
        let mut h = Sha256::new();
        h.update(b"simsnark-binding-v1");
        h.update(secret);
        h.update(&(depth as u64).to_le_bytes());
        for input in public.to_vec() {
            h.update(&input.to_bytes_le());
        }
        for word in elements {
            h.update(word);
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wakurln_crypto::field::Fr;
    use wakurln_crypto::merkle::FullMerkleTree;
    use wakurln_crypto::poseidon;

    struct Fixture {
        pk: ProvingKey,
        vk: VerifyingKey,
        tree: FullMerkleTree,
        sk: Fr,
        index: u64,
        rng: StdRng,
    }

    fn fixture(depth: usize) -> Fixture {
        let mut rng = StdRng::seed_from_u64(7);
        let (pk, vk) = SimSnark::setup(RlnCircuit::new(depth), &mut rng);
        let sk = Fr::from_u64(987);
        let mut tree = FullMerkleTree::new(depth).unwrap();
        tree.append(Fr::from_u64(1)).unwrap();
        let index = tree.append(poseidon::hash1(sk)).unwrap();
        Fixture {
            pk,
            vk,
            tree,
            sk,
            index,
            rng,
        }
    }

    fn honest_proof(f: &mut Fixture, epoch: u64, msg: &[u8]) -> (RlnPublicInputs, Proof) {
        let (public, _) = RlnCircuit::derive_public(
            f.sk,
            f.tree.root(),
            Fr::from_u64(epoch),
            poseidon::hash_bytes_to_field(msg),
        );
        let witness = RlnWitness::new(f.sk, &f.tree.proof(f.index).unwrap());
        let proof = SimSnark::prove(&f.pk, &public, &witness, &mut f.rng).unwrap();
        (public, proof)
    }

    #[test]
    fn prove_verify_roundtrip() {
        let mut f = fixture(10);
        let (public, proof) = honest_proof(&mut f, 1, b"hello");
        assert!(SimSnark::verify(&f.vk, &public, &proof));
    }

    #[test]
    fn proof_is_constant_size() {
        let mut f10 = fixture(10);
        let mut f20 = fixture(16);
        let (_, p10) = honest_proof(&mut f10, 1, b"a");
        let (_, p20) = honest_proof(&mut f20, 1, b"a");
        assert_eq!(p10.size_bytes(), p20.size_bytes());
        assert_eq!(p10.size_bytes(), PROOF_BYTES + BINDING_BYTES);
    }

    #[test]
    fn tampered_public_inputs_rejected() {
        let mut f = fixture(10);
        let (mut public, proof) = honest_proof(&mut f, 1, b"hello");
        public.y += Fr::ONE;
        assert!(!SimSnark::verify(&f.vk, &public, &proof));
    }

    #[test]
    fn tampered_proof_bytes_rejected() {
        let mut f = fixture(10);
        let (public, mut proof) = honest_proof(&mut f, 1, b"hello");
        proof.elements[0][0] ^= 1;
        assert!(!SimSnark::verify(&f.vk, &public, &proof));
        let (public, mut proof) = honest_proof(&mut f, 1, b"hello");
        proof.binding[31] ^= 0x80;
        assert!(!SimSnark::verify(&f.vk, &public, &proof));
    }

    #[test]
    fn proof_bound_to_root() {
        // proving against a stale root then verifying against the current
        // root fails — group synchronization matters (§III)
        let mut f = fixture(10);
        let (public, proof) = honest_proof(&mut f, 1, b"hello");
        f.tree.append(Fr::from_u64(5)).unwrap();
        let mut fresh = public;
        fresh.root = f.tree.root();
        assert!(!SimSnark::verify(&f.vk, &fresh, &proof));
        // and the old proof still verifies against the old root
        assert!(SimSnark::verify(&f.vk, &public, &proof));
    }

    #[test]
    fn non_member_cannot_prove() {
        let mut f = fixture(10);
        let outsider = Fr::from_u64(666);
        let (public, _) =
            RlnCircuit::derive_public(outsider, f.tree.root(), Fr::from_u64(1), Fr::from_u64(2));
        // best effort: reuse some member's path
        let witness = RlnWitness::new(outsider, &f.tree.proof(f.index).unwrap());
        let err = SimSnark::prove(&f.pk, &public, &witness, &mut f.rng).unwrap_err();
        assert_eq!(err, ProveError::Unsatisfied("rln/root"));
    }

    #[test]
    fn depth_mismatch_detected() {
        let mut f = fixture(10);
        let (public, _) =
            RlnCircuit::derive_public(f.sk, f.tree.root(), Fr::from_u64(1), Fr::from_u64(2));
        let mut witness = RlnWitness::new(f.sk, &f.tree.proof(f.index).unwrap());
        witness.path_siblings.pop();
        let err = SimSnark::prove(&f.pk, &public, &witness, &mut f.rng).unwrap_err();
        assert!(matches!(
            err,
            ProveError::DepthMismatch {
                expected: 10,
                got: 9
            }
        ));
    }

    #[test]
    fn proofs_are_randomized() {
        // two proofs of the same statement differ (zero-knowledge style
        // rerandomization), yet both verify
        let mut f = fixture(10);
        let (public, p1) = honest_proof(&mut f, 1, b"hello");
        let (_, p2) = honest_proof(&mut f, 1, b"hello");
        assert_ne!(p1.elements, p2.elements);
        assert!(SimSnark::verify(&f.vk, &public, &p1));
        assert!(SimSnark::verify(&f.vk, &public, &p2));
    }

    #[test]
    fn wrong_verifying_key_rejects() {
        let mut f = fixture(10);
        let (public, proof) = honest_proof(&mut f, 1, b"hello");
        let mut rng = StdRng::seed_from_u64(999);
        let (_, other_vk) = SimSnark::setup(RlnCircuit::new(10), &mut rng);
        assert!(!SimSnark::verify(&other_vk, &public, &proof));
    }

    #[test]
    fn prove_batch_matches_sequential_proves() {
        let f = fixture(10);
        let jobs: Vec<_> = (0..6u64)
            .map(|i| {
                let (public, _) = RlnCircuit::derive_public(
                    f.sk,
                    f.tree.root(),
                    Fr::from_u64(i + 1),
                    Fr::from_u64(1000 + i),
                );
                let witness = RlnWitness::new(f.sk, &f.tree.proof(f.index).unwrap());
                (public, witness)
            })
            .collect();
        // same seed stream → identical proofs to sequential prove calls
        let mut batch_rng = StdRng::seed_from_u64(77);
        let batch = SimSnark::prove_batch(&f.pk, &jobs, &mut batch_rng);
        let mut seq_rng = StdRng::seed_from_u64(77);
        for ((public, witness), batched) in jobs.iter().zip(&batch) {
            let sequential = SimSnark::prove(&f.pk, public, witness, &mut seq_rng).unwrap();
            assert_eq!(batched.as_ref().unwrap(), &sequential);
            assert!(SimSnark::verify(&f.vk, public, batched.as_ref().unwrap()));
        }
    }

    #[test]
    fn failed_prove_consumes_no_rng_state() {
        // seed-pinned simulations rely on this: a rejected prove must not
        // advance the shared RNG stream
        let f = fixture(10);
        let outsider = Fr::from_u64(666);
        let (bad_public, _) =
            RlnCircuit::derive_public(outsider, f.tree.root(), Fr::from_u64(1), Fr::from_u64(2));
        let bad_witness = RlnWitness::new(outsider, &f.tree.proof(f.index).unwrap());
        let mut rng = StdRng::seed_from_u64(123);
        let mut pristine = StdRng::seed_from_u64(123);
        assert!(SimSnark::prove(&f.pk, &bad_public, &bad_witness, &mut rng).is_err());
        assert_eq!(rng.next_u64(), pristine.next_u64());
    }

    #[test]
    fn prove_batch_reports_per_job_errors() {
        let mut f = fixture(10);
        let (good_public, _) =
            RlnCircuit::derive_public(f.sk, f.tree.root(), Fr::from_u64(1), Fr::from_u64(2));
        let good_witness = RlnWitness::new(f.sk, &f.tree.proof(f.index).unwrap());
        let outsider = Fr::from_u64(666);
        let (bad_public, _) =
            RlnCircuit::derive_public(outsider, f.tree.root(), Fr::from_u64(1), Fr::from_u64(2));
        let bad_witness = RlnWitness::new(outsider, &f.tree.proof(f.index).unwrap());
        let results = SimSnark::prove_batch(
            &f.pk,
            &[(good_public, good_witness), (bad_public, bad_witness)],
            &mut f.rng,
        );
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(ProveError::Unsatisfied("rln/root")));
    }

    #[test]
    fn verify_batch_matches_individual_verifies() {
        let mut f = fixture(10);
        let mut statements = Vec::new();
        for i in 0..5 {
            let (public, proof) = honest_proof(&mut f, i + 1, b"batch");
            statements.push((public, proof));
        }
        // tamper with one of them
        statements[2].1.binding[0] ^= 1;
        let refs: Vec<(&RlnPublicInputs, &Proof)> =
            statements.iter().map(|(p, pr)| (p, pr)).collect();
        let verdicts = SimSnark::verify_batch(&f.vk, &refs);
        assert_eq!(verdicts, vec![true, true, false, true, true]);
    }

    #[test]
    fn prover_key_size_is_megabytes_at_depth_20() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, vk) = SimSnark::setup(RlnCircuit::new(20), &mut rng);
        let mb = pk.size_bytes() as f64 / (1024.0 * 1024.0);
        // paper: ≈3.89 MB prover key; ours lands in the same order
        assert!(mb > 0.5 && mb < 16.0, "got {mb} MB");
        assert!(vk.size_bytes() < 128);
    }
}
