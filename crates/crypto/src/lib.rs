//! # wakurln-crypto
//!
//! Cryptographic substrate for the WAKU-RLN-RELAY reproduction
//! (*Privacy-Preserving Spam-Protected Gossip-Based Routing*, ICDCS 2022).
//!
//! Everything here is implemented from scratch on top of `core`/`std`:
//!
//! * [`field`] — the BN254 scalar field `Fr` (Montgomery arithmetic),
//! * [`poseidon`] — the Poseidon hash used for all in-circuit hashing,
//! * [`sha256`] — SHA-256 for the simulated chain and the PoW baseline,
//! * [`shamir`] — Shamir secret sharing (the RLN slashing mechanism),
//! * [`merkle`] — membership Merkle trees: full, append-only frontier, and
//!   the reference-\[9\] light-member tree with O(depth) storage.
//!
//! # Quick tour
//!
//! ```
//! use wakurln_crypto::{field::Fr, poseidon, shamir, merkle::FullMerkleTree};
//!
//! // an RLN identity
//! let sk = Fr::from_u64(42);
//! let pk = poseidon::hash1(sk);
//!
//! // membership
//! let mut tree = FullMerkleTree::new(20)?;
//! let index = tree.append(pk)?;
//! let proof = tree.proof(index)?;
//! assert!(proof.verify(tree.root(), pk));
//!
//! // the rate-limiting secret share
//! let epoch = Fr::from_u64(1_654_041_600);
//! let a1 = poseidon::hash2(sk, epoch);
//! let share = shamir::share_on_line(sk, a1, poseidon::hash_bytes_to_field(b"hello"));
//! let share2 = shamir::share_on_line(sk, a1, poseidon::hash_bytes_to_field(b"world"));
//! // double-signaling reveals the secret:
//! assert_eq!(shamir::recover_line_secret(&share, &share2), Some(sk));
//! # Ok::<(), wakurln_crypto::merkle::MerkleError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod field;
pub mod merkle;
pub mod poseidon;
pub mod sha256;
pub mod shamir;

pub use field::Fr;
