//! Poseidon permutation and hash over [`Fr`].
//!
//! RLN computes every in-circuit hash with Poseidon (`pk = H(sk)`,
//! `a1 = H(sk, ∅)`, `φ = H(a1)`, Merkle node hashing), because Poseidon's
//! algebraic structure keeps the R1CS constraint count small. We implement
//! the standard x⁵-S-box HADES design:
//!
//! * full rounds `R_F = 8` (4 before + 4 after the partial rounds),
//! * partial rounds `R_P` chosen per width as in the reference
//!   implementation era of the paper (`t = 2 → 56`, `t = 3 → 57`,
//!   `t = 4 → 60`),
//! * MDS matrix built as a Cauchy matrix `M[i][j] = 1/(x_i + y_j)`,
//! * round constants derived from a SHA-256 based deterministic generator.
//!
//! **Substitution note (see DESIGN.md §2):** the round constants/MDS are
//! self-generated rather than the audited Poseidon parameter set. The
//! algebraic shape (and therefore circuit size and performance behaviour)
//! matches the construction used by the paper's PoC.
//!
//! # Examples
//!
//! ```
//! use wakurln_crypto::{field::Fr, poseidon};
//!
//! let h = poseidon::hash2(Fr::from_u64(1), Fr::from_u64(2));
//! assert_ne!(h, Fr::ZERO);
//! // deterministic
//! assert_eq!(h, poseidon::hash2(Fr::from_u64(1), Fr::from_u64(2)));
//! ```

use crate::field::Fr;
use crate::sha256::Sha256;
use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Number of Poseidon permutations executed on this thread — the unit
    /// the batched-Merkle experiments count ("hash invocations").
    static PERMUTATION_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Permutations executed on this thread since process start (monotonic).
///
/// Diff two readings around a workload to count its hash invocations:
///
/// ```
/// use wakurln_crypto::{field::Fr, poseidon};
///
/// let before = poseidon::permutation_count();
/// poseidon::hash2(Fr::ONE, Fr::ZERO);
/// assert_eq!(poseidon::permutation_count() - before, 1);
/// ```
pub fn permutation_count() -> u64 {
    PERMUTATION_COUNT.with(|c| c.get())
}

#[inline]
fn count_permutation() {
    PERMUTATION_COUNT.with(|c| c.set(c.get() + 1));
}

/// Number of full rounds (half applied before, half after the partial rounds).
pub const FULL_ROUNDS: usize = 8;

/// Supported state widths. Width `t` hashes `t - 1` field elements.
pub const MIN_WIDTH: usize = 2;
/// Maximum supported state width.
pub const MAX_WIDTH: usize = 5;

/// Partial-round counts per width `t` (index by `t`).
const PARTIAL_ROUNDS: [usize; MAX_WIDTH + 1] = [0, 0, 56, 57, 60, 60];

/// Precomputed parameters (round constants and MDS matrix) for one width.
#[derive(Clone, Debug)]
pub struct PoseidonParams {
    /// State width.
    pub t: usize,
    /// Number of partial rounds.
    pub rounds_p: usize,
    /// `(FULL_ROUNDS + rounds_p) * t` round constants, row-major per round.
    pub round_constants: Vec<Fr>,
    /// `t × t` MDS matrix, row-major.
    pub mds: Vec<Vec<Fr>>,
}

impl PoseidonParams {
    /// Generates the deterministic parameter set for width `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `MIN_WIDTH..=MAX_WIDTH`.
    pub fn generate(t: usize) -> PoseidonParams {
        assert!(
            (MIN_WIDTH..=MAX_WIDTH).contains(&t),
            "unsupported poseidon width {t}"
        );
        let rounds_p = PARTIAL_ROUNDS[t];
        let n_constants = (FULL_ROUNDS + rounds_p) * t;
        let mut round_constants = Vec::with_capacity(n_constants);
        for i in 0..n_constants {
            round_constants.push(field_from_domain(&format!("wakurln-poseidon-rc-t{t}-{i}")));
        }
        // Cauchy MDS: x_i = i, y_j = t + j; all x_i + y_j distinct & nonzero.
        let mut mds = Vec::with_capacity(t);
        for i in 0..t {
            let mut row = Vec::with_capacity(t);
            for j in 0..t {
                let denom = Fr::from_u64((i + t + j) as u64);
                // lint:allow(panic-path, reason = "Cauchy MDS construction: x_i + y_j is never zero for the sequential seed values")
                row.push(denom.inverse().expect("x_i + y_j is never zero"));
            }
            mds.push(row);
        }
        PoseidonParams {
            t,
            rounds_p,
            round_constants,
            mds,
        }
    }

    /// Total number of rounds (full + partial).
    pub fn total_rounds(&self) -> usize {
        FULL_ROUNDS + self.rounds_p
    }
}

/// Derives a field element from a domain-separation string by expanding
/// SHA-256 output to 64 bytes and reducing (negligible bias).
fn field_from_domain(domain: &str) -> Fr {
    let mut wide = [0u8; 64];
    let d0 = Sha256::digest(domain.as_bytes());
    let mut second = Sha256::new();
    second.update(&d0);
    second.update(b"/2");
    let d1 = second.finalize();
    wide[..32].copy_from_slice(&d0);
    wide[32..].copy_from_slice(&d1);
    Fr::from_uniform_bytes(&wide)
}

fn params_cache(t: usize) -> &'static PoseidonParams {
    static CACHE: [OnceLock<PoseidonParams>; MAX_WIDTH + 1] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    CACHE[t].get_or_init(|| PoseidonParams::generate(t))
}

fn fast_params_cache(t: usize) -> &'static FastPoseidonParams {
    static CACHE: [OnceLock<FastPoseidonParams>; MAX_WIDTH + 1] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    CACHE[t].get_or_init(|| FastPoseidonParams::from_reference(params_cache(t)))
}

/// Returns the cached fast-path parameter set for width `t`.
///
/// # Panics
///
/// Panics if `t` is outside the supported range.
pub fn fast_params(t: usize) -> &'static FastPoseidonParams {
    assert!(
        (MIN_WIDTH..=MAX_WIDTH).contains(&t),
        "unsupported poseidon width {t}"
    );
    fast_params_cache(t)
}

// ---------------------------------------------------------------------------
// Fast path: flat parameters + sparse partial-round matrices
// ---------------------------------------------------------------------------

/// The linear layer applied by one partial round on the fast path.
#[derive(Clone, Debug)]
enum PartialLayer {
    /// Sparse factor `M''`: identity except the first row (`row0`, `t`
    /// entries) and the first column below the diagonal (`col0`, `t - 1`
    /// entries). Applying it costs one `t`-term dot product for lane 0
    /// plus `t - 1` scalar multiply-adds — versus `t²` multiplies for the
    /// dense MDS.
    Sparse { row0: Box<[Fr]>, col0: Box<[Fr]> },
    /// Dense `t × t` fallback (always used by the last partial round,
    /// which carries the accumulated dense factor).
    Dense(Box<[Fr]>),
}

/// Precomputed fast-path parameters: flat contiguous arrays plus the
/// sparse partial-round factorization.
///
/// Built once per width from the reference [`PoseidonParams`] and cached;
/// [`permute`] and the fixed-arity hash helpers run on this
/// representation. Equivalence with the reference [`permute_with`] is
/// guaranteed by construction (the factorization is an exact operator
/// identity) and enforced by property tests.
#[derive(Clone, Debug)]
pub struct FastPoseidonParams {
    t: usize,
    rounds_p: usize,
    /// Constants for the 8 full rounds, flat row-major (`8 × t`); the
    /// post-partial rounds' constants absorb the adjustments pushed out of
    /// the partial rounds.
    full_rc: Box<[Fr]>,
    /// One equivalent pre-S-box constant per partial round (lane 0 only).
    partial_rc0: Box<[Fr]>,
    /// Linear layer per partial round.
    partial_layers: Box<[PartialLayer]>,
    /// Dense MDS for the full rounds, flat row-major (`t × t`).
    mds_flat: Box<[Fr]>,
}

impl FastPoseidonParams {
    /// Derives the fast representation from reference parameters.
    ///
    /// The transformation (standard "optimized Poseidon" partial-round
    /// rewrite) is an exact operator identity:
    ///
    /// 1. Each partial round's dense matrix `Mᵣ` factors as `M′ · M″`
    ///    with `M″` sparse and `M′ = diag(1, D)`; `M′` commutes with the
    ///    lane-0 S-box, so it is absorbed into the *next* round's matrix
    ///    (`M·M′`), whose constants are pulled back through `M′⁻¹`.
    /// 2. Each partial round's constant vector splits into its lane-0
    ///    component (kept, added right before the S-box) and the rest,
    ///    which commutes with the S-box and is pushed through the round's
    ///    linear layer into the next round's constants.
    pub fn from_reference(params: &PoseidonParams) -> FastPoseidonParams {
        let t = params.t;
        let rounds_p = params.rounds_p;
        let half = FULL_ROUNDS / 2;
        let total = params.total_rounds();

        // round constants as per-round vectors
        let mut c: Vec<Vec<Fr>> = (0..total)
            .map(|r| params.round_constants[r * t..(r + 1) * t].to_vec())
            .collect();

        let m: Vec<Vec<Fr>> = params.mds.clone();
        let mut cur = m.clone();
        let mut partial_layers = Vec::with_capacity(rounds_p);
        let mut partial_rc0 = Vec::with_capacity(rounds_p);

        for k in 0..rounds_p {
            let r = half + k;
            // lint:allow(panic-path, reason = "round-constant rows have width t >= 2; index 0 exists")
            partial_rc0.push(c[r][0]);
            let mut rest = c[r].clone();
            // lint:allow(panic-path, reason = "rest is a clone of a width-t row, t >= 2")
            rest[0] = Fr::ZERO;

            let is_last = k == rounds_p - 1;
            let factored = if is_last { None } else { factor_sparse(&cur) };
            match factored {
                Some((d, d_inv, ms_row0, ms_col0)) => {
                    // push `rest` through M'' into the next round's
                    // constants, which are first pulled back through M'⁻¹
                    let ms_rest = apply_sparse_vec(&ms_row0, &ms_col0, &rest);
                    let mut next = c[r + 1].clone();
                    // M'⁻¹ = diag(1, D⁻¹)
                    let tail: Vec<Fr> = (1..t)
                        .map(|i| {
                            (1..t).fold(Fr::ZERO, |acc, j| {
                                acc + d_inv[(i - 1) * (t - 1) + (j - 1)] * next[j]
                            })
                        })
                        .collect();
                    next[1..].copy_from_slice(&tail);
                    for (n, p) in next.iter_mut().zip(ms_rest.iter()) {
                        *n += *p;
                    }
                    c[r + 1] = next;
                    partial_layers.push(PartialLayer::Sparse {
                        row0: ms_row0.into_boxed_slice(),
                        col0: ms_col0.into_boxed_slice(),
                    });
                    // absorb M' = diag(1, D) into the next round's matrix
                    cur = mat_mul_diag_block(&m, &d);
                }
                None => {
                    // dense fallback (always the last partial round):
                    // push `rest` through the dense matrix
                    let pushed = mat_vec(&cur, &rest);
                    for (n, p) in c[r + 1].iter_mut().zip(pushed.iter()) {
                        *n += *p;
                    }
                    partial_layers.push(PartialLayer::Dense(flatten(&cur)));
                    cur = m.clone();
                }
            }
        }

        // full-round constants: rounds 0..half then half+rounds_p..total
        let mut full_rc = Vec::with_capacity(FULL_ROUNDS * t);
        for r in (0..half).chain(half + rounds_p..total) {
            full_rc.extend_from_slice(&c[r]);
        }

        FastPoseidonParams {
            t,
            rounds_p,
            full_rc: full_rc.into_boxed_slice(),
            partial_rc0: partial_rc0.into_boxed_slice(),
            partial_layers: partial_layers.into_boxed_slice(),
            mds_flat: flatten(&m),
        }
    }

    /// State width.
    pub fn width(&self) -> usize {
        self.t
    }

    /// Number of partial rounds in the schedule.
    pub fn partial_rounds(&self) -> usize {
        self.rounds_p
    }

    /// How many partial rounds run on the sparse path (diagnostics; the
    /// last partial round is always dense by construction).
    pub fn sparse_rounds(&self) -> usize {
        self.partial_layers
            .iter()
            .filter(|l| matches!(l, PartialLayer::Sparse { .. }))
            .count()
    }
}

fn flatten(m: &[Vec<Fr>]) -> Box<[Fr]> {
    m.iter().flatten().copied().collect()
}

/// `M · diag(1, D)`: scales/mixes the trailing columns of `M` by `D`.
fn mat_mul_diag_block(m: &[Vec<Fr>], d: &[Fr]) -> Vec<Vec<Fr>> {
    let t = m.len();
    let n = t - 1;
    let mut out = vec![vec![Fr::ZERO; t]; t];
    for i in 0..t {
        // lint:allow(panic-path, reason = "square t-by-t matrices from the parameter generator; both indices are < t")
        out[i][0] = m[i][0];
        for j in 1..t {
            let mut acc = Fr::ZERO;
            for k in 1..t {
                acc += m[i][k] * d[(k - 1) * n + (j - 1)];
            }
            out[i][j] = acc;
        }
    }
    out
}

fn mat_vec(m: &[Vec<Fr>], v: &[Fr]) -> Vec<Fr> {
    m.iter()
        .map(|row| {
            row.iter()
                .zip(v.iter())
                .fold(Fr::ZERO, |acc, (a, b)| acc + *a * *b)
        })
        .collect()
}

/// Applies the sparse factor `M''` to a vector.
fn apply_sparse_vec(row0: &[Fr], col0: &[Fr], v: &[Fr]) -> Vec<Fr> {
    let t = row0.len();
    let mut out = vec![Fr::ZERO; t];
    out[0] = row0
        .iter()
        .zip(v.iter())
        .fold(Fr::ZERO, |acc, (a, b)| acc + *a * *b);
    for i in 1..t {
        out[i] = v[i] + col0[i - 1] * v[0];
    }
    out
}

/// Factors `cur = diag(1, D) · M''` with `M''` sparse.
///
/// Writing `cur = [[m00, B], [C, D]]`, the factors are
/// `M'' = [[m00, B], [D⁻¹C, I]]` and `M' = diag(1, D)`. Returns
/// `(D, D⁻¹, row0 = (m00, B), col0 = D⁻¹C)`, or `None` when `D` is
/// singular (then the caller falls back to the dense layer).
#[allow(clippy::type_complexity)]
fn factor_sparse(cur: &[Vec<Fr>]) -> Option<(Vec<Fr>, Vec<Fr>, Vec<Fr>, Vec<Fr>)> {
    let t = cur.len();
    let n = t - 1;
    let mut d = vec![Fr::ZERO; n * n];
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = cur[i + 1][j + 1];
        }
    }
    let d_inv = invert_matrix(&d, n)?;
    let row0: Vec<Fr> = cur[0].clone();
    let col0: Vec<Fr> = (0..n)
        // lint:allow(panic-path, reason = "cur rows have width t = n + 1 >= 2; index 0 exists")
        .map(|i| (0..n).fold(Fr::ZERO, |acc, j| acc + d_inv[i * n + j] * cur[j + 1][0]))
        .collect();
    Some((d, d_inv, row0, col0))
}

/// Gauss–Jordan inversion of an `n × n` matrix (row-major flat storage).
fn invert_matrix(m: &[Fr], n: usize) -> Option<Vec<Fr>> {
    let mut a = m.to_vec();
    let mut inv = vec![Fr::ZERO; n * n];
    for i in 0..n {
        inv[i * n + i] = Fr::ONE;
    }
    for col in 0..n {
        let pivot_row = (col..n).find(|&r| !a[r * n + col].is_zero())?;
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
                inv.swap(col * n + j, pivot_row * n + j);
            }
        }
        let pivot_inv = a[col * n + col].inverse()?;
        for j in 0..n {
            a[col * n + j] *= pivot_inv;
            inv[col * n + j] *= pivot_inv;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row * n + col];
            if factor.is_zero() {
                continue;
            }
            for j in 0..n {
                let av = a[col * n + j];
                let iv = inv[col * n + j];
                a[row * n + j] -= factor * av;
                inv[row * n + j] -= factor * iv;
            }
        }
    }
    Some(inv)
}

/// Applies the Poseidon permutation on the fast path for a fixed width.
///
/// Exactly equivalent to the reference [`permute_with`] (property-tested);
/// runs on flat arrays with the sparse partial-round schedule and no heap
/// allocation.
#[inline]
pub fn permute_fast<const T: usize>(fp: &FastPoseidonParams, state: &mut [Fr; T]) {
    assert_eq!(T, fp.t, "state width mismatch");
    count_permutation();
    let half = FULL_ROUNDS / 2;

    // first half of the full rounds
    for r in 0..half {
        full_round::<T>(fp, r, state);
    }

    // partial rounds: one lane-0 constant, lane-0 S-box, sparse mix
    for (p, layer) in fp.partial_layers.iter().enumerate() {
        state[0] += fp.partial_rc0[p];
        state[0] = sbox(state[0]);
        match layer {
            PartialLayer::Sparse { row0, col0 } => {
                let s0 = state[0];
                let mut new0 = row0[0] * s0;
                for i in 1..T {
                    new0 += row0[i] * state[i];
                }
                for i in 1..T {
                    state[i] += col0[i - 1] * s0;
                }
                state[0] = new0;
            }
            PartialLayer::Dense(m) => {
                dense_mix::<T>(m, state);
            }
        }
    }

    // second half of the full rounds
    for r in half..FULL_ROUNDS {
        full_round::<T>(fp, r, state);
    }
}

#[inline]
fn full_round<const T: usize>(fp: &FastPoseidonParams, r: usize, state: &mut [Fr; T]) {
    let rc = &fp.full_rc[r * T..(r + 1) * T];
    for (s, c) in state.iter_mut().zip(rc.iter()) {
        *s = sbox(*s + *c);
    }
    dense_mix::<T>(&fp.mds_flat, state);
}

#[inline]
fn dense_mix<const T: usize>(m: &[Fr], state: &mut [Fr; T]) {
    let mut out = [Fr::ZERO; T];
    for (i, slot) in out.iter_mut().enumerate() {
        let row = &m[i * T..(i + 1) * T];
        // lint:allow(panic-path, reason = "row is a T-element slice of the flattened T-by-T matrix")
        let mut acc = row[0] * state[0];
        for j in 1..T {
            acc += row[j] * state[j];
        }
        *slot = acc;
    }
    *state = out;
}

/// The x⁵ S-box.
#[inline]
pub fn sbox(x: Fr) -> Fr {
    let x2 = x.square();
    let x4 = x2.square();
    x4 * x
}

/// Applies the Poseidon permutation in place (fast path).
///
/// # Panics
///
/// Panics if `state.len()` is not a supported width.
pub fn permute(state: &mut [Fr]) {
    match state.len() {
        // lint:allow(panic-path, reason = "len checked: this arm only runs when state.len() == 2")
        2 => permute_fast::<2>(fast_params_cache(2), state.try_into().expect("len checked")),
        // lint:allow(panic-path, reason = "len checked: this arm only runs when state.len() == 3")
        3 => permute_fast::<3>(fast_params_cache(3), state.try_into().expect("len checked")),
        // lint:allow(panic-path, reason = "len checked: this arm only runs when state.len() == 4")
        4 => permute_fast::<4>(fast_params_cache(4), state.try_into().expect("len checked")),
        // lint:allow(panic-path, reason = "len checked: this arm only runs when state.len() == 5")
        5 => permute_fast::<5>(fast_params_cache(5), state.try_into().expect("len checked")),
        // lint:allow(panic-path, reason = "parameters only exist for widths 2..=5; an unsupported width is a caller bug worth a loud stop")
        t => panic!("unsupported poseidon width {t}"),
    }
}

/// Applies the permutation using explicit parameters — the reference
/// implementation (used by the circuit gadget so that the in-circuit and
/// native computations share one source of truth, and as the ground truth
/// the fast path is property-tested against).
pub fn permute_with(params: &PoseidonParams, state: &mut [Fr]) {
    assert_eq!(state.len(), params.t, "state width mismatch");
    count_permutation();
    let t = params.t;
    let half_full = FULL_ROUNDS / 2;
    let total = params.total_rounds();
    let mut scratch = vec![Fr::ZERO; t];
    for round in 0..total {
        // AddRoundKey
        for (i, s) in state.iter_mut().enumerate() {
            *s += params.round_constants[round * t + i];
        }
        // S-box layer: full rounds apply to the whole state, partial rounds
        // only to lane 0.
        let is_full = round < half_full || round >= half_full + params.rounds_p;
        if is_full {
            for s in state.iter_mut() {
                *s = sbox(*s);
            }
        } else {
            state[0] = sbox(state[0]);
        }
        // MDS mix
        for (i, slot) in scratch.iter_mut().enumerate() {
            let mut acc = Fr::ZERO;
            for (j, s) in state.iter().enumerate() {
                acc += params.mds[i][j] * *s;
            }
            *slot = acc;
        }
        state.copy_from_slice(&scratch);
    }
}

/// Hashes exactly one field element (width-2 compression, capacity lane 0).
///
/// This is RLN's `pk = H(sk)` and `φ = H(a1)`.
pub fn hash1(a: Fr) -> Fr {
    let mut state = [Fr::ZERO, a];
    permute_fast::<2>(fast_params_cache(2), &mut state);
    state[0]
}

/// Hashes exactly two field elements (width-3 compression). This is the
/// Merkle node hash and RLN's `a1 = H(sk, ∅)`.
pub fn hash2(a: Fr, b: Fr) -> Fr {
    let mut state = [Fr::ZERO, a, b];
    permute_fast::<3>(fast_params_cache(3), &mut state);
    state[0]
}

/// Hashes exactly three field elements (width-4 compression).
pub fn hash3(a: Fr, b: Fr, c: Fr) -> Fr {
    let mut state = [Fr::ZERO, a, b, c];
    permute_fast::<4>(fast_params_cache(4), &mut state);
    state[0]
}

/// Variable-length sponge hash with rate 2 (width 3), padded with the
/// length to prevent extension ambiguity.
///
/// ```
/// use wakurln_crypto::{field::Fr, poseidon};
///
/// let a = poseidon::hash_many(&[Fr::from_u64(1)]);
/// let b = poseidon::hash_many(&[Fr::from_u64(1), Fr::ZERO]);
/// assert_ne!(a, b, "length is domain-separated");
/// ```
pub fn hash_many(inputs: &[Fr]) -> Fr {
    let fp = fast_params_cache(3);
    let mut state = [Fr::from_u64(inputs.len() as u64), Fr::ZERO, Fr::ZERO];
    for chunk in inputs.chunks(2) {
        // lint:allow(panic-path, reason = "chunks(2) yields non-empty chunks; index 0 always exists")
        state[1] += chunk[0];
        if let Some(second) = chunk.get(1) {
            state[2] += *second;
        }
        permute_fast::<3>(fp, &mut state);
    }
    if inputs.is_empty() {
        permute_fast::<3>(fp, &mut state);
    }
    state[0]
}

/// Hashes arbitrary bytes into the field: bytes are absorbed through
/// SHA-256 (64-byte expansion) then mapped with [`Fr::from_uniform_bytes`].
///
/// RLN uses this to map the application message `m` to the Shamir
/// evaluation point `x = H(m)`.
pub fn hash_bytes_to_field(bytes: &[u8]) -> Fr {
    let mut wide = [0u8; 64];
    let mut h0 = Sha256::new();
    h0.update(b"wakurln-h2f-0");
    h0.update(bytes);
    let mut h1 = Sha256::new();
    h1.update(b"wakurln-h2f-1");
    h1.update(bytes);
    wide[..32].copy_from_slice(&h0.finalize());
    wide[32..].copy_from_slice(&h1.finalize());
    Fr::from_uniform_bytes(&wide)
}

/// Returns the shared parameter set for width `t`.
///
/// # Panics
///
/// Panics if `t` is outside the supported range.
pub fn params(t: usize) -> &'static PoseidonParams {
    params_cache(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        let a = hash2(Fr::from_u64(1), Fr::from_u64(2));
        let b = hash2(Fr::from_u64(1), Fr::from_u64(2));
        assert_eq!(a, b);
    }

    #[test]
    fn argument_order_matters() {
        assert_ne!(
            hash2(Fr::from_u64(1), Fr::from_u64(2)),
            hash2(Fr::from_u64(2), Fr::from_u64(1))
        );
    }

    #[test]
    fn widths_are_domain_separated() {
        // hash1(x) must differ from hash2(x, 0): different widths use
        // different parameter sets.
        let x = Fr::from_u64(42);
        assert_ne!(hash1(x), hash2(x, Fr::ZERO));
    }

    #[test]
    fn permutation_is_not_identity() {
        let mut state = [Fr::ZERO, Fr::ZERO, Fr::ZERO];
        permute(&mut state);
        assert_ne!(state, [Fr::ZERO, Fr::ZERO, Fr::ZERO]);
    }

    #[test]
    fn mds_rows_are_distinct_and_nonzero() {
        let p = PoseidonParams::generate(3);
        for row in &p.mds {
            for entry in row {
                assert!(!entry.is_zero());
            }
        }
        assert_ne!(p.mds[0], p.mds[1]);
        assert_ne!(p.mds[1], p.mds[2]);
    }

    #[test]
    fn round_constant_counts() {
        for t in MIN_WIDTH..=MAX_WIDTH {
            let p = PoseidonParams::generate(t);
            assert_eq!(p.round_constants.len(), p.total_rounds() * t);
        }
    }

    #[test]
    fn hash_many_empty_and_singleton_differ() {
        assert_ne!(hash_many(&[]), hash_many(&[Fr::ZERO]));
    }

    #[test]
    fn hash_many_matches_manual_absorption_length_tag() {
        // two different-length inputs with identical absorbed data differ
        let one = hash_many(&[Fr::from_u64(9)]);
        let padded = hash_many(&[Fr::from_u64(9), Fr::ZERO]);
        assert_ne!(one, padded);
    }

    #[test]
    fn hash_bytes_to_field_differs_per_input() {
        assert_ne!(hash_bytes_to_field(b"hello"), hash_bytes_to_field(b"hellp"));
        assert_ne!(hash_bytes_to_field(b""), hash_bytes_to_field(b"\0"));
    }

    #[test]
    #[should_panic(expected = "unsupported poseidon width")]
    fn unsupported_width_panics() {
        PoseidonParams::generate(9);
    }

    #[test]
    #[should_panic(expected = "unsupported poseidon width")]
    fn unsupported_width_panics_on_permute() {
        let mut state = [Fr::ZERO; 7];
        permute(&mut state);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn fast_params_use_sparse_rounds() {
        // all but the last partial round must run on the sparse path
        for t in MIN_WIDTH..=MAX_WIDTH {
            let fp = fast_params(t);
            assert_eq!(fp.width(), t);
            assert_eq!(fp.sparse_rounds(), PARTIAL_ROUNDS[t] - 1, "width {t}");
        }
    }

    #[test]
    fn fast_matches_reference_on_fixed_states() {
        for t in MIN_WIDTH..=MAX_WIDTH {
            let params = params(t);
            let mut reference: Vec<Fr> = (0..t as u64).map(Fr::from_u64).collect();
            let mut fast = reference.clone();
            permute_with(params, &mut reference);
            permute(&mut fast);
            assert_eq!(reference, fast, "width {t}");
        }
    }

    #[test]
    fn permutation_counter_increments() {
        let before = permutation_count();
        hash1(Fr::ONE);
        hash2(Fr::ONE, Fr::ZERO);
        hash3(Fr::ONE, Fr::ZERO, Fr::ONE);
        let mut state = [Fr::ZERO; 3];
        permute_with(params(3), &mut state);
        assert_eq!(permutation_count() - before, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_hash2_collision_resistant_on_random_inputs(
            a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>()
        ) {
            let x = hash2(Fr::from_u64(a), Fr::from_u64(b));
            let y = hash2(Fr::from_u64(c), Fr::from_u64(d));
            if (a, b) != (c, d) {
                prop_assert_ne!(x, y);
            } else {
                prop_assert_eq!(x, y);
            }
        }

        #[test]
        fn prop_permutation_bijective_on_samples(a in any::<u64>(), b in any::<u64>()) {
            // distinct states map to distinct outputs (injectivity sample)
            let mut s1 = [Fr::ZERO, Fr::from_u64(a), Fr::from_u64(b)];
            let mut s2 = [Fr::ONE, Fr::from_u64(a), Fr::from_u64(b)];
            permute(&mut s1);
            permute(&mut s2);
            prop_assert_ne!(s1, s2);
        }

        /// The tentpole equivalence property: the fast permutation equals
        /// the reference `permute_with` on random states, for every width.
        #[test]
        fn prop_fast_permutation_matches_reference(
            seeds in proptest::collection::vec(any::<[u8; 64]>(), MAX_WIDTH..MAX_WIDTH + 1)
        ) {
            let lanes: Vec<Fr> = seeds.iter().map(Fr::from_uniform_bytes).collect();
            for t in MIN_WIDTH..=MAX_WIDTH {
                let mut reference = lanes[..t].to_vec();
                let mut fast = reference.clone();
                permute_with(params(t), &mut reference);
                permute(&mut fast);
                prop_assert_eq!(&reference, &fast, "width {}", t);
            }
        }
    }
}
