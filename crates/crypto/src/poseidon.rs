//! Poseidon permutation and hash over [`Fr`].
//!
//! RLN computes every in-circuit hash with Poseidon (`pk = H(sk)`,
//! `a1 = H(sk, ∅)`, `φ = H(a1)`, Merkle node hashing), because Poseidon's
//! algebraic structure keeps the R1CS constraint count small. We implement
//! the standard x⁵-S-box HADES design:
//!
//! * full rounds `R_F = 8` (4 before + 4 after the partial rounds),
//! * partial rounds `R_P` chosen per width as in the reference
//!   implementation era of the paper (`t = 2 → 56`, `t = 3 → 57`,
//!   `t = 4 → 60`),
//! * MDS matrix built as a Cauchy matrix `M[i][j] = 1/(x_i + y_j)`,
//! * round constants derived from a SHA-256 based deterministic generator.
//!
//! **Substitution note (see DESIGN.md §2):** the round constants/MDS are
//! self-generated rather than the audited Poseidon parameter set. The
//! algebraic shape (and therefore circuit size and performance behaviour)
//! matches the construction used by the paper's PoC.
//!
//! # Examples
//!
//! ```
//! use wakurln_crypto::{field::Fr, poseidon};
//!
//! let h = poseidon::hash2(Fr::from_u64(1), Fr::from_u64(2));
//! assert_ne!(h, Fr::ZERO);
//! // deterministic
//! assert_eq!(h, poseidon::hash2(Fr::from_u64(1), Fr::from_u64(2)));
//! ```

use crate::field::Fr;
use crate::sha256::Sha256;
use std::sync::OnceLock;

/// Number of full rounds (half applied before, half after the partial rounds).
pub const FULL_ROUNDS: usize = 8;

/// Supported state widths. Width `t` hashes `t - 1` field elements.
pub const MIN_WIDTH: usize = 2;
/// Maximum supported state width.
pub const MAX_WIDTH: usize = 5;

/// Partial-round counts per width `t` (index by `t`).
const PARTIAL_ROUNDS: [usize; MAX_WIDTH + 1] = [0, 0, 56, 57, 60, 60];

/// Precomputed parameters (round constants and MDS matrix) for one width.
#[derive(Clone, Debug)]
pub struct PoseidonParams {
    /// State width.
    pub t: usize,
    /// Number of partial rounds.
    pub rounds_p: usize,
    /// `(FULL_ROUNDS + rounds_p) * t` round constants, row-major per round.
    pub round_constants: Vec<Fr>,
    /// `t × t` MDS matrix, row-major.
    pub mds: Vec<Vec<Fr>>,
}

impl PoseidonParams {
    /// Generates the deterministic parameter set for width `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `MIN_WIDTH..=MAX_WIDTH`.
    pub fn generate(t: usize) -> PoseidonParams {
        assert!(
            (MIN_WIDTH..=MAX_WIDTH).contains(&t),
            "unsupported poseidon width {t}"
        );
        let rounds_p = PARTIAL_ROUNDS[t];
        let n_constants = (FULL_ROUNDS + rounds_p) * t;
        let mut round_constants = Vec::with_capacity(n_constants);
        for i in 0..n_constants {
            round_constants.push(field_from_domain(&format!("wakurln-poseidon-rc-t{t}-{i}")));
        }
        // Cauchy MDS: x_i = i, y_j = t + j; all x_i + y_j distinct & nonzero.
        let mut mds = Vec::with_capacity(t);
        for i in 0..t {
            let mut row = Vec::with_capacity(t);
            for j in 0..t {
                let denom = Fr::from_u64((i + t + j) as u64);
                row.push(denom.inverse().expect("x_i + y_j is never zero"));
            }
            mds.push(row);
        }
        PoseidonParams {
            t,
            rounds_p,
            round_constants,
            mds,
        }
    }

    /// Total number of rounds (full + partial).
    pub fn total_rounds(&self) -> usize {
        FULL_ROUNDS + self.rounds_p
    }
}

/// Derives a field element from a domain-separation string by expanding
/// SHA-256 output to 64 bytes and reducing (negligible bias).
fn field_from_domain(domain: &str) -> Fr {
    let mut wide = [0u8; 64];
    let d0 = Sha256::digest(domain.as_bytes());
    let mut second = Sha256::new();
    second.update(&d0);
    second.update(b"/2");
    let d1 = second.finalize();
    wide[..32].copy_from_slice(&d0);
    wide[32..].copy_from_slice(&d1);
    Fr::from_uniform_bytes(&wide)
}

fn params_cache(t: usize) -> &'static PoseidonParams {
    static CACHE: [OnceLock<PoseidonParams>; MAX_WIDTH + 1] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    CACHE[t].get_or_init(|| PoseidonParams::generate(t))
}

/// The x⁵ S-box.
#[inline]
pub fn sbox(x: Fr) -> Fr {
    let x2 = x.square();
    let x4 = x2.square();
    x4 * x
}

/// Applies the Poseidon permutation in place.
///
/// # Panics
///
/// Panics if `state.len()` is not a supported width.
pub fn permute(state: &mut [Fr]) {
    let params = params_cache(state.len());
    permute_with(params, state);
}

/// Applies the permutation using explicit parameters (used by the circuit
/// gadget so that the in-circuit and native computations share one source
/// of truth).
pub fn permute_with(params: &PoseidonParams, state: &mut [Fr]) {
    assert_eq!(state.len(), params.t, "state width mismatch");
    let t = params.t;
    let half_full = FULL_ROUNDS / 2;
    let total = params.total_rounds();
    let mut scratch = vec![Fr::ZERO; t];
    for round in 0..total {
        // AddRoundKey
        for (i, s) in state.iter_mut().enumerate() {
            *s += params.round_constants[round * t + i];
        }
        // S-box layer: full rounds apply to the whole state, partial rounds
        // only to lane 0.
        let is_full = round < half_full || round >= half_full + params.rounds_p;
        if is_full {
            for s in state.iter_mut() {
                *s = sbox(*s);
            }
        } else {
            state[0] = sbox(state[0]);
        }
        // MDS mix
        for (i, slot) in scratch.iter_mut().enumerate() {
            let mut acc = Fr::ZERO;
            for (j, s) in state.iter().enumerate() {
                acc += params.mds[i][j] * *s;
            }
            *slot = acc;
        }
        state.copy_from_slice(&scratch);
    }
}

/// Hashes exactly one field element (width-2 compression, capacity lane 0).
///
/// This is RLN's `pk = H(sk)` and `φ = H(a1)`.
pub fn hash1(a: Fr) -> Fr {
    let mut state = [Fr::ZERO, a];
    permute(&mut state);
    state[0]
}

/// Hashes exactly two field elements (width-3 compression). This is the
/// Merkle node hash and RLN's `a1 = H(sk, ∅)`.
pub fn hash2(a: Fr, b: Fr) -> Fr {
    let mut state = [Fr::ZERO, a, b];
    permute(&mut state);
    state[0]
}

/// Hashes exactly three field elements (width-4 compression).
pub fn hash3(a: Fr, b: Fr, c: Fr) -> Fr {
    let mut state = [Fr::ZERO, a, b, c];
    permute(&mut state);
    state[0]
}

/// Variable-length sponge hash with rate 2 (width 3), padded with the
/// length to prevent extension ambiguity.
///
/// ```
/// use wakurln_crypto::{field::Fr, poseidon};
///
/// let a = poseidon::hash_many(&[Fr::from_u64(1)]);
/// let b = poseidon::hash_many(&[Fr::from_u64(1), Fr::ZERO]);
/// assert_ne!(a, b, "length is domain-separated");
/// ```
pub fn hash_many(inputs: &[Fr]) -> Fr {
    let mut state = [Fr::from_u64(inputs.len() as u64), Fr::ZERO, Fr::ZERO];
    for chunk in inputs.chunks(2) {
        state[1] += chunk[0];
        if let Some(second) = chunk.get(1) {
            state[2] += *second;
        }
        permute(&mut state);
    }
    if inputs.is_empty() {
        permute(&mut state);
    }
    state[0]
}

/// Hashes arbitrary bytes into the field: bytes are absorbed through
/// SHA-256 (64-byte expansion) then mapped with [`Fr::from_uniform_bytes`].
///
/// RLN uses this to map the application message `m` to the Shamir
/// evaluation point `x = H(m)`.
pub fn hash_bytes_to_field(bytes: &[u8]) -> Fr {
    let mut wide = [0u8; 64];
    let mut h0 = Sha256::new();
    h0.update(b"wakurln-h2f-0");
    h0.update(bytes);
    let mut h1 = Sha256::new();
    h1.update(b"wakurln-h2f-1");
    h1.update(bytes);
    wide[..32].copy_from_slice(&h0.finalize());
    wide[32..].copy_from_slice(&h1.finalize());
    Fr::from_uniform_bytes(&wide)
}

/// Returns the shared parameter set for width `t`.
///
/// # Panics
///
/// Panics if `t` is outside the supported range.
pub fn params(t: usize) -> &'static PoseidonParams {
    params_cache(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        let a = hash2(Fr::from_u64(1), Fr::from_u64(2));
        let b = hash2(Fr::from_u64(1), Fr::from_u64(2));
        assert_eq!(a, b);
    }

    #[test]
    fn argument_order_matters() {
        assert_ne!(
            hash2(Fr::from_u64(1), Fr::from_u64(2)),
            hash2(Fr::from_u64(2), Fr::from_u64(1))
        );
    }

    #[test]
    fn widths_are_domain_separated() {
        // hash1(x) must differ from hash2(x, 0): different widths use
        // different parameter sets.
        let x = Fr::from_u64(42);
        assert_ne!(hash1(x), hash2(x, Fr::ZERO));
    }

    #[test]
    fn permutation_is_not_identity() {
        let mut state = [Fr::ZERO, Fr::ZERO, Fr::ZERO];
        permute(&mut state);
        assert_ne!(state, [Fr::ZERO, Fr::ZERO, Fr::ZERO]);
    }

    #[test]
    fn mds_rows_are_distinct_and_nonzero() {
        let p = PoseidonParams::generate(3);
        for row in &p.mds {
            for entry in row {
                assert!(!entry.is_zero());
            }
        }
        assert_ne!(p.mds[0], p.mds[1]);
        assert_ne!(p.mds[1], p.mds[2]);
    }

    #[test]
    fn round_constant_counts() {
        for t in MIN_WIDTH..=MAX_WIDTH {
            let p = PoseidonParams::generate(t);
            assert_eq!(p.round_constants.len(), p.total_rounds() * t);
        }
    }

    #[test]
    fn hash_many_empty_and_singleton_differ() {
        assert_ne!(hash_many(&[]), hash_many(&[Fr::ZERO]));
    }

    #[test]
    fn hash_many_matches_manual_absorption_length_tag() {
        // two different-length inputs with identical absorbed data differ
        let one = hash_many(&[Fr::from_u64(9)]);
        let padded = hash_many(&[Fr::from_u64(9), Fr::ZERO]);
        assert_ne!(one, padded);
    }

    #[test]
    fn hash_bytes_to_field_differs_per_input() {
        assert_ne!(hash_bytes_to_field(b"hello"), hash_bytes_to_field(b"hellp"));
        assert_ne!(hash_bytes_to_field(b""), hash_bytes_to_field(b"\0"));
    }

    #[test]
    #[should_panic(expected = "unsupported poseidon width")]
    fn unsupported_width_panics() {
        PoseidonParams::generate(9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_hash2_collision_resistant_on_random_inputs(
            a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>()
        ) {
            let x = hash2(Fr::from_u64(a), Fr::from_u64(b));
            let y = hash2(Fr::from_u64(c), Fr::from_u64(d));
            if (a, b) != (c, d) {
                prop_assert_ne!(x, y);
            } else {
                prop_assert_eq!(x, y);
            }
        }

        #[test]
        fn prop_permutation_bijective_on_samples(a in any::<u64>(), b in any::<u64>()) {
            // distinct states map to distinct outputs (injectivity sample)
            let mut s1 = [Fr::ZERO, Fr::from_u64(a), Fr::from_u64(b)];
            let mut s2 = [Fr::ONE, Fr::from_u64(a), Fr::from_u64(b)];
            permute(&mut s1);
            permute(&mut s2);
            prop_assert_ne!(s1, s2);
        }
    }
}
