//! Arithmetic in the BN254 scalar field `Fr`.
//!
//! This is a from-scratch implementation of the prime field
//! `F_r` with
//! `r = 21888242871839275222246405745257275088548364400416034343698204186575808495617`,
//! the scalar field of the BN254 pairing curve used by the original RLN
//! library ([kilic/rln](https://github.com/kilic/rln)) that the paper's
//! proof-of-concept builds on.
//!
//! Elements are stored in Montgomery form (`a·R mod r` with `R = 2^256`)
//! as four little-endian 64-bit limbs. All Montgomery constants are derived
//! at compile time by `const fn`s, so the implementation is self-contained
//! and depends on nothing outside `core`.
//!
//! # Examples
//!
//! ```
//! use wakurln_crypto::field::Fr;
//!
//! let a = Fr::from_u64(7);
//! let b = Fr::from_u64(6);
//! assert_eq!(a * b, Fr::from_u64(42));
//! assert_eq!(a * a.inverse().unwrap(), Fr::ONE);
//! ```

use core::cmp::Ordering;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::RngCore;

/// The BN254 scalar field modulus `r`, as four little-endian 64-bit limbs.
///
/// `r = 0x30644e72e131a029_b85045b68181585d_2833e84879b97091_43e1f593f0000001`
pub const MODULUS: [u64; 4] = [
    0x43e1f593f0000001,
    0x2833e84879b97091,
    0xb85045b68181585d,
    0x30644e72e131a029,
];

/// `(r - 1) / 2`, used by [`Fr::is_odd`]-style sign checks and sqrt.
const MODULUS_MINUS_ONE_DIV_TWO: [u64; 4] = [
    0xa1f0fac9f8000000,
    0x9419f4243cdcb848,
    0xdc2822db40c0ac2e,
    0x183227397098d014,
];

/// `r - 2`, the exponent used for Fermat inversion.
const MODULUS_MINUS_TWO: [u64; 4] = [
    0x43e1f593efffffff,
    0x2833e84879b97091,
    0xb85045b68181585d,
    0x30644e72e131a029,
];

/// `-r^{-1} mod 2^64`, the Montgomery reduction constant.
const INV: u64 = compute_inv();

/// `R = 2^256 mod r` (the Montgomery radix), i.e. the representation of `1`.
const R: [u64; 4] = compute_two_pow_mod(256);

/// `R^2 = 2^512 mod r`, used to convert into Montgomery form.
const R2: [u64; 4] = compute_two_pow_mod(512);

/// `R^3 = 2^768 mod r`, used by wide (512-bit) reductions.
const R3: [u64; 4] = compute_two_pow_mod(768);

/// Number of bits needed to represent the modulus.
pub const MODULUS_BITS: u32 = 254;

/// Number of bytes in the canonical serialization of a field element.
pub const SERIALIZED_BYTES: usize = 32;

// ---------------------------------------------------------------------------
// const-fn helpers used to derive the Montgomery constants at compile time
// ---------------------------------------------------------------------------

const fn compute_inv() -> u64 {
    // Newton–Raphson style fixed point iteration: after 63 doublings of the
    // number of correct low bits we have r^{-1} mod 2^64; negate it.
    let mut inv = 1u64;
    let mut i = 0;
    while i < 63 {
        inv = inv.wrapping_mul(inv);
        inv = inv.wrapping_mul(MODULUS[0]);
        i += 1;
    }
    inv.wrapping_neg()
}

const fn const_geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    let mut i = 3;
    loop {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
        if i == 0 {
            return true;
        }
        i -= 1;
    }
}

const fn const_sub(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    let mut i = 0;
    while i < 4 {
        let t = (a[i] as u128)
            .wrapping_sub(b[i] as u128)
            .wrapping_sub(borrow as u128);
        out[i] = t as u64;
        borrow = ((t >> 64) as u64) & 1;
        i += 1;
    }
    out
}

/// Computes `2^k mod r` by repeated modular doubling.
///
/// Doubling never overflows 256 bits because `r < 2^254`, so any reduced
/// value is `< 2^254` and its double `< 2^255`.
const fn compute_two_pow_mod(k: usize) -> [u64; 4] {
    let mut acc = [1u64, 0, 0, 0];
    let mut i = 0;
    while i < k {
        // acc <<= 1
        let mut next = [0u64; 4];
        let mut carry = 0u64;
        let mut j = 0;
        while j < 4 {
            next[j] = (acc[j] << 1) | carry;
            carry = acc[j] >> 63;
            j += 1;
        }
        acc = next;
        if const_geq(&acc, &MODULUS) {
            acc = const_sub(&acc, &MODULUS);
        }
        i += 1;
    }
    acc
}

// ---------------------------------------------------------------------------
// limb primitives
// ---------------------------------------------------------------------------

/// `a + b * c + carry`, returning `(low, high)`.
#[inline(always)]
const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// `a + b + carry`, returning `(low, carry)`.
#[inline(always)]
const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// `a - b - borrow`, returning `(low, borrow)` with `borrow ∈ {0, 1}`.
#[inline(always)]
const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

// ---------------------------------------------------------------------------
// Fr
// ---------------------------------------------------------------------------

/// An element of the BN254 scalar field, stored in Montgomery form.
///
/// Field elements are always kept fully reduced (`< r`), so derived
/// equality and hashing on the raw limbs are canonical.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fr(pub(crate) [u64; 4]);

impl Fr {
    /// The additive identity.
    pub const ZERO: Fr = Fr([0, 0, 0, 0]);
    /// The multiplicative identity (`R mod r` in Montgomery form).
    pub const ONE: Fr = Fr(R);

    /// Creates a field element from a `u64`.
    ///
    /// ```
    /// # use wakurln_crypto::field::Fr;
    /// assert_eq!(Fr::from_u64(0), Fr::ZERO);
    /// assert_eq!(Fr::from_u64(1), Fr::ONE);
    /// ```
    pub fn from_u64(v: u64) -> Fr {
        Fr::from_repr_unchecked([v, 0, 0, 0])
    }

    /// Creates a field element from a `u128`.
    pub fn from_u128(v: u128) -> Fr {
        Fr::from_repr_unchecked([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Converts a canonical (non-Montgomery) 4-limb little-endian integer
    /// that is already known to be `< r` into Montgomery form.
    fn from_repr_unchecked(repr: [u64; 4]) -> Fr {
        debug_assert!(!const_geq(&repr, &MODULUS));
        Fr(mont_mul(&repr, &R2))
    }

    /// Parses a canonical little-endian 32-byte representation.
    ///
    /// Returns `None` if the encoded integer is not fully reduced
    /// (i.e. `>= r`).
    pub fn from_bytes_le(bytes: &[u8; 32]) -> Option<Fr> {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            *limb = u64::from_le_bytes(chunk);
        }
        if const_geq(&limbs, &MODULUS) {
            return None;
        }
        Some(Fr::from_repr_unchecked(limbs))
    }

    /// Interprets 64 uniformly random bytes as a field element with
    /// negligible bias (the 512-bit integer is reduced mod `r`).
    ///
    /// This is the preferred way to map hash output or RNG output into the
    /// field.
    pub fn from_uniform_bytes(bytes: &[u8; 64]) -> Fr {
        let mut lo = [0u64; 4];
        let mut hi = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            lo[i] = u64::from_le_bytes(chunk);
            chunk.copy_from_slice(&bytes[32 + i * 8..32 + (i + 1) * 8]);
            hi[i] = u64::from_le_bytes(chunk);
        }
        // value = lo + hi·2^256; in Montgomery form:
        // lo·R = mont_mul(lo, R2), hi·2^256·R = hi·R·R = mont_mul(hi, R3)
        let lo_m = Fr(mont_mul(&lo, &R2));
        let hi_m = Fr(mont_mul(&hi, &R3));
        lo_m + hi_m
    }

    /// Samples a uniformly random field element.
    pub fn random<Rng: RngCore + ?Sized>(rng: &mut Rng) -> Fr {
        let mut bytes = [0u8; 64];
        rng.fill_bytes(&mut bytes);
        Fr::from_uniform_bytes(&bytes)
    }

    /// Returns the canonical little-endian 32-byte representation.
    pub fn to_bytes_le(&self) -> [u8; 32] {
        let repr = self.to_repr();
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&repr[i].to_le_bytes());
        }
        out
    }

    /// Returns the canonical (non-Montgomery) little-endian limbs.
    pub fn to_repr(&self) -> [u64; 4] {
        mont_reduce(&[self.0[0], self.0[1], self.0[2], self.0[3], 0, 0, 0, 0])
    }

    /// `true` iff this is the additive identity.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// `true` iff this is the multiplicative identity.
    pub fn is_one(&self) -> bool {
        self.0 == R
    }

    /// `true` iff the canonical representation is an odd integer.
    pub fn is_odd(&self) -> bool {
        // lint:allow(panic-path, reason = "to_repr returns [u8; 32]; index 0 is always in range")
        self.to_repr()[0] & 1 == 1
    }

    /// Doubles the element.
    #[inline]
    pub fn double(&self) -> Fr {
        *self + *self
    }

    /// Squares the element.
    #[inline]
    pub fn square(&self) -> Fr {
        Fr(mont_mul(&self.0, &self.0))
    }

    /// Raises the element to the power given as four little-endian limbs.
    pub fn pow(&self, exp: &[u64; 4]) -> Fr {
        let mut res = Fr::ONE;
        for &limb in exp.iter().rev() {
            for bit in (0..64).rev() {
                res = res.square();
                if (limb >> bit) & 1 == 1 {
                    res *= *self;
                }
            }
        }
        res
    }

    /// Multiplicative inverse via Fermat's little theorem (`a^{r-2}`).
    ///
    /// Returns `None` for zero, which has no inverse.
    pub fn inverse(&self) -> Option<Fr> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(&MODULUS_MINUS_TWO))
        }
    }

    /// Whether the canonical integer is in the "high" half of the field
    /// (strictly greater than `(r-1)/2`). Useful for canonical sign checks.
    pub fn is_high(&self) -> bool {
        let repr = self.to_repr();
        !const_geq(&MODULUS_MINUS_ONE_DIV_TWO, &repr)
    }
}

/// Schoolbook 256×256→512-bit multiply followed by Montgomery reduction.
#[inline]
fn mont_mul(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut t = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u64;
        for j in 0..4 {
            let (lo, hi) = mac(t[i + j], a[i], b[j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        t[i + 4] = carry;
    }
    mont_reduce(&t)
}

/// Montgomery reduction of a 512-bit value: returns `t · R^{-1} mod r`,
/// fully reduced.
#[inline]
fn mont_reduce(t: &[u64; 8]) -> [u64; 4] {
    let mut r = *t;
    let mut carry2 = 0u64;
    for i in 0..4 {
        let k = r[i].wrapping_mul(INV);
        let mut carry = 0u64;
        for j in 0..4 {
            let (lo, hi) = mac(r[i + j], k, MODULUS[j], carry);
            r[i + j] = lo;
            carry = hi;
        }
        let (lo, hi) = adc(r[i + 4], carry2, carry);
        r[i + 4] = lo;
        carry2 = hi;
    }
    // lint:allow(panic-path, reason = "r is a [u64; 8] copied from *t; indices 4..8 are in range")
    let mut out = [r[4], r[5], r[6], r[7]];
    // carry2 can be at most 1; in that case the value is >= 2^256 > r and a
    // single conditional subtraction still suffices because the
    // intermediate is < 2r.
    if carry2 != 0 || const_geq(&out, &MODULUS) {
        out = const_sub(&out, &MODULUS);
    }
    out
}

impl Add for Fr {
    type Output = Fr;
    #[inline]
    #[allow(clippy::needless_range_loop)]
    fn add(self, rhs: Fr) -> Fr {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (lo, c) = adc(self.0[i], rhs.0[i], carry);
            out[i] = lo;
            carry = c;
        }
        // Both inputs are < r < 2^254, so the sum is < 2^255: no carry out.
        debug_assert_eq!(carry, 0);
        if const_geq(&out, &MODULUS) {
            out = const_sub(&out, &MODULUS);
        }
        Fr(out)
    }
}

impl Sub for Fr {
    type Output = Fr;
    #[inline]
    #[allow(clippy::needless_range_loop)]
    fn sub(self, rhs: Fr) -> Fr {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            let (lo, b) = sbb(self.0[i], rhs.0[i], borrow);
            out[i] = lo;
            borrow = b;
        }
        if borrow != 0 {
            let mut carry = 0u64;
            for (o, m) in out.iter_mut().zip(MODULUS.iter()) {
                let (lo, c) = adc(*o, *m, carry);
                *o = lo;
                carry = c;
            }
        }
        Fr(out)
    }
}

impl Neg for Fr {
    type Output = Fr;
    fn neg(self) -> Fr {
        Fr::ZERO - self
    }
}

impl Mul for Fr {
    type Output = Fr;
    #[inline]
    fn mul(self, rhs: Fr) -> Fr {
        Fr(mont_mul(&self.0, &rhs.0))
    }
}

impl AddAssign for Fr {
    #[inline]
    fn add_assign(&mut self, rhs: Fr) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fr {
    #[inline]
    fn sub_assign(&mut self, rhs: Fr) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fr {
    #[inline]
    fn mul_assign(&mut self, rhs: Fr) {
        *self = *self * rhs;
    }
}

impl<'a> Add<&'a Fr> for Fr {
    type Output = Fr;
    fn add(self, rhs: &'a Fr) -> Fr {
        self + *rhs
    }
}
impl<'a> Sub<&'a Fr> for Fr {
    type Output = Fr;
    fn sub(self, rhs: &'a Fr) -> Fr {
        self - *rhs
    }
}
impl<'a> Mul<&'a Fr> for Fr {
    type Output = Fr;
    fn mul(self, rhs: &'a Fr) -> Fr {
        self * *rhs
    }
}

impl Sum for Fr {
    fn sum<I: Iterator<Item = Fr>>(iter: I) -> Fr {
        iter.fold(Fr::ZERO, |acc, x| acc + x)
    }
}

impl Product for Fr {
    fn product<I: Iterator<Item = Fr>>(iter: I) -> Fr {
        iter.fold(Fr::ONE, |acc, x| acc * x)
    }
}

impl From<u64> for Fr {
    fn from(v: u64) -> Fr {
        Fr::from_u64(v)
    }
}

impl From<u128> for Fr {
    fn from(v: u128) -> Fr {
        Fr::from_u128(v)
    }
}

impl From<bool> for Fr {
    fn from(v: bool) -> Fr {
        if v {
            Fr::ONE
        } else {
            Fr::ZERO
        }
    }
}

impl PartialOrd for Fr {
    fn partial_cmp(&self, other: &Fr) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fr {
    /// Compares the canonical integer representations.
    fn cmp(&self, other: &Fr) -> Ordering {
        let a = self.to_repr();
        let b = other.to_repr();
        for i in (0..4).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for Fr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fr(0x")?;
        let repr = self.to_repr();
        for limb in repr.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Fr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        let repr = self.to_repr();
        for limb in repr.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        Ok(())
    }
}

impl serde::Serialize for Fr {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(&self.to_bytes_le())
    }
}

impl<'de> serde::Deserialize<'de> for Fr {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Fr, D::Error> {
        struct V;
        impl<'de> serde::de::Visitor<'de> for V {
            type Value = Fr;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("32 little-endian bytes encoding a reduced BN254 scalar")
            }
            fn visit_bytes<E: serde::de::Error>(self, v: &[u8]) -> Result<Fr, E> {
                if v.len() != 32 {
                    return Err(E::invalid_length(v.len(), &self));
                }
                let mut b = [0u8; 32];
                b.copy_from_slice(v);
                Fr::from_bytes_le(&b).ok_or_else(|| E::custom("field element not fully reduced"))
            }
            fn visit_seq<A: serde::de::SeqAccess<'de>>(self, mut seq: A) -> Result<Fr, A::Error> {
                let mut b = [0u8; 32];
                for (i, slot) in b.iter_mut().enumerate() {
                    *slot = seq
                        .next_element()?
                        .ok_or_else(|| serde::de::Error::invalid_length(i, &self))?;
                }
                Fr::from_bytes_le(&b)
                    .ok_or_else(|| serde::de::Error::custom("field element not fully reduced"))
            }
        }
        d.deserialize_bytes(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // -- reference big-integer arithmetic used to cross-check Montgomery --

    fn ref_add_mod(a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
        let mut wide = [0u64; 5];
        let mut carry = 0u64;
        for i in 0..4 {
            let (lo, c) = adc(a[i], b[i], carry);
            wide[i] = lo;
            carry = c;
        }
        wide[4] = carry;
        ref_mod_512(&[wide[0], wide[1], wide[2], wide[3], wide[4], 0, 0, 0])
    }

    fn ref_mul_mod(a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u64;
            for j in 0..4 {
                let (lo, hi) = mac(t[i + j], a[i], b[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            t[i + 4] = carry;
        }
        ref_mod_512(&t)
    }

    /// Binary long division: reduce a 512-bit value modulo `r`.
    fn ref_mod_512(t: &[u64; 8]) -> [u64; 4] {
        let mut rem = [0u64; 8];
        for bit in (0..512).rev() {
            // rem = rem * 2 + bit(t)
            let mut carry = (t[bit / 64] >> (bit % 64)) & 1;
            for limb in rem.iter_mut() {
                let new_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = new_carry;
            }
            // if rem >= r, rem -= r (r occupies low 4 limbs)
            let ge = {
                if rem[4] | rem[5] | rem[6] | rem[7] != 0 {
                    true
                } else {
                    const_geq(&[rem[0], rem[1], rem[2], rem[3]], &MODULUS)
                }
            };
            if ge {
                let mut borrow = 0u64;
                for i in 0..8 {
                    let m = if i < 4 { MODULUS[i] } else { 0 };
                    let (lo, b) = sbb(rem[i], m, borrow);
                    rem[i] = lo;
                    borrow = b;
                }
            }
        }
        [rem[0], rem[1], rem[2], rem[3]]
    }

    fn arb_limbs() -> impl Strategy<Value = [u64; 4]> {
        (any::<[u64; 4]>()).prop_map(|mut l| {
            // force < r by clearing top bits then conditional subtract
            l[3] &= 0x0fffffffffffffff;
            if const_geq(&l, &MODULUS) {
                l = const_sub(&l, &MODULUS);
            }
            l
        })
    }

    fn fr_from_limbs(l: [u64; 4]) -> Fr {
        Fr::from_repr_unchecked(l)
    }

    #[test]
    fn constants_are_consistent() {
        // INV * r ≡ -1 (mod 2^64)
        assert_eq!(INV.wrapping_mul(MODULUS[0]), u64::MAX);
        // R is the Montgomery form of 1
        assert_eq!(Fr::ONE.to_repr(), [1, 0, 0, 0]);
        // R2 converts correctly: from_u64(1) == ONE
        assert_eq!(Fr::from_u64(1), Fr::ONE);
        // R3 = R * R2 (as plain integers modulo r)
        assert_eq!(ref_mul_mod(R, R2), ref_mul_mod(R2, R));
        assert_eq!(mont_mul(&R2, &R2), mont_mul(&R3, &R));
    }

    #[test]
    fn zero_and_one_behave() {
        assert!(Fr::ZERO.is_zero());
        assert!(Fr::ONE.is_one());
        assert!(!Fr::ONE.is_zero());
        assert_eq!(Fr::ZERO + Fr::ONE, Fr::ONE);
        assert_eq!(Fr::ONE * Fr::ZERO, Fr::ZERO);
        assert_eq!(Fr::default(), Fr::ZERO);
    }

    #[test]
    fn small_integer_arithmetic_matches_u128() {
        for a in [0u64, 1, 2, 7, 255, 1 << 40] {
            for b in [0u64, 1, 3, 12, 100_000] {
                assert_eq!(
                    Fr::from_u64(a) * Fr::from_u64(b),
                    Fr::from_u128(a as u128 * b as u128),
                );
                assert_eq!(
                    Fr::from_u64(a) + Fr::from_u64(b),
                    Fr::from_u128(a as u128 + b as u128),
                );
            }
        }
    }

    #[test]
    fn subtraction_wraps_correctly() {
        let a = Fr::from_u64(5);
        let b = Fr::from_u64(9);
        assert_eq!(a - b + b, a);
        assert_eq!((a - b) + Fr::from_u64(4), Fr::ZERO);
        assert_eq!(-Fr::ONE + Fr::ONE, Fr::ZERO);
    }

    #[test]
    fn negation_of_zero_is_zero() {
        assert_eq!(-Fr::ZERO, Fr::ZERO);
    }

    #[test]
    fn inverse_of_one_is_one() {
        assert_eq!(Fr::ONE.inverse().unwrap(), Fr::ONE);
        assert!(Fr::ZERO.inverse().is_none());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = Fr::random(&mut rng);
            assert_eq!(Fr::from_bytes_le(&a.to_bytes_le()).unwrap(), a);
        }
    }

    #[test]
    fn non_canonical_bytes_rejected() {
        // the modulus itself is not a canonical encoding
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&MODULUS[i].to_le_bytes());
        }
        assert!(Fr::from_bytes_le(&bytes).is_none());
        // and neither is r + 1
        bytes[0] += 1;
        assert!(Fr::from_bytes_le(&bytes).is_none());
        // all 0xff is way above r
        assert!(Fr::from_bytes_le(&[0xff; 32]).is_none());
    }

    #[test]
    fn pow_small_cases() {
        let two = Fr::from_u64(2);
        assert_eq!(two.pow(&[10, 0, 0, 0]), Fr::from_u64(1024));
        assert_eq!(two.pow(&[0, 0, 0, 0]), Fr::ONE);
        assert_eq!(Fr::ZERO.pow(&[5, 0, 0, 0]), Fr::ZERO);
    }

    #[test]
    fn fermat_little_theorem() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Fr::random(&mut rng);
        // a^(r-1) == 1
        let mut exp = MODULUS_MINUS_TWO;
        exp[0] += 1; // r - 1
        assert_eq!(a.pow(&exp), Fr::ONE);
    }

    #[test]
    fn ordering_matches_integers() {
        assert!(Fr::from_u64(3) < Fr::from_u64(5));
        assert!(-Fr::ONE > Fr::from_u64(1_000_000)); // r-1 is huge
        assert!((-Fr::ONE).is_high());
        assert!(!Fr::ONE.is_high());
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Fr::random(&mut rng);
        // serde with a simple byte-oriented format via serde_test-like manual check
        let bytes = a.to_bytes_le();
        let b = Fr::from_bytes_le(&bytes).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_and_debug_are_nonempty_hex() {
        let s = format!("{}", Fr::from_u64(255));
        assert!(s.starts_with("0x"));
        assert!(s.ends_with("ff"));
        let d = format!("{:?}", Fr::ZERO);
        assert_eq!(d.len(), "Fr(0x".len() + 64 + 1);
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs: Vec<Fr> = (1..=5u64).map(Fr::from_u64).collect();
        assert_eq!(xs.iter().copied().sum::<Fr>(), Fr::from_u64(15));
        assert_eq!(xs.iter().copied().product::<Fr>(), Fr::from_u64(120));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_mul_matches_reference(a in arb_limbs(), b in arb_limbs()) {
            let got = (fr_from_limbs(a) * fr_from_limbs(b)).to_repr();
            let want = ref_mul_mod(a, b);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_add_matches_reference(a in arb_limbs(), b in arb_limbs()) {
            let got = (fr_from_limbs(a) + fr_from_limbs(b)).to_repr();
            let want = ref_add_mod(a, b);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_add_commutative(a in arb_limbs(), b in arb_limbs()) {
            let (a, b) = (fr_from_limbs(a), fr_from_limbs(b));
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_mul_commutative(a in arb_limbs(), b in arb_limbs()) {
            let (a, b) = (fr_from_limbs(a), fr_from_limbs(b));
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn prop_mul_associative(a in arb_limbs(), b in arb_limbs(), c in arb_limbs()) {
            let (a, b, c) = (fr_from_limbs(a), fr_from_limbs(b), fr_from_limbs(c));
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn prop_distributive(a in arb_limbs(), b in arb_limbs(), c in arb_limbs()) {
            let (a, b, c) = (fr_from_limbs(a), fr_from_limbs(b), fr_from_limbs(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_is_add_neg(a in arb_limbs(), b in arb_limbs()) {
            let (a, b) = (fr_from_limbs(a), fr_from_limbs(b));
            prop_assert_eq!(a - b, a + (-b));
        }

        #[test]
        fn prop_double_is_add(a in arb_limbs()) {
            let a = fr_from_limbs(a);
            prop_assert_eq!(a.double(), a + a);
        }

        #[test]
        fn prop_square_is_mul(a in arb_limbs()) {
            let a = fr_from_limbs(a);
            prop_assert_eq!(a.square(), a * a);
        }

        #[test]
        fn prop_inverse(a in arb_limbs()) {
            let a = fr_from_limbs(a);
            if !a.is_zero() {
                prop_assert_eq!(a * a.inverse().unwrap(), Fr::ONE);
            }
        }

        #[test]
        fn prop_repr_roundtrip(a in arb_limbs()) {
            let f = fr_from_limbs(a);
            prop_assert_eq!(f.to_repr(), a);
        }

        #[test]
        fn prop_uniform_bytes_in_field(bytes in any::<[u8; 64]>()) {
            let f = Fr::from_uniform_bytes(&bytes);
            // must be reduced: round-trip through canonical bytes succeeds
            prop_assert!(Fr::from_bytes_le(&f.to_bytes_le()).is_some());
        }
    }
}
