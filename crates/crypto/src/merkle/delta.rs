//! Broadcast membership deltas and the light member view they drive.
//!
//! The paper's root-window design (§IV) observes that a relay only
//! needs (a) a window of recent membership roots and (b) its **own**
//! authentication path — not the whole tree. This module is the sync
//! protocol built on that observation:
//!
//! * One canonical tree per simulation (e.g.
//!   [`FullMerkleTree`] behind a copy-on-write handle) ingests every
//!   registration burst **once**, capturing an [`AppendDelta`] — the
//!   recomputed node span of every level plus the pre-batch frontier —
//!   in `O(n + depth)` hashes for `n` appends.
//! * Every member applies the delta to its [`MemberView`] with **pure
//!   table lookups, zero hashes**: each own-path sibling either lies
//!   inside the broadcast span (take it), left of it (unchanged, or the
//!   pre-batch frontier when the member itself registers in the burst),
//!   or right of it (still the zero subtree).
//!
//! Against the previous per-node replay (`n` members × `O(n + depth)`
//! hashes each, i.e. `n²`-ish Poseidon work per simulation), group sync
//! now costs `O(n + depth)` hashes at the canonical tree plus
//! `O(depth)` lookups per member — the `n²·depth → n·depth` reduction
//! the 100k-node scenarios require.
//!
//! Deletion (slashing) broadcasts an [`UpdateDelta`] — the rewritten
//! root-ward branch of one index — applied the same way.
//!
//! The equivalence suite in `tests/` holds a delta-fed [`MemberView`]
//! bit-identical to the eagerly-hashing [`SyncedPathTree`] across
//! random register/slash interleavings.

use super::{validate_depth, zero_hashes, FullMerkleTree, MerkleError, MerkleProof};
use crate::field::Fr;
use serde::{Deserialize, Serialize};

/// Everything a registration burst changed in the canonical tree, in
/// broadcastable form: `O(n + depth)` field elements for `n` appends.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppendDelta {
    /// Index of the first appended leaf.
    pub start: u64,
    /// Number of appended leaves.
    pub count: u64,
    /// Tree root after the batch.
    pub root: Fr,
    /// For each level below the root: the node immediately left of the
    /// batch span, when that node is a right-pairing left sibling
    /// (`Some` exactly when `start >> level` is odd). A member whose own
    /// leaf sits in the burst takes these as its left-edge siblings.
    pub pre_frontier: Vec<Option<Fr>>,
    /// For each level below the root: the recomputed node values over
    /// the span the batch dirtied — `spans[level]` starts at tree
    /// position `start >> level`. `spans[0]` is the appended leaves.
    pub spans: Vec<Vec<Fr>>,
}

impl AppendDelta {
    /// The appended leaves (level-0 span).
    pub fn leaves(&self) -> &[Fr] {
        // lint:allow(panic-path, reason = "spans always holds depth+1 levels; level 0 (the appended leaves) exists for any valid delta")
        &self.spans[0]
    }

    /// Total field elements carried (bandwidth accounting).
    pub fn node_count(&self) -> usize {
        self.spans.iter().map(Vec::len).sum::<usize>()
            + self.pre_frontier.iter().flatten().count()
            + 1
    }
}

/// Everything a single-leaf update (member deletion) changed in the
/// canonical tree: the rewritten branch from the leaf to the root.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UpdateDelta {
    /// The updated leaf index.
    pub index: u64,
    /// The new leaf value ([`super::EMPTY_LEAF`] for deletion).
    pub leaf: Fr,
    /// Tree root after the update.
    pub root: Fr,
    /// `branch[level]` is the new node value at tree position
    /// `index >> level` — the rewritten root-ward path (levels below
    /// the root; `branch[0]` equals `leaf`).
    pub branch: Vec<Fr>,
}

impl FullMerkleTree {
    /// [`FullMerkleTree::append_batch`], additionally capturing the
    /// [`AppendDelta`] that lets light members follow the change
    /// without re-hashing. Same atomicity: on error the tree is
    /// untouched.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] when the batch does not fit.
    pub fn append_batch_with_delta(&mut self, leaves: &[Fr]) -> Result<AppendDelta, MerkleError> {
        let depth = self.depth();
        let start = self.next_index();
        if leaves.is_empty() {
            return Ok(AppendDelta {
                start,
                count: 0,
                root: self.root(),
                pre_frontier: vec![None; depth],
                spans: vec![Vec::new(); depth],
            });
        }
        // the pre-batch frontier must be read before the append rewrites
        // the spans (the nodes themselves are untouched — they sit left
        // of the dirty span — but reading first keeps this obviously so)
        let mut pre_frontier = Vec::with_capacity(depth);
        for level in 0..depth {
            let pos = start >> level;
            pre_frontier.push(if pos & 1 == 1 {
                Some(self.node(level, pos - 1))
            } else {
                None
            });
        }
        self.append_batch(leaves)?;
        let end = start + leaves.len() as u64 - 1;
        let mut spans = Vec::with_capacity(depth);
        for level in 0..depth {
            let lo = start >> level;
            let hi = end >> level;
            spans.push(
                (lo..=hi)
                    .map(|pos| self.node(level, pos))
                    .collect::<Vec<Fr>>(),
            );
        }
        Ok(AppendDelta {
            start,
            count: leaves.len() as u64,
            root: self.root(),
            pre_frontier,
            spans,
        })
    }

    /// [`FullMerkleTree::set`], additionally capturing the
    /// [`UpdateDelta`] (rewritten branch) for light members.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::IndexOutOfRange`] for indices beyond
    /// capacity.
    pub fn set_with_delta(&mut self, index: u64, leaf: Fr) -> Result<UpdateDelta, MerkleError> {
        self.set(index, leaf)?;
        let branch = (0..self.depth())
            .map(|level| self.node(level, index >> level))
            .collect();
        Ok(UpdateDelta {
            index,
            leaf,
            root: self.root(),
            branch,
        })
    }
}

/// A member's own standing in the group: leaf index, leaf value and
/// authentication path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct OwnPath {
    index: u64,
    leaf: Fr,
    siblings: Vec<Fr>,
}

/// The light membership view a relay keeps (§IV): the current root and
/// its own authentication path — `O(depth)` storage, `O(depth)` lookup
/// work per delta, **zero** local hashing.
///
/// Contrast with [`SyncedPathTree`](super::SyncedPathTree), which
/// re-hashes every other member's registration locally; the equivalence
/// property suite holds the two bit-identical under the same event
/// stream.
///
/// # Examples
///
/// ```
/// use wakurln_crypto::{field::Fr, merkle::{FullMerkleTree, MemberView}};
///
/// let mut canonical = FullMerkleTree::new(10)?;
/// let mut view = MemberView::new(10)?;
/// let burst: Vec<Fr> = (1..=5u64).map(Fr::from_u64).collect();
/// let delta = canonical.append_batch_with_delta(&burst)?;
/// view.apply_append(&delta, Some(2))?; // this member is burst[2]
/// let proof = view.own_proof().expect("registered");
/// assert!(proof.verify(canonical.root(), Fr::from_u64(3)));
/// # Ok::<(), wakurln_crypto::merkle::MerkleError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemberView {
    depth: usize,
    /// Leaves the canonical tree holds after the last applied delta.
    next_index: u64,
    root: Fr,
    own: Option<OwnPath>,
}

impl MemberView {
    /// An empty-group view of the given depth.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::UnsupportedDepth`] like the trees.
    pub fn new(depth: usize) -> Result<MemberView, MerkleError> {
        validate_depth(depth)?;
        Ok(MemberView {
            depth,
            next_index: 0,
            root: zero_hashes()[depth],
            own: None,
        })
    }

    /// The tree depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Leaves assigned in the canonical tree, as of the last delta.
    pub fn len(&self) -> u64 {
        self.next_index
    }

    /// `true` before any delta was applied.
    pub fn is_empty(&self) -> bool {
        self.next_index == 0
    }

    /// The current membership root.
    pub fn root(&self) -> Fr {
        self.root
    }

    /// This member's leaf index, when registered and not deleted.
    pub fn own_index(&self) -> Option<u64> {
        self.own.as_ref().map(|o| o.index)
    }

    /// This member's authentication path, when registered (kept current
    /// against [`MemberView::root`] by delta application).
    pub fn own_proof(&self) -> Option<MerkleProof> {
        self.own.as_ref().map(|o| MerkleProof {
            index: o.index,
            siblings: o.siblings.clone(),
        })
    }

    /// Resident bytes of this view: the root plus the own path — the
    /// per-member storage the §IV light design quotes, independent of
    /// group size.
    pub fn storage_bytes(&self) -> usize {
        let own = match &self.own {
            Some(o) => (o.siblings.len() + 1) * 32,
            None => 0,
        };
        32 + own
    }

    /// Applies a registration-burst delta. `own_offset` marks this
    /// member's position within the burst (`Some(i)` ⇒ leaf
    /// `delta.start + i` is ours): the own path is built right out of
    /// the delta. Otherwise any existing own path is refreshed where
    /// the burst's span crosses its siblings. No hashing either way.
    ///
    /// # Errors
    ///
    /// * [`MerkleError::StaleWitness`] when the delta does not continue
    ///   this view's leaf count (a missed or replayed burst).
    /// * [`MerkleError::IndexOutOfRange`] for an `own_offset` outside
    ///   the burst.
    pub fn apply_append(
        &mut self,
        delta: &AppendDelta,
        own_offset: Option<u64>,
    ) -> Result<(), MerkleError> {
        if delta.start != self.next_index {
            return Err(MerkleError::StaleWitness);
        }
        if delta.count == 0 {
            return Ok(());
        }
        let span_end = delta.start + delta.count - 1;
        if let Some(offset) = own_offset {
            if offset >= delta.count {
                return Err(MerkleError::IndexOutOfRange {
                    index: offset,
                    capacity: delta.count,
                });
            }
            let index = delta.start + offset;
            let zeros = zero_hashes();
            let mut siblings = Vec::with_capacity(self.depth);
            for (level, zero) in zeros.iter().enumerate().take(self.depth) {
                let sib = (index >> level) ^ 1;
                let lo = delta.start >> level;
                let hi = span_end >> level;
                siblings.push(if (lo..=hi).contains(&sib) {
                    delta.spans[level][(sib - lo) as usize]
                } else if sib < lo {
                    // left of the span ⇒ exactly the pre-batch frontier
                    // node at this level (see the module invariants)
                    delta.pre_frontier[level]
                        // lint:allow(panic-path, reason = "pre_frontier is Some exactly when start >> level is odd, which is the case in this branch")
                        .expect("own sibling left of the span must be the frontier")
                } else {
                    // right of the span ⇒ still an empty subtree
                    *zero
                });
            }
            self.own = Some(OwnPath {
                index,
                // lint:allow(panic-path, reason = "spans[0] is the leaf span and offset < count is established by the enclosing loop")
                leaf: delta.spans[0][offset as usize],
                siblings,
            });
        } else if let Some(own) = &mut self.own {
            for level in 0..self.depth {
                let sib = (own.index >> level) ^ 1;
                let lo = delta.start >> level;
                let hi = span_end >> level;
                if (lo..=hi).contains(&sib) {
                    own.siblings[level] = delta.spans[level][(sib - lo) as usize];
                }
                // sib < lo: untouched by an append. sib > hi: still zero.
            }
        }
        self.root = delta.root;
        self.next_index = delta.start + delta.count;
        Ok(())
    }

    /// Applies a single-leaf update delta (member deletion / slashing).
    /// Deleting **this** member drops the own path — the member is out
    /// of the group. No hashing.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::IndexOutOfRange`] when the updated index
    /// was never part of this view's group.
    pub fn apply_update(&mut self, delta: &UpdateDelta) -> Result<(), MerkleError> {
        if delta.index >= self.next_index {
            return Err(MerkleError::IndexOutOfRange {
                index: delta.index,
                capacity: self.next_index,
            });
        }
        match &mut self.own {
            Some(own) if own.index == delta.index => {
                // our own leaf was rewritten (slashed): membership gone
                self.own = None;
            }
            Some(own) => {
                for level in 0..self.depth {
                    if (own.index >> level) ^ 1 == delta.index >> level {
                        own.siblings[level] = delta.branch[level];
                    }
                }
            }
            None => {}
        }
        self.root = delta.root;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::EMPTY_LEAF;
    use super::*;

    fn fr(v: u64) -> Fr {
        Fr::from_u64(v)
    }

    #[test]
    fn delta_fed_view_tracks_canonical_root_and_proof() {
        let mut canonical = FullMerkleTree::new(8).unwrap();
        let mut view = MemberView::new(8).unwrap();
        // burst 1: not ours
        let d1 = canonical
            .append_batch_with_delta(&[fr(1), fr(2), fr(3)])
            .unwrap();
        view.apply_append(&d1, None).unwrap();
        assert_eq!(view.root(), canonical.root());
        assert!(view.own_proof().is_none());
        // burst 2: we are the middle leaf
        let d2 = canonical
            .append_batch_with_delta(&[fr(4), fr(5), fr(6)])
            .unwrap();
        view.apply_append(&d2, Some(1)).unwrap();
        assert_eq!(view.own_index(), Some(4));
        let proof = view.own_proof().unwrap();
        assert!(proof.verify(canonical.root(), fr(5)));
        // burst 3: later members refresh our path
        let d3 = canonical
            .append_batch_with_delta(&(7..40).map(fr).collect::<Vec<_>>())
            .unwrap();
        view.apply_append(&d3, None).unwrap();
        let proof = view.own_proof().unwrap();
        assert!(proof.verify(canonical.root(), fr(5)));
        assert_eq!(view.len(), canonical.next_index());
    }

    #[test]
    fn stale_or_replayed_delta_rejected() {
        let mut canonical = FullMerkleTree::new(6).unwrap();
        let mut view = MemberView::new(6).unwrap();
        let d1 = canonical.append_batch_with_delta(&[fr(1)]).unwrap();
        view.apply_append(&d1, None).unwrap();
        assert_eq!(view.apply_append(&d1, None), Err(MerkleError::StaleWitness));
        let d2 = canonical.append_batch_with_delta(&[fr(2)]).unwrap();
        let mut behind = MemberView::new(6).unwrap();
        assert_eq!(
            behind.apply_append(&d2, None),
            Err(MerkleError::StaleWitness)
        );
    }

    #[test]
    fn update_delta_refreshes_or_revokes() {
        let mut canonical = FullMerkleTree::new(6).unwrap();
        let mut us = MemberView::new(6).unwrap();
        let mut them = MemberView::new(6).unwrap();
        let burst: Vec<Fr> = (1..=6u64).map(fr).collect();
        let d = canonical.append_batch_with_delta(&burst).unwrap();
        us.apply_append(&d, Some(2)).unwrap();
        them.apply_append(&d, Some(5)).unwrap();
        // slash member 5: our path refreshes, theirs is revoked
        let slash = canonical.set_with_delta(5, EMPTY_LEAF).unwrap();
        us.apply_update(&slash).unwrap();
        them.apply_update(&slash).unwrap();
        assert!(them.own_proof().is_none());
        let proof = us.own_proof().unwrap();
        assert!(proof.verify(canonical.root(), fr(3)));
        assert_eq!(us.root(), canonical.root());
    }

    #[test]
    fn own_offset_out_of_burst_rejected() {
        let mut canonical = FullMerkleTree::new(6).unwrap();
        let mut view = MemberView::new(6).unwrap();
        let d = canonical.append_batch_with_delta(&[fr(1), fr(2)]).unwrap();
        assert!(matches!(
            view.apply_append(&d, Some(2)),
            Err(MerkleError::IndexOutOfRange { .. })
        ));
        // the failed application must not have advanced the view
        view.apply_append(&d, Some(1)).unwrap();
        assert_eq!(view.own_index(), Some(1));
    }

    #[test]
    fn empty_burst_is_a_no_op() {
        let mut canonical = FullMerkleTree::new(6).unwrap();
        let mut view = MemberView::new(6).unwrap();
        let d = canonical.append_batch_with_delta(&[]).unwrap();
        assert_eq!(d.count, 0);
        view.apply_append(&d, None).unwrap();
        assert_eq!(view.root(), canonical.root());
        assert_eq!(view.len(), 0);
    }

    #[test]
    fn storage_is_depth_bound_not_group_bound() {
        let mut canonical = FullMerkleTree::new(12).unwrap();
        let mut view = MemberView::new(12).unwrap();
        let d = canonical
            .append_batch_with_delta(&(0..2000u64).map(fr).collect::<Vec<_>>())
            .unwrap();
        view.apply_append(&d, Some(1000)).unwrap();
        // root + (siblings + leaf) — nothing proportional to 2000
        assert_eq!(view.storage_bytes(), 32 + (12 + 1) * 32);
    }

    #[test]
    fn delta_size_is_linear_in_burst_plus_depth() {
        let mut canonical = FullMerkleTree::new(16).unwrap();
        let burst: Vec<Fr> = (0..500u64).map(fr).collect();
        let d = canonical.append_batch_with_delta(&burst).unwrap();
        // Σ_l ⌈n/2^l⌉ ≤ 2n + depth, plus frontier and root
        assert!(
            d.node_count() <= 2 * burst.len() + 3 * 16 + 1,
            "delta carries {} nodes",
            d.node_count()
        );
    }

    // ── equivalence: delta-fed MemberView ≡ eagerly-hashing SyncedPathTree ──

    use super::super::SyncedPathTree;
    use proptest::prelude::*;

    const DEPTH: usize = 8;

    /// One group event in broadcast form: what a late joiner replays.
    enum Hist {
        Burst {
            leaves: Vec<Fr>,
            delta: AppendDelta,
        },
        Slash {
            index: u64,
            old: Fr,
            witness: MerkleProof,
            delta: UpdateDelta,
        },
    }

    /// Builds both light representations for a member registering at
    /// `own_offset` of the final (burst) event, replaying prior history.
    fn spawn_member(history: &[Hist], own_offset: u64) -> (MemberView, SyncedPathTree) {
        let mut view = MemberView::new(DEPTH).unwrap();
        let mut synced = SyncedPathTree::new(DEPTH).unwrap();
        let last = history.len() - 1;
        for (i, ev) in history.iter().enumerate() {
            match ev {
                Hist::Burst { leaves, delta } => {
                    if i == last {
                        view.apply_append(delta, Some(own_offset)).unwrap();
                        let o = own_offset as usize;
                        synced.apply_append_batch(&leaves[..o]).unwrap();
                        synced.register_own(leaves[o]).unwrap();
                        synced.apply_append_batch(&leaves[o + 1..]).unwrap();
                    } else {
                        view.apply_append(delta, None).unwrap();
                        synced.apply_append_batch(leaves).unwrap();
                    }
                }
                Hist::Slash {
                    index,
                    old,
                    witness,
                    delta,
                } => {
                    view.apply_update(delta).unwrap();
                    synced
                        .apply_update_with_witness(*index, *old, EMPTY_LEAF, witness)
                        .unwrap();
                }
            }
        }
        (view, synced)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every member's delta-fed [`MemberView`] stays bit-identical
        /// (root, own proof, slashing revocation) to the eagerly-hashing
        /// [`SyncedPathTree`] — and to the canonical tree — across random
        /// register/slash interleavings with late joins.
        #[test]
        fn prop_member_view_matches_synced_path_tree(
            ops in proptest::collection::vec(
                (any::<bool>(), any::<u64>(), 1u64..5), 1..16),
        ) {
            let mut canonical = FullMerkleTree::new(DEPTH).unwrap();
            let mut history: Vec<Hist> = Vec::new();
            // (view, synced, index): every registered member, incl. slashed
            let mut members: Vec<(MemberView, SyncedPathTree, u64)> = Vec::new();
            let mut leaves_by_index: Vec<Fr> = Vec::new();
            let mut next_val = 1u64;
            for (slash, pick, burst_len) in ops {
                let live: Vec<u64> = (0..leaves_by_index.len() as u64)
                    .filter(|&i| leaves_by_index[i as usize] != EMPTY_LEAF)
                    .collect();
                if slash && !live.is_empty() {
                    let index = live[(pick % live.len() as u64) as usize];
                    let old = leaves_by_index[index as usize];
                    let witness = canonical.proof(index).unwrap();
                    let delta = canonical.set_with_delta(index, EMPTY_LEAF).unwrap();
                    leaves_by_index[index as usize] = EMPTY_LEAF;
                    for (view, synced, _) in members.iter_mut() {
                        view.apply_update(&delta).unwrap();
                        synced
                            .apply_update_with_witness(index, old, EMPTY_LEAF, &witness)
                            .unwrap();
                    }
                    history.push(Hist::Slash { index, old, witness, delta });
                } else {
                    let burst_len = burst_len.min(canonical.capacity() - canonical.next_index());
                    if burst_len == 0 {
                        continue;
                    }
                    let start = canonical.next_index();
                    let burst: Vec<Fr> = (0..burst_len)
                        .map(|_| {
                            let v = fr(next_val);
                            next_val += 1;
                            v
                        })
                        .collect();
                    let delta = canonical.append_batch_with_delta(&burst).unwrap();
                    for (view, synced, _) in members.iter_mut() {
                        view.apply_append(&delta, None).unwrap();
                        synced.apply_append_batch(&burst).unwrap();
                    }
                    leaves_by_index.extend_from_slice(&burst);
                    history.push(Hist::Burst { leaves: burst.clone(), delta });
                    for o in 0..burst.len() {
                        let (view, synced) = spawn_member(&history, o as u64);
                        members.push((view, synced, start + o as u64));
                    }
                }
                for (view, synced, index) in &members {
                    prop_assert_eq!(view.root(), canonical.root());
                    prop_assert_eq!(synced.root(), canonical.root());
                    let slashed = leaves_by_index[*index as usize] == EMPTY_LEAF;
                    prop_assert_eq!(view.own_proof().is_none(), slashed);
                    prop_assert_eq!(view.own_proof(), synced.own_proof());
                    if let Some(p) = view.own_proof() {
                        prop_assert_eq!(p, canonical.proof(*index).unwrap());
                    }
                }
            }
        }
    }
}
