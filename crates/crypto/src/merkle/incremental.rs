//! Append-only frontier Merkle tree (O(depth) memory).

use super::{node_hash, validate_depth, zero_hashes, MerkleError};
use crate::field::Fr;

/// An append-only Merkle tree storing only the "frontier" — the roots of
/// the completed left subtrees — in `O(depth)` memory.
///
/// This matches the data a smart contract must persist when the membership
/// tree is kept *on-chain* (the original RLN proposal the paper optimizes
/// away), and is the core of the reference \[9\] storage optimization: the
/// running root of an append-only tree needs only `depth` stored hashes.
///
/// # Examples
///
/// ```
/// use wakurln_crypto::{field::Fr, merkle::{FullMerkleTree, IncrementalMerkleTree}};
///
/// let mut inc = IncrementalMerkleTree::new(8)?;
/// let mut full = FullMerkleTree::new(8)?;
/// for v in 0..10u64 {
///     inc.append(Fr::from_u64(v))?;
///     full.append(Fr::from_u64(v))?;
/// }
/// assert_eq!(inc.root(), full.root());
/// # Ok::<(), wakurln_crypto::merkle::MerkleError>(())
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalMerkleTree {
    depth: usize,
    /// `frontier[l]` is the left sibling at level `l` that is still waiting
    /// for its right sibling; meaningful only where the corresponding bit
    /// pattern of `next_index` indicates a pending left node.
    frontier: Vec<Fr>,
    next_index: u64,
    root: Fr,
}

impl IncrementalMerkleTree {
    /// Creates an empty append-only tree of the given depth.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::UnsupportedDepth`] for invalid depths.
    pub fn new(depth: usize) -> Result<IncrementalMerkleTree, MerkleError> {
        validate_depth(depth)?;
        Ok(IncrementalMerkleTree {
            depth,
            frontier: vec![Fr::ZERO; depth],
            next_index: 0,
            root: zero_hashes()[depth],
        })
    }

    /// The tree depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The number of leaves appended so far.
    pub fn len(&self) -> u64 {
        self.next_index
    }

    /// `true` if no leaves have been appended.
    pub fn is_empty(&self) -> bool {
        self.next_index == 0
    }

    /// Leaf capacity (`2^depth`).
    pub fn capacity(&self) -> u64 {
        1u64 << self.depth
    }

    /// The current root.
    pub fn root(&self) -> Fr {
        self.root
    }

    /// Appends a leaf, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] when the tree is at capacity.
    #[allow(clippy::needless_range_loop)]
    pub fn append(&mut self, leaf: Fr) -> Result<u64, MerkleError> {
        if self.next_index >= self.capacity() {
            return Err(MerkleError::TreeFull);
        }
        let index = self.next_index;
        let zeros = zero_hashes();
        let mut node = leaf;
        let mut idx = index;
        for l in 0..self.depth {
            if idx & 1 == 0 {
                // `node` is a left child: remember it, complete the level
                // with the empty subtree to keep computing the running root.
                self.frontier[l] = node;
                node = node_hash(node, zeros[l]);
            } else {
                node = node_hash(self.frontier[l], node);
            }
            idx >>= 1;
        }
        self.root = node;
        self.next_index = index + 1;
        Ok(index)
    }

    /// Appends a batch of leaves, recomputing each level **once per
    /// batch**: the batch's nodes are rolled up level by level (`O(n)`
    /// interior hashes) and only the boundary touches the frontier —
    /// `O(n + depth)` hashes versus `O(n · depth)` for repeated
    /// [`IncrementalMerkleTree::append`]. Returns the first appended
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] (without modifying the tree) when
    /// the batch does not fit.
    pub fn append_batch(&mut self, leaves: &[Fr]) -> Result<u64, MerkleError> {
        let start = self.next_index;
        if leaves.is_empty() {
            return Ok(start);
        }
        if leaves.len() as u64 > self.capacity() - start {
            return Err(MerkleError::TreeFull);
        }
        self.root = super::roll_up_batch(self.depth, start, leaves, &mut self.frontier, |_| {});
        self.next_index = start + leaves.len() as u64;
        Ok(start)
    }

    /// Number of persistent hashes (frontier + root), for the E3/E4
    /// storage and gas experiments.
    pub fn stored_nodes(&self) -> usize {
        self.depth + 1
    }

    /// Estimated resident bytes of the hash storage.
    pub fn storage_bytes(&self) -> usize {
        self.stored_nodes() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::FullMerkleTree;
    use proptest::prelude::*;

    #[test]
    fn matches_full_tree_over_full_capacity() {
        let depth = 4;
        let mut inc = IncrementalMerkleTree::new(depth).unwrap();
        let mut full = FullMerkleTree::new(depth).unwrap();
        for v in 0..16u64 {
            inc.append(Fr::from_u64(v + 100)).unwrap();
            full.append(Fr::from_u64(v + 100)).unwrap();
            assert_eq!(inc.root(), full.root(), "after {v} appends");
        }
        assert_eq!(inc.append(Fr::ONE), Err(MerkleError::TreeFull));
    }

    #[test]
    fn len_and_empty() {
        let mut t = IncrementalMerkleTree::new(3).unwrap();
        assert!(t.is_empty());
        t.append(Fr::ONE).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn storage_is_linear_in_depth() {
        let t = IncrementalMerkleTree::new(20).unwrap();
        assert_eq!(t.stored_nodes(), 21);
        assert!(
            t.storage_bytes() < 1024,
            "O(depth) storage stays under 1 KB"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matches_full_tree(leaves in proptest::collection::vec(any::<u64>(), 0..32)) {
            let depth = 5;
            let mut inc = IncrementalMerkleTree::new(depth).unwrap();
            let mut full = FullMerkleTree::new(depth).unwrap();
            for v in leaves {
                inc.append(Fr::from_u64(v)).unwrap();
                full.append(Fr::from_u64(v)).unwrap();
            }
            prop_assert_eq!(inc.root(), full.root());
        }
    }
}
