//! Fully materialized Merkle tree.

use super::{node_hash, validate_depth, zero_hashes, MerkleError, MerkleProof, EMPTY_LEAF};
use crate::field::Fr;

/// A fixed-depth Merkle tree with every node materialized.
///
/// Memory is `O(2^depth)` — this is the representation whose cost the paper
/// quotes as "a membership tree with depth 20 requires 67 MB storage", and
/// what a full relay node or slasher (which must produce membership proofs
/// for arbitrary members) keeps.
///
/// Levels are stored densely: `levels[0]` is the leaf layer
/// (`2^depth` entries), `levels[depth]` is the single root.
///
/// # Examples
///
/// ```
/// use wakurln_crypto::{field::Fr, merkle::FullMerkleTree};
///
/// let mut tree = FullMerkleTree::new(10)?;
/// tree.set(0, Fr::from_u64(11))?;
/// tree.set(5, Fr::from_u64(22))?;
/// let proof = tree.proof(5)?;
/// assert!(proof.verify(tree.root(), Fr::from_u64(22)));
/// # Ok::<(), wakurln_crypto::merkle::MerkleError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FullMerkleTree {
    depth: usize,
    levels: Vec<Vec<Fr>>,
    /// Number of leaves ever assigned via [`FullMerkleTree::append`].
    next_index: u64,
}

impl FullMerkleTree {
    /// Creates an empty tree of the given depth.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::UnsupportedDepth`] if `depth` is 0 or exceeds
    /// [`super::MAX_DEPTH`].
    #[allow(clippy::needless_range_loop)]
    pub fn new(depth: usize) -> Result<FullMerkleTree, MerkleError> {
        validate_depth(depth)?;
        let zeros = zero_hashes();
        let mut levels = Vec::with_capacity(depth + 1);
        for l in 0..=depth {
            levels.push(vec![zeros[l]; 1usize << (depth - l)]);
        }
        Ok(FullMerkleTree {
            depth,
            levels,
            next_index: 0,
        })
    }

    /// The tree depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The number of leaf slots.
    pub fn capacity(&self) -> u64 {
        1u64 << self.depth
    }

    /// Index that the next [`FullMerkleTree::append`] will use.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// The current root.
    pub fn root(&self) -> Fr {
        // lint:allow(panic-path, reason = "levels holds depth+1 non-empty rows; the root row holds exactly one node")
        self.levels[self.depth][0]
    }

    /// Returns the leaf at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::IndexOutOfRange`] for indices beyond capacity.
    pub fn leaf(&self, index: u64) -> Result<Fr, MerkleError> {
        self.check_index(index)?;
        // lint:allow(panic-path, reason = "check_index ran the line above; levels[0] holds 2^depth leaves")
        Ok(self.levels[0][index as usize])
    }

    /// Sets the leaf at `index`, updating all ancestors.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::IndexOutOfRange`] for indices beyond capacity.
    pub fn set(&mut self, index: u64, leaf: Fr) -> Result<(), MerkleError> {
        self.check_index(index)?;
        // lint:allow(panic-path, reason = "check_index ran the line above; levels[0] holds 2^depth leaves")
        self.levels[0][index as usize] = leaf;
        let mut idx = index as usize;
        for l in 0..self.depth {
            let parent = idx >> 1;
            let left = self.levels[l][parent << 1];
            let right = self.levels[l][(parent << 1) | 1];
            self.levels[l + 1][parent] = node_hash(left, right);
            idx = parent;
        }
        if index >= self.next_index {
            self.next_index = index + 1;
        }
        Ok(())
    }

    /// Appends a leaf at the next free index, returning that index.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] when all slots are used.
    pub fn append(&mut self, leaf: Fr) -> Result<u64, MerkleError> {
        if self.next_index >= self.capacity() {
            return Err(MerkleError::TreeFull);
        }
        let index = self.next_index;
        self.set(index, leaf)?;
        Ok(index)
    }

    /// Appends a batch of leaves starting at the next free index,
    /// recomputing each ancestor level **once per batch** instead of once
    /// per leaf — `O(n + depth)` node hashes versus `O(n · depth)` for
    /// repeated [`FullMerkleTree::append`]. Returns the index of the first
    /// appended leaf (the current `next_index` for an empty batch).
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] (without modifying the tree) when
    /// the batch does not fit in the remaining capacity.
    ///
    /// # Examples
    ///
    /// ```
    /// use wakurln_crypto::{field::Fr, merkle::FullMerkleTree};
    ///
    /// let leaves: Vec<Fr> = (0..100u64).map(Fr::from_u64).collect();
    /// let mut batched = FullMerkleTree::new(10)?;
    /// let mut sequential = FullMerkleTree::new(10)?;
    /// batched.append_batch(&leaves)?;
    /// for leaf in &leaves {
    ///     sequential.append(*leaf)?;
    /// }
    /// assert_eq!(batched.root(), sequential.root());
    /// # Ok::<(), wakurln_crypto::merkle::MerkleError>(())
    /// ```
    pub fn append_batch(&mut self, leaves: &[Fr]) -> Result<u64, MerkleError> {
        let start = self.next_index;
        if leaves.is_empty() {
            return Ok(start);
        }
        if leaves.len() as u64 > self.capacity() - start {
            return Err(MerkleError::TreeFull);
        }
        let s = start as usize;
        // lint:allow(panic-path, reason = "the caller validated start + leaves.len() <= capacity before entering this hot loop")
        self.levels[0][s..s + leaves.len()].copy_from_slice(leaves);
        // recompute each level once over the span the batch dirtied
        let mut lo = s;
        let mut hi = s + leaves.len() - 1;
        for l in 0..self.depth {
            lo >>= 1;
            hi >>= 1;
            for parent in lo..=hi {
                let left = self.levels[l][parent << 1];
                let right = self.levels[l][(parent << 1) | 1];
                self.levels[l + 1][parent] = node_hash(left, right);
            }
        }
        self.next_index = start + leaves.len() as u64;
        Ok(start)
    }

    /// Clears the leaf at `index` back to the empty value (member deletion).
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::IndexOutOfRange`] for indices beyond capacity.
    pub fn remove(&mut self, index: u64) -> Result<(), MerkleError> {
        self.set(index, EMPTY_LEAF)
    }

    /// Produces the authentication path for `index`.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::IndexOutOfRange`] for indices beyond capacity.
    pub fn proof(&self, index: u64) -> Result<MerkleProof, MerkleError> {
        self.check_index(index)?;
        let mut siblings = Vec::with_capacity(self.depth);
        let mut idx = index as usize;
        for l in 0..self.depth {
            siblings.push(self.levels[l][idx ^ 1]);
            idx >>= 1;
        }
        Ok(MerkleProof { index, siblings })
    }

    /// Node value at `pos` within `level` (level 0 = leaves). Used by
    /// the delta capture to read recomputed spans and frontiers.
    pub(crate) fn node(&self, level: usize, pos: u64) -> Fr {
        self.levels[level][pos as usize]
    }

    /// Total number of stored node hashes (used by the E3 storage
    /// experiment; each node is one 32-byte field element).
    pub fn stored_nodes(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Estimated resident bytes of the hash storage.
    pub fn storage_bytes(&self) -> usize {
        self.stored_nodes() * 32
    }

    fn check_index(&self, index: u64) -> Result<(), MerkleError> {
        if index >= self.capacity() {
            Err(MerkleError::IndexOutOfRange {
                index,
                capacity: self.capacity(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::zero_hashes;

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = FullMerkleTree::new(4).unwrap();
        t.set(7, Fr::from_u64(123)).unwrap();
        assert_eq!(t.leaf(7).unwrap(), Fr::from_u64(123));
        assert_eq!(t.leaf(6).unwrap(), EMPTY_LEAF);
    }

    #[test]
    fn root_changes_on_set_and_restores_on_remove() {
        let mut t = FullMerkleTree::new(5).unwrap();
        let empty_root = t.root();
        t.set(3, Fr::from_u64(9)).unwrap();
        assert_ne!(t.root(), empty_root);
        t.remove(3).unwrap();
        assert_eq!(t.root(), empty_root);
    }

    #[test]
    fn append_assigns_sequential_indices() {
        let mut t = FullMerkleTree::new(3).unwrap();
        for i in 0..8 {
            assert_eq!(t.append(Fr::from_u64(i)).unwrap(), i);
        }
        assert_eq!(t.append(Fr::ONE), Err(MerkleError::TreeFull));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut t = FullMerkleTree::new(3).unwrap();
        assert!(matches!(
            t.set(8, Fr::ONE),
            Err(MerkleError::IndexOutOfRange {
                index: 8,
                capacity: 8
            })
        ));
        assert!(t.proof(100).is_err());
        assert!(t.leaf(100).is_err());
    }

    #[test]
    fn proof_depth_matches_tree() {
        let t = FullMerkleTree::new(6).unwrap();
        assert_eq!(t.proof(0).unwrap().depth(), 6);
    }

    #[test]
    fn manual_depth2_root() {
        // depth 2: leaves a,b,c,d; root = H(H(a,b), H(c,d))
        let mut t = FullMerkleTree::new(2).unwrap();
        let vals = [1u64, 2, 3, 4].map(Fr::from_u64);
        for (i, v) in vals.iter().enumerate() {
            t.set(i as u64, *v).unwrap();
        }
        let expect = node_hash(node_hash(vals[0], vals[1]), node_hash(vals[2], vals[3]));
        assert_eq!(t.root(), expect);
    }

    #[test]
    fn storage_accounting_depth_20_matches_paper_order() {
        // The paper: depth-20 full tree ≈ 67 MB. 2^21 - 1 nodes ≈ 2M × 32 B ≈ 64 MiB.
        let t = FullMerkleTree::new(20).unwrap();
        let mb = t.storage_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb > 60.0 && mb < 70.0, "got {mb} MB");
    }

    #[test]
    fn empty_root_is_zero_hash() {
        let t = FullMerkleTree::new(8).unwrap();
        assert_eq!(t.root(), zero_hashes()[8]);
    }
}
