//! Merkle trees over Poseidon-hashed [`Fr`] leaves.
//!
//! The RLN membership group is a fixed-depth binary Merkle tree whose leaves
//! are member public keys (`pk = H(sk)`), with empty slots holding the zero
//! leaf. The paper's §III stores only an *ordered list* of keys on-chain and
//! lets every peer maintain the tree locally; §IV cites reference \[9\] for a
//! storage optimization that shrinks a depth-20 tree from ~67 MB to a few
//! hundred bytes for peers that only need *their own* membership proof.
//!
//! Three implementations, one semantics:
//!
//! * [`FullMerkleTree`] — every node materialized; O(2^depth) memory,
//!   supports arbitrary updates and proofs for any leaf. This is what a
//!   full relay node or a slasher runs.
//! * [`IncrementalMerkleTree`] — append-only frontier; O(depth) memory,
//!   computes the running root only. This is what the *contract-side* root
//!   tracking of the original RLN design would cost.
//! * [`SyncedPathTree`] — the reference \[9\] optimization: a light member
//!   stores only its own authentication path plus the append frontier
//!   (O(depth) memory) and keeps the path current while *other* members
//!   join (O(depth) work per event) or are slashed (given the event's
//!   witness path).
//!
//! Property tests assert all three agree on the root under arbitrary event
//! streams.

mod delta;
mod full;
mod incremental;
mod synced;

pub use delta::{AppendDelta, MemberView, UpdateDelta};
pub use full::FullMerkleTree;
pub use incremental::IncrementalMerkleTree;
pub use synced::SyncedPathTree;

use crate::field::Fr;
use crate::poseidon;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Maximum supported tree depth. Depth 32 covers the paper's 2³² group size.
pub const MAX_DEPTH: usize = 32;

/// Errors returned by Merkle tree operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MerkleError {
    /// The leaf index is outside the tree's capacity.
    IndexOutOfRange {
        /// The offending index.
        index: u64,
        /// The tree capacity (2^depth).
        capacity: u64,
    },
    /// The tree is full (append-only variants).
    TreeFull,
    /// A supplied witness path does not match the current root.
    StaleWitness,
    /// The requested depth is not in `1..=MAX_DEPTH`.
    UnsupportedDepth(usize),
}

impl std::fmt::Display for MerkleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MerkleError::IndexOutOfRange { index, capacity } => {
                write!(f, "leaf index {index} out of range for capacity {capacity}")
            }
            MerkleError::TreeFull => write!(f, "merkle tree is full"),
            MerkleError::StaleWitness => {
                write!(f, "witness path does not match the current root")
            }
            MerkleError::UnsupportedDepth(d) => {
                write!(f, "unsupported merkle depth {d} (max {MAX_DEPTH})")
            }
        }
    }
}

impl std::error::Error for MerkleError {}

/// The leaf value representing an empty slot (also the value written on
/// member deletion/slashing).
pub const EMPTY_LEAF: Fr = Fr::ZERO;

/// Precomputed roots of all-empty subtrees: `zero(0) = EMPTY_LEAF`,
/// `zero(l+1) = H(zero(l), zero(l))`.
pub fn zero_hashes() -> &'static [Fr; MAX_DEPTH + 1] {
    static ZEROS: OnceLock<[Fr; MAX_DEPTH + 1]> = OnceLock::new();
    ZEROS.get_or_init(|| {
        let mut z = [EMPTY_LEAF; MAX_DEPTH + 1];
        for l in 1..=MAX_DEPTH {
            z[l] = poseidon::hash2(z[l - 1], z[l - 1]);
        }
        z
    })
}

/// Hash of two child nodes.
#[inline]
pub fn node_hash(left: Fr, right: Fr) -> Fr {
    poseidon::hash2(left, right)
}

/// An authentication path for one leaf.
///
/// `siblings[l]` is the sibling node at level `l` (level 0 = leaves);
/// `index` encodes the left/right directions (bit `l` of `index` is 1 when
/// the path node at level `l` is a right child).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Leaf index the proof authenticates.
    pub index: u64,
    /// Sibling hashes from the leaf level upward, `depth` entries.
    pub siblings: Vec<Fr>,
}

impl MerkleProof {
    /// Tree depth this proof corresponds to.
    pub fn depth(&self) -> usize {
        self.siblings.len()
    }

    /// Recomputes the root implied by `leaf` under this path.
    pub fn compute_root(&self, leaf: Fr) -> Fr {
        let mut node = leaf;
        let mut idx = self.index;
        for sibling in &self.siblings {
            node = if idx & 1 == 0 {
                node_hash(node, *sibling)
            } else {
                node_hash(*sibling, node)
            };
            idx >>= 1;
        }
        node
    }

    /// Verifies that `leaf` at this proof's index is included under `root`.
    ///
    /// ```
    /// use wakurln_crypto::{field::Fr, merkle::FullMerkleTree};
    ///
    /// let mut tree = FullMerkleTree::new(8).unwrap();
    /// tree.set(3, Fr::from_u64(77)).unwrap();
    /// let proof = tree.proof(3).unwrap();
    /// assert!(proof.verify(tree.root(), Fr::from_u64(77)));
    /// assert!(!proof.verify(tree.root(), Fr::from_u64(78)));
    /// ```
    pub fn verify(&self, root: Fr, leaf: Fr) -> bool {
        self.compute_root(leaf) == root
    }
}

/// Checks a depth argument and returns the capacity, shared by all
/// implementations.
pub(crate) fn validate_depth(depth: usize) -> Result<u64, MerkleError> {
    if depth == 0 || depth > MAX_DEPTH {
        return Err(MerkleError::UnsupportedDepth(depth));
    }
    Ok(1u64 << depth)
}

/// One level of a batched roll-up, handed to the observer **after** the
/// frontier maintenance for that level.
pub(crate) struct BatchLevel<'a> {
    /// Tree level (0 = leaves).
    pub level: usize,
    /// Level-local index of `nodes[0]`.
    pub start: u64,
    /// The batch's node values at this level.
    pub nodes: &'a [Fr],
    /// Level-local index whose value was just written into the frontier
    /// at this level, if any.
    pub frontier_set: Option<u64>,
}

/// Rolls a contiguous batch of appended leaves up to the root in one pass
/// per level (`O(n + depth)` hashes), maintaining the append **frontier**
/// invariant: after the batch, `frontier[l]` holds the pending left node
/// at level `l` whenever bit `l` of the new leaf count is set.
///
/// `start` is the leaf index of `leaves[0]`; the frontier must be valid
/// for a tree currently holding exactly `start` leaves, and the batch
/// must fit (`start + leaves.len() <= 2^depth` — callers check).
/// `observe` sees every level's computed span (the hook the light tree
/// uses to refresh its own authentication path and frontier bookkeeping).
/// Returns the new root. Shared by [`IncrementalMerkleTree::append_batch`]
/// and [`SyncedPathTree::apply_append_batch`].
pub(crate) fn roll_up_batch(
    depth: usize,
    start: u64,
    leaves: &[Fr],
    frontier: &mut [Fr],
    mut observe: impl FnMut(&BatchLevel<'_>),
) -> Fr {
    debug_assert!(!leaves.is_empty());
    debug_assert!(leaves.len() as u64 <= (1u64 << depth) - start);
    let zeros = zero_hashes();
    let end = start + leaves.len() as u64;
    // `nodes` holds the batch's values at the current level; `a` is the
    // level-local index of `nodes[0]`.
    let mut nodes = leaves.to_vec();
    let mut a = start;
    for l in 0..depth {
        let old_frontier = frontier[l];
        // when bit `l` of the new leaf count is set, frontier[l] must
        // hold the pending left node at this level
        let mut frontier_set = None;
        let nl = end >> l;
        if nl & 1 == 1 {
            let pending = nl - 1;
            if pending >= a {
                frontier[l] = nodes[(pending - a) as usize];
                frontier_set = Some(pending);
            }
        }
        observe(&BatchLevel {
            level: l,
            start: a,
            nodes: &nodes,
            frontier_set,
        });
        // roll the batch up one level: the left boundary pairs with the
        // pre-batch frontier, the right boundary with the empty subtree
        let b = a + nodes.len() as u64;
        let first_parent = a >> 1;
        let last_parent = (b - 1) >> 1;
        let mut parents = Vec::with_capacity((last_parent - first_parent + 1) as usize);
        for p in first_parent..=last_parent {
            let li = p << 1;
            let ri = li | 1;
            let left = if li < a {
                old_frontier
            } else {
                nodes[(li - a) as usize]
            };
            let right = if ri < b {
                nodes[(ri - a) as usize]
            } else {
                zeros[l]
            };
            parents.push(node_hash(left, right));
        }
        nodes = parents;
        a = first_parent;
    }
    debug_assert_eq!((a, nodes.len()), (0, 1));
    // lint:allow(panic-path, reason = "loop invariant: halving terminates with exactly one node, checked by the debug_assert above")
    nodes[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_hash_chain_is_consistent() {
        let z = zero_hashes();
        assert_eq!(z[0], EMPTY_LEAF);
        for l in 1..=MAX_DEPTH {
            assert_eq!(z[l], node_hash(z[l - 1], z[l - 1]));
        }
    }

    #[test]
    fn empty_trees_of_all_impls_share_roots() {
        for depth in [1usize, 2, 4, 10, 20] {
            let full = FullMerkleTree::new(depth).unwrap();
            let inc = IncrementalMerkleTree::new(depth).unwrap();
            assert_eq!(full.root(), zero_hashes()[depth]);
            assert_eq!(inc.root(), zero_hashes()[depth]);
        }
    }

    #[test]
    fn depth_validation() {
        assert!(matches!(
            FullMerkleTree::new(0),
            Err(MerkleError::UnsupportedDepth(0))
        ));
        assert!(matches!(
            FullMerkleTree::new(MAX_DEPTH + 1),
            Err(MerkleError::UnsupportedDepth(_))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            MerkleError::IndexOutOfRange {
                index: 9,
                capacity: 8,
            },
            MerkleError::TreeFull,
            MerkleError::StaleWitness,
            MerkleError::UnsupportedDepth(99),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn batched_append_uses_at_least_5x_fewer_hashes_at_1024() {
        // the tentpole accounting claim: at batch size 1024 on a depth-20
        // tree, append_batch needs ≥ 5× fewer Poseidon invocations than
        // leaf-at-a-time appends (measured: ~20×)
        let leaves: Vec<Fr> = (0..1024u64).map(Fr::from_u64).collect();

        let mut sequential = FullMerkleTree::new(20).unwrap();
        let before = crate::poseidon::permutation_count();
        for leaf in &leaves {
            sequential.append(*leaf).unwrap();
        }
        let sequential_hashes = crate::poseidon::permutation_count() - before;

        let mut batched = FullMerkleTree::new(20).unwrap();
        let before = crate::poseidon::permutation_count();
        batched.append_batch(&leaves).unwrap();
        let batched_hashes = crate::poseidon::permutation_count() - before;

        assert_eq!(batched.root(), sequential.root());
        assert!(
            sequential_hashes >= 5 * batched_hashes,
            "sequential {sequential_hashes} vs batched {batched_hashes}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The tentpole equivalence property: one `append_batch` produces
        /// the same root, next index and proofs as leaf-at-a-time appends,
        /// across all three tree implementations, from any prefix state.
        #[test]
        fn prop_append_batch_equals_sequential_appends(
            prefix in proptest::collection::vec(any::<u64>(), 0..12),
            batch in proptest::collection::vec(any::<u64>(), 0..48),
            own_at in proptest::option::of(0u64..12)
        ) {
            let depth = 6;
            let prefix: Vec<Fr> = prefix.into_iter().map(Fr::from_u64).collect();
            let batch: Vec<Fr> = batch.into_iter().map(Fr::from_u64).collect();

            let mut seq_full = FullMerkleTree::new(depth).unwrap();
            let mut seq_inc = IncrementalMerkleTree::new(depth).unwrap();
            let mut seq_light = SyncedPathTree::new(depth).unwrap();
            let mut bat_full = FullMerkleTree::new(depth).unwrap();
            let mut bat_inc = IncrementalMerkleTree::new(depth).unwrap();
            let mut bat_light = SyncedPathTree::new(depth).unwrap();

            let own_at = own_at.map(|i| i % (prefix.len().max(1) as u64));
            for (i, leaf) in prefix.iter().enumerate() {
                seq_full.append(*leaf).unwrap();
                bat_full.append(*leaf).unwrap();
                seq_inc.append(*leaf).unwrap();
                bat_inc.append(*leaf).unwrap();
                if own_at == Some(i as u64) {
                    seq_light.register_own(*leaf).unwrap();
                    bat_light.register_own(*leaf).unwrap();
                } else {
                    seq_light.apply_append(*leaf).unwrap();
                    bat_light.apply_append(*leaf).unwrap();
                }
            }

            for leaf in &batch {
                seq_full.append(*leaf).unwrap();
                seq_inc.append(*leaf).unwrap();
                seq_light.apply_append(*leaf).unwrap();
            }
            let start = bat_full.append_batch(&batch).unwrap();
            prop_assert_eq!(start, prefix.len() as u64);
            prop_assert_eq!(bat_inc.append_batch(&batch).unwrap(), start);
            prop_assert_eq!(bat_light.apply_append_batch(&batch).unwrap(), start);

            prop_assert_eq!(bat_full.root(), seq_full.root());
            prop_assert_eq!(bat_inc.root(), seq_inc.root());
            prop_assert_eq!(bat_light.root(), seq_light.root());
            prop_assert_eq!(bat_full.next_index(), seq_full.next_index());
            prop_assert_eq!(bat_inc.len(), seq_inc.len());
            prop_assert_eq!(bat_light.len(), seq_light.len());

            // proofs agree for every populated leaf
            for index in 0..seq_full.next_index() {
                prop_assert_eq!(
                    bat_full.proof(index).unwrap(),
                    seq_full.proof(index).unwrap()
                );
            }
            // the light member's own path stays correct through the batch
            prop_assert_eq!(bat_light.own_index(), seq_light.own_index());
            if let Some(own_index) = bat_light.own_index() {
                let proof = bat_light.own_proof().unwrap();
                prop_assert_eq!(&proof, &seq_full.proof(own_index).unwrap());
                prop_assert!(proof.verify(seq_full.root(), seq_full.leaf(own_index).unwrap()));
            }
        }

        /// Batches that straddle frontier boundaries keep future appends
        /// and deletions correct (the frontier-invariant regression
        /// shape).
        #[test]
        fn prop_appends_after_batch_stay_consistent(
            batch_len in 1usize..20,
            tail in proptest::collection::vec(any::<u64>(), 1..12)
        ) {
            let depth = 5;
            let batch: Vec<Fr> = (0..batch_len as u64).map(|v| Fr::from_u64(v + 100)).collect();
            let mut full = FullMerkleTree::new(depth).unwrap();
            let mut inc = IncrementalMerkleTree::new(depth).unwrap();
            full.append_batch(&batch).unwrap();
            inc.append_batch(&batch).unwrap();
            for v in tail {
                if full.next_index() == full.capacity() { break; }
                full.append(Fr::from_u64(v)).unwrap();
                inc.append(Fr::from_u64(v)).unwrap();
                prop_assert_eq!(full.root(), inc.root());
            }
        }

        #[test]
        fn prop_full_and_incremental_agree_on_appends(
            leaves in proptest::collection::vec(any::<u64>(), 0..20)
        ) {
            let depth = 6;
            let mut full = FullMerkleTree::new(depth).unwrap();
            let mut inc = IncrementalMerkleTree::new(depth).unwrap();
            for (i, v) in leaves.iter().enumerate() {
                full.set(i as u64, Fr::from_u64(*v)).unwrap();
                inc.append(Fr::from_u64(*v)).unwrap();
                prop_assert_eq!(full.root(), inc.root());
            }
        }

        #[test]
        fn prop_proofs_verify_and_tampered_proofs_fail(
            assignments in proptest::collection::vec((0u64..16, any::<u64>()), 1..24),
            probe in 0u64..16
        ) {
            let mut tree = FullMerkleTree::new(4).unwrap();
            for (idx, v) in &assignments {
                tree.set(*idx, Fr::from_u64(*v)).unwrap();
            }
            let leaf = tree.leaf(probe).unwrap();
            let proof = tree.proof(probe).unwrap();
            prop_assert!(proof.verify(tree.root(), leaf));
            // tampering with the leaf breaks verification
            prop_assert!(!proof.verify(tree.root(), leaf + Fr::ONE));
            // tampering with a sibling breaks verification
            let mut bad = proof.clone();
            bad.siblings[0] += Fr::ONE;
            prop_assert!(!bad.verify(tree.root(), leaf));
        }
    }
}
