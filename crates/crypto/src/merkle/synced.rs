//! The reference \[9\] light-member tree: own authentication path kept in
//! sync with remote membership events using only O(depth) storage.

use super::{node_hash, validate_depth, zero_hashes, MerkleError, MerkleProof};
use crate::field::Fr;

/// A light member's view of the membership tree.
///
/// The paper (§IV, citing vacp2p's Merkle-tree-update note \[9\]) observes
/// that a publishing peer does not need the full 67 MB depth-20 tree: it
/// only ever proves *its own* membership, so it can store just
///
/// * the append **frontier** (`depth` hashes) to track the running root, and
/// * its **own authentication path** (`depth` hashes),
///
/// and update both incrementally as membership events arrive:
///
/// * **Insertions** (`MemberRegistered` contract events) are append-only, so
///   the new values of every node along the inserted leaf's branch are
///   computable from the frontier alone — if one of those nodes is a sibling
///   on our own path, we refresh it in place.
/// * **Deletions** (`MemberSlashed` events) touch an arbitrary index; the
///   event is accompanied by the deleted member's authentication path (the
///   slasher, who runs a full tree, includes it), which this structure
///   verifies against its current root before applying.
///
/// Total storage is `2·depth + O(1)` hashes — about 1.3 KB at depth 20
/// versus 67 MB for [`super::FullMerkleTree`], reproducing the paper's
/// storage-optimization claim (E3).
///
/// # Examples
///
/// ```
/// use wakurln_crypto::{field::Fr, merkle::{FullMerkleTree, SyncedPathTree}};
///
/// let mut light = SyncedPathTree::new(8)?;
/// let mut network = FullMerkleTree::new(8)?;
///
/// // someone else registers first
/// network.append(Fr::from_u64(100))?;
/// light.apply_append(Fr::from_u64(100))?;
///
/// // we register
/// network.append(Fr::from_u64(200))?;
/// let my_index = light.register_own(Fr::from_u64(200))?;
/// assert_eq!(my_index, 1);
///
/// // a third member registers; our path stays valid
/// network.append(Fr::from_u64(300))?;
/// light.apply_append(Fr::from_u64(300))?;
///
/// let proof = light.own_proof().unwrap();
/// assert_eq!(light.root(), network.root());
/// assert!(proof.verify(network.root(), Fr::from_u64(200)));
/// # Ok::<(), wakurln_crypto::merkle::MerkleError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SyncedPathTree {
    depth: usize,
    next_index: u64,
    root: Fr,
    /// Pending left nodes per level, as in
    /// [`super::IncrementalMerkleTree`].
    frontier: Vec<Fr>,
    /// Node index (at each level) that `frontier[l]` currently represents,
    /// so deletions can refresh stale frontier entries.
    frontier_index: Vec<Option<u64>>,
    /// Our own membership: `(leaf_index, leaf_value, auth_path)`.
    own: Option<OwnMembership>,
}

#[derive(Clone, Debug)]
struct OwnMembership {
    index: u64,
    leaf: Fr,
    path: Vec<Fr>,
}

impl SyncedPathTree {
    /// Creates an empty light tree of the given depth.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::UnsupportedDepth`] for invalid depths.
    pub fn new(depth: usize) -> Result<SyncedPathTree, MerkleError> {
        validate_depth(depth)?;
        Ok(SyncedPathTree {
            depth,
            next_index: 0,
            root: zero_hashes()[depth],
            frontier: vec![Fr::ZERO; depth],
            frontier_index: vec![None; depth],
            own: None,
        })
    }

    /// The tree depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Leaves appended so far.
    pub fn len(&self) -> u64 {
        self.next_index
    }

    /// `true` if no members have registered yet.
    pub fn is_empty(&self) -> bool {
        self.next_index == 0
    }

    /// The current root (kept in lock-step with the network's full tree).
    pub fn root(&self) -> Fr {
        self.root
    }

    /// Our own leaf index, if registered.
    pub fn own_index(&self) -> Option<u64> {
        self.own.as_ref().map(|o| o.index)
    }

    /// Our own current authentication path, if registered.
    pub fn own_proof(&self) -> Option<MerkleProof> {
        self.own.as_ref().map(|o| MerkleProof {
            index: o.index,
            siblings: o.path.clone(),
        })
    }

    /// Applies a remote member registration (append-only insert).
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] at capacity.
    pub fn apply_append(&mut self, leaf: Fr) -> Result<u64, MerkleError> {
        self.append_inner(leaf, false)
    }

    /// Registers *ourselves*: appends our leaf and snapshots the
    /// authentication path for it.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] at capacity.
    pub fn register_own(&mut self, leaf: Fr) -> Result<u64, MerkleError> {
        self.append_inner(leaf, true)
    }

    #[allow(clippy::needless_range_loop)]
    fn append_inner(&mut self, leaf: Fr, is_own: bool) -> Result<u64, MerkleError> {
        if self.next_index >= (1u64 << self.depth) {
            return Err(MerkleError::TreeFull);
        }
        let index = self.next_index;
        let zeros = zero_hashes();

        // When this append is our own, the auth path at insertion time is
        // derived from the frontier (left siblings) and zero-subtrees
        // (right siblings).
        let mut own_path_snapshot = if is_own {
            Some(Vec::with_capacity(self.depth))
        } else {
            None
        };

        let mut node = leaf;
        let mut idx = index;
        for l in 0..self.depth {
            if let Some(path) = own_path_snapshot.as_mut() {
                if idx & 1 == 0 {
                    path.push(zeros[l]);
                } else {
                    path.push(self.frontier[l]);
                }
            }
            // Keep an existing own-path in sync: if the node being
            // recomputed at this level is the sibling of our own branch,
            // refresh it.
            if let Some(own) = self.own.as_mut() {
                if idx == (own.index >> l) ^ 1 {
                    own.path[l] = node;
                }
            }
            if idx & 1 == 0 {
                self.frontier[l] = node;
                self.frontier_index[l] = Some(idx);
                node = node_hash(node, zeros[l]);
            } else {
                node = node_hash(self.frontier[l], node);
            }
            idx >>= 1;
        }
        self.root = node;
        self.next_index = index + 1;
        if let Some(path) = own_path_snapshot {
            self.own = Some(OwnMembership { index, leaf, path });
        }
        Ok(index)
    }

    /// Applies a batch of remote registrations, recomputing each level
    /// **once per batch** (`O(n + depth)` hashes versus `O(n · depth)` for
    /// repeated [`SyncedPathTree::apply_append`]) while keeping the
    /// frontier and our own authentication path in sync. Returns the first
    /// appended index.
    ///
    /// # Errors
    ///
    /// Returns [`MerkleError::TreeFull`] (without modifying the tree) when
    /// the batch does not fit.
    pub fn apply_append_batch(&mut self, leaves: &[Fr]) -> Result<u64, MerkleError> {
        let start = self.next_index;
        if leaves.is_empty() {
            return Ok(start);
        }
        if leaves.len() as u64 > (1u64 << self.depth) - start {
            return Err(MerkleError::TreeFull);
        }
        // split borrows so the observer can touch the own-path and the
        // frontier bookkeeping while the roll-up owns the frontier
        let SyncedPathTree {
            depth,
            frontier,
            frontier_index,
            own,
            ..
        } = self;
        let root = super::roll_up_batch(*depth, start, leaves, frontier, |level| {
            // our own path: refresh the sibling at this level if the
            // batch recomputed it
            if let Some(own) = own.as_mut() {
                let sibling = (own.index >> level.level) ^ 1;
                let span = level.start..level.start + level.nodes.len() as u64;
                if span.contains(&sibling) {
                    own.path[level.level] = level.nodes[(sibling - level.start) as usize];
                }
            }
            // track which node index the frontier entry now represents,
            // so witness-backed deletions can refresh it
            if let Some(pending) = level.frontier_set {
                frontier_index[level.level] = Some(pending);
            }
        });
        self.root = root;
        self.next_index = start + leaves.len() as u64;
        Ok(start)
    }

    /// Applies a remote member deletion (slashing sets the leaf to a new
    /// value, normally [`super::EMPTY_LEAF`]), authenticated by the deleted
    /// member's path as carried in the slashing event.
    ///
    /// # Errors
    ///
    /// * [`MerkleError::IndexOutOfRange`] — `index` beyond appended leaves.
    /// * [`MerkleError::StaleWitness`] — the witness does not prove
    ///   `old_leaf` at `index` under the current root (e.g. events applied
    ///   out of order).
    #[allow(clippy::needless_range_loop)]
    pub fn apply_update_with_witness(
        &mut self,
        index: u64,
        old_leaf: Fr,
        new_leaf: Fr,
        witness: &MerkleProof,
    ) -> Result<(), MerkleError> {
        if index >= self.next_index {
            return Err(MerkleError::IndexOutOfRange {
                index,
                capacity: self.next_index,
            });
        }
        if witness.index != index
            || witness.siblings.len() != self.depth
            || !witness.verify(self.root, old_leaf)
        {
            return Err(MerkleError::StaleWitness);
        }

        let mut node = new_leaf;
        let mut idx = index;
        for l in 0..self.depth {
            if let Some(own) = self.own.as_mut() {
                if idx == (own.index >> l) ^ 1 {
                    own.path[l] = node;
                }
            }
            if self.frontier_index[l] == Some(idx) {
                self.frontier[l] = node;
            }
            node = if idx & 1 == 0 {
                node_hash(node, witness.siblings[l])
            } else {
                node_hash(witness.siblings[l], node)
            };
            idx >>= 1;
        }
        self.root = node;

        if let Some(own) = self.own.as_mut() {
            if own.index == index {
                own.leaf = new_leaf;
                if new_leaf == super::EMPTY_LEAF {
                    // we were slashed: our membership is gone
                    self.own = None;
                }
            }
        }
        Ok(())
    }

    /// Number of persistent hashes (frontier + own path + root) — the E3
    /// storage figure for a light member.
    pub fn stored_nodes(&self) -> usize {
        self.frontier.len() + self.own.as_ref().map_or(0, |o| o.path.len()) + 1
    }

    /// Estimated resident bytes of the hash storage.
    pub fn storage_bytes(&self) -> usize {
        self.stored_nodes() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::{FullMerkleTree, EMPTY_LEAF};
    use proptest::prelude::*;

    fn leaf(v: u64) -> Fr {
        Fr::from_u64(v + 1000)
    }

    #[test]
    fn tracks_root_through_appends() {
        let mut light = SyncedPathTree::new(5).unwrap();
        let mut full = FullMerkleTree::new(5).unwrap();
        for v in 0..20u64 {
            light.apply_append(leaf(v)).unwrap();
            full.append(leaf(v)).unwrap();
            assert_eq!(light.root(), full.root(), "after {v}");
        }
    }

    #[test]
    fn own_proof_stays_valid_as_others_join() {
        let depth = 6;
        let mut light = SyncedPathTree::new(depth).unwrap();
        let mut full = FullMerkleTree::new(depth).unwrap();
        // 5 earlier members
        for v in 0..5u64 {
            light.apply_append(leaf(v)).unwrap();
            full.append(leaf(v)).unwrap();
        }
        let my = light.register_own(leaf(99)).unwrap();
        full.append(leaf(99)).unwrap();
        assert_eq!(my, 5);
        // 30 later members
        for v in 6..36u64 {
            light.apply_append(leaf(v)).unwrap();
            full.append(leaf(v)).unwrap();
            let proof = light.own_proof().unwrap();
            assert!(proof.verify(full.root(), leaf(99)), "after {v}");
            assert_eq!(light.root(), full.root());
            assert_eq!(proof, full.proof(my).unwrap());
        }
    }

    #[test]
    fn deletion_with_witness_updates_root_and_own_path() {
        let depth = 5;
        let mut light = SyncedPathTree::new(depth).unwrap();
        let mut full = FullMerkleTree::new(depth).unwrap();
        for v in 0..4u64 {
            light.apply_append(leaf(v)).unwrap();
            full.append(leaf(v)).unwrap();
        }
        light.register_own(leaf(50)).unwrap();
        full.append(leaf(50)).unwrap();
        for v in 5..10u64 {
            light.apply_append(leaf(v)).unwrap();
            full.append(leaf(v)).unwrap();
        }
        // member 2 gets slashed
        let witness = full.proof(2).unwrap();
        full.remove(2).unwrap();
        light
            .apply_update_with_witness(2, leaf(2), EMPTY_LEAF, &witness)
            .unwrap();
        assert_eq!(light.root(), full.root());
        let proof = light.own_proof().unwrap();
        assert!(proof.verify(full.root(), leaf(50)));
    }

    #[test]
    fn stale_witness_rejected() {
        let depth = 4;
        let mut light = SyncedPathTree::new(depth).unwrap();
        let mut full = FullMerkleTree::new(depth).unwrap();
        for v in 0..4u64 {
            light.apply_append(leaf(v)).unwrap();
            full.append(leaf(v)).unwrap();
        }
        let witness = full.proof(1).unwrap();
        // tamper: wrong old leaf
        assert_eq!(
            light.apply_update_with_witness(1, leaf(9), EMPTY_LEAF, &witness),
            Err(MerkleError::StaleWitness)
        );
        // out-of-range index
        assert!(matches!(
            light.apply_update_with_witness(10, leaf(1), EMPTY_LEAF, &witness),
            Err(MerkleError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn own_slashing_clears_membership() {
        let depth = 4;
        let mut light = SyncedPathTree::new(depth).unwrap();
        let mut full = FullMerkleTree::new(depth).unwrap();
        light.register_own(leaf(7)).unwrap();
        full.append(leaf(7)).unwrap();
        let witness = full.proof(0).unwrap();
        full.remove(0).unwrap();
        light
            .apply_update_with_witness(0, leaf(7), EMPTY_LEAF, &witness)
            .unwrap();
        assert!(light.own_proof().is_none());
        assert_eq!(light.root(), full.root());
    }

    #[test]
    fn frontier_refreshed_by_deletion_keeps_future_appends_correct() {
        // Regression shape: delete a leaf that is inside a pending frontier
        // subtree, then append more members; roots must keep matching.
        let depth = 4;
        let mut light = SyncedPathTree::new(depth).unwrap();
        let mut full = FullMerkleTree::new(depth).unwrap();
        for v in 0..3u64 {
            light.apply_append(leaf(v)).unwrap();
            full.append(leaf(v)).unwrap();
        }
        // leaf 2 is a pending left node in the frontier at level 0
        let witness = full.proof(2).unwrap();
        full.remove(2).unwrap();
        light
            .apply_update_with_witness(2, leaf(2), EMPTY_LEAF, &witness)
            .unwrap();
        assert_eq!(light.root(), full.root());
        for v in 3..8u64 {
            light.apply_append(leaf(v)).unwrap();
            full.append(leaf(v)).unwrap();
            assert_eq!(light.root(), full.root(), "after append {v}");
        }
    }

    #[test]
    fn storage_is_small_at_depth_20() {
        let mut t = SyncedPathTree::new(20).unwrap();
        t.register_own(Fr::ONE).unwrap();
        // 2 × 20 + 1 hashes ≈ 1.3 KB — vs ~67 MB for the full tree (E3)
        assert!(t.storage_bytes() <= 2 * 1024);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random interleavings of appends and witness-backed deletions keep
        /// the light tree's root and own-proof identical to the full tree.
        #[test]
        fn prop_light_matches_full_under_event_stream(
            ops in proptest::collection::vec(any::<(bool, u64)>(), 1..40),
            own_at in 0usize..5
        ) {
            let depth = 6;
            let mut light = SyncedPathTree::new(depth).unwrap();
            let mut full = FullMerkleTree::new(depth).unwrap();
            let mut appended: Vec<(u64, Fr)> = Vec::new();
            let mut own_leaf = None;
            let mut counter = 0u64;

            for (i, (is_delete, sel)) in ops.into_iter().enumerate() {
                if is_delete && !appended.is_empty() {
                    let pos = (sel as usize) % appended.len();
                    let (idx, old) = appended[pos];
                    if old == EMPTY_LEAF { continue; }
                    let witness = full.proof(idx).unwrap();
                    full.remove(idx).unwrap();
                    light.apply_update_with_witness(idx, old, EMPTY_LEAF, &witness).unwrap();
                    appended[pos].1 = EMPTY_LEAF;
                    if own_leaf == Some(idx) { own_leaf = None; }
                } else if full.next_index() < full.capacity() {
                    counter += 1;
                    let v = leaf(counter);
                    if i == own_at && own_leaf.is_none() {
                        let idx = light.register_own(v).unwrap();
                        full.append(v).unwrap();
                        own_leaf = Some(idx);
                        appended.push((idx, v));
                    } else {
                        let idx = light.apply_append(v).unwrap();
                        full.append(v).unwrap();
                        appended.push((idx, v));
                    }
                }
                prop_assert_eq!(light.root(), full.root());
                if let Some(own_idx) = own_leaf {
                    let proof = light.own_proof().unwrap();
                    prop_assert_eq!(&proof, &full.proof(own_idx).unwrap());
                }
            }
        }
    }
}
