//! Shamir secret sharing over [`Fr`].
//!
//! RLN's economic incentive rests on a degree-1 instance of Shamir's scheme
//! [Shamir'79]: each signal discloses one evaluation of the line
//! `A(x) = sk + a1·x` (with `a1 = H(sk, ∅)` bound to the epoch). One share
//! reveals nothing about `sk`; two *distinct* shares for the same epoch —
//! which only exist if a member double-signals — reconstruct `sk` exactly.
//!
//! A general `k`-of-`n` implementation ([`Polynomial`], [`split`],
//! [`reconstruct`]) is provided as well, both because it is the natural
//! generalization and because property tests over it pin down the degree-1
//! special case used by the protocol.
//!
//! # Examples
//!
//! ```
//! use wakurln_crypto::{field::Fr, shamir};
//!
//! let sk = Fr::from_u64(1234);
//! let a1 = Fr::from_u64(777); // epoch-bound line slope
//! let s1 = shamir::share_on_line(sk, a1, Fr::from_u64(10));
//! let s2 = shamir::share_on_line(sk, a1, Fr::from_u64(20));
//! assert_eq!(shamir::recover_line_secret(&s1, &s2), Some(sk));
//! ```

use crate::field::Fr;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One evaluation point of a sharing polynomial: `(x, y = A(x))`.
///
/// In RLN terms this is the `[sk]` component of a signal, with
/// `x = H(m)` and `y = sk + a1·x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Share {
    /// Evaluation point (derived from the message in RLN).
    pub x: Fr,
    /// Polynomial evaluation at `x`.
    pub y: Fr,
}

/// Evaluates the RLN line `A(x) = secret + slope·x` at `x`.
pub fn share_on_line(secret: Fr, slope: Fr, x: Fr) -> Share {
    Share {
        x,
        y: secret + slope * x,
    }
}

/// Recovers the line's secret (`A(0)`) from two shares.
///
/// Returns `None` when `s1.x == s2.x`: two shares at the same evaluation
/// point are either identical (no new information) or inconsistent (cannot
/// lie on one line), and in both cases reconstruction is impossible. This
/// is the RLN corner case where a spammer repeats the *exact same message*
/// in one epoch — routers treat that as a duplicate rather than spam.
pub fn recover_line_secret(s1: &Share, s2: &Share) -> Option<Fr> {
    let dx = s2.x - s1.x;
    let inv = dx.inverse()?;
    // A(0) = (y1·x2 − y2·x1) / (x2 − x1)
    Some((s1.y * s2.x - s2.y * s1.x) * inv)
}

/// Recovers the line's slope from two shares (useful for verifying a
/// reconstructed identity: `slope == H(sk, ∅)` must hold).
pub fn recover_line_slope(s1: &Share, s2: &Share) -> Option<Fr> {
    let dx = s2.x - s1.x;
    let inv = dx.inverse()?;
    Some((s2.y - s1.y) * inv)
}

/// A polynomial over `Fr` in coefficient form, `coeffs[i]` being the
/// coefficient of `x^i`. `coeffs[0]` is the shared secret.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<Fr>,
}

impl Polynomial {
    /// Creates a random polynomial of degree `k - 1` with constant term
    /// `secret`, suitable for a `k`-of-`n` sharing.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn random_for_secret<R: RngCore + ?Sized>(secret: Fr, k: usize, rng: &mut R) -> Polynomial {
        assert!(k >= 1, "threshold must be at least 1");
        let mut coeffs = Vec::with_capacity(k);
        coeffs.push(secret);
        for _ in 1..k {
            coeffs.push(Fr::random(rng));
        }
        Polynomial { coeffs }
    }

    /// Creates a polynomial from explicit coefficients (constant term first).
    pub fn from_coeffs(coeffs: Vec<Fr>) -> Polynomial {
        assert!(
            !coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        Polynomial { coeffs }
    }

    /// The sharing threshold (`degree + 1`).
    pub fn threshold(&self) -> usize {
        self.coeffs.len()
    }

    /// The shared secret, `A(0)`.
    pub fn secret(&self) -> Fr {
        // lint:allow(panic-path, reason = "a polynomial always carries its constant coefficient at index 0")
        self.coeffs[0]
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: Fr) -> Fr {
        let mut acc = Fr::ZERO;
        for c in self.coeffs.iter().rev() {
            acc = acc * x + *c;
        }
        acc
    }

    /// Produces the share at evaluation point `x`.
    pub fn share(&self, x: Fr) -> Share {
        Share { x, y: self.eval(x) }
    }
}

/// Splits `secret` into `n` shares with threshold `k` at evaluation points
/// `1..=n`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn split<R: RngCore + ?Sized>(secret: Fr, k: usize, n: usize, rng: &mut R) -> Vec<Share> {
    assert!(k >= 1 && k <= n, "require 1 <= k <= n");
    let poly = Polynomial::random_for_secret(secret, k, rng);
    (1..=n as u64)
        .map(|i| poly.share(Fr::from_u64(i)))
        .collect()
}

/// Lagrange interpolation at zero: reconstructs the secret from exactly
/// `k` shares with pairwise-distinct `x` coordinates.
///
/// Returns `None` if any two shares have the same `x`.
pub fn reconstruct(shares: &[Share]) -> Option<Fr> {
    for (i, a) in shares.iter().enumerate() {
        for b in shares.iter().skip(i + 1) {
            if a.x == b.x {
                return None;
            }
        }
    }
    let mut secret = Fr::ZERO;
    for (i, si) in shares.iter().enumerate() {
        let mut num = Fr::ONE;
        let mut den = Fr::ONE;
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            num *= sj.x; // (0 - x_j) up to sign; signs cancel pairwise below
            den *= sj.x - si.x;
        }
        // λ_i(0) = Π_j (0 − x_j)/(x_i − x_j) = Π_j x_j / (x_j − x_i)
        // we computed den = Π (x_j − x_i) with opposite sign per factor:
        // Π (x_j - x_i) vs needed Π (x_j - x_i) — consistent as written.
        let li = num * den.inverse()?;
        secret += si.y * li;
    }
    Some(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_share_and_recover() {
        let sk = Fr::from_u64(99);
        let a1 = Fr::from_u64(5);
        let s1 = share_on_line(sk, a1, Fr::from_u64(3));
        let s2 = share_on_line(sk, a1, Fr::from_u64(4));
        assert_eq!(recover_line_secret(&s1, &s2), Some(sk));
        assert_eq!(recover_line_slope(&s1, &s2), Some(a1));
    }

    #[test]
    fn same_x_cannot_reconstruct() {
        let sk = Fr::from_u64(99);
        let a1 = Fr::from_u64(5);
        let s1 = share_on_line(sk, a1, Fr::from_u64(3));
        let s2 = share_on_line(sk, a1, Fr::from_u64(3));
        assert_eq!(recover_line_secret(&s1, &s2), None);
        assert_eq!(recover_line_slope(&s1, &s2), None);
    }

    #[test]
    fn single_share_is_consistent_with_any_secret() {
        // one share leaks nothing: for any candidate secret there exists a
        // slope explaining the share
        let sk = Fr::from_u64(1234);
        let a1 = Fr::from_u64(777);
        let x = Fr::from_u64(10);
        let s = share_on_line(sk, a1, x);
        for candidate in [Fr::ZERO, Fr::ONE, Fr::from_u64(5555)] {
            // slope' = (y - candidate)/x explains the share for candidate
            let slope = (s.y - candidate) * x.inverse().unwrap();
            assert_eq!(share_on_line(candidate, slope, x), s);
        }
    }

    #[test]
    fn kn_split_reconstruct() {
        let mut rng = StdRng::seed_from_u64(42);
        let secret = Fr::random(&mut rng);
        let shares = split(secret, 3, 5, &mut rng);
        assert_eq!(shares.len(), 5);
        assert_eq!(reconstruct(&shares[0..3]), Some(secret));
        assert_eq!(reconstruct(&shares[2..5]), Some(secret));
        assert_eq!(
            reconstruct(&[shares[0], shares[2], shares[4]]),
            Some(secret)
        );
    }

    #[test]
    fn too_few_shares_give_wrong_secret() {
        let mut rng = StdRng::seed_from_u64(43);
        let secret = Fr::random(&mut rng);
        let shares = split(secret, 3, 5, &mut rng);
        // interpolating a degree-2 polynomial from 2 points is underdetermined;
        // treating them as a 2-threshold sharing yields a different value
        let guessed = reconstruct(&shares[0..2]).unwrap();
        assert_ne!(guessed, secret);
    }

    #[test]
    fn duplicate_x_rejected_in_reconstruct() {
        let mut rng = StdRng::seed_from_u64(44);
        let shares = split(Fr::from_u64(7), 2, 3, &mut rng);
        assert_eq!(reconstruct(&[shares[0], shares[0]]), None);
    }

    #[test]
    fn polynomial_eval_horner() {
        // p(x) = 3 + 2x + x^2
        let p = Polynomial::from_coeffs(vec![Fr::from_u64(3), Fr::from_u64(2), Fr::from_u64(1)]);
        assert_eq!(p.eval(Fr::ZERO), Fr::from_u64(3));
        assert_eq!(p.eval(Fr::from_u64(1)), Fr::from_u64(6));
        assert_eq!(p.eval(Fr::from_u64(2)), Fr::from_u64(11));
        assert_eq!(p.threshold(), 3);
        assert_eq!(p.secret(), Fr::from_u64(3));
    }

    #[test]
    #[should_panic(expected = "require 1 <= k <= n")]
    fn split_rejects_bad_threshold() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = split(Fr::ONE, 4, 3, &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_line_roundtrip(sk in any::<u64>(), a1 in any::<u64>(),
                               x1 in 1u64..1_000_000, dx in 1u64..1_000_000) {
            let sk = Fr::from_u64(sk);
            let a1 = Fr::from_u64(a1);
            let s1 = share_on_line(sk, a1, Fr::from_u64(x1));
            let s2 = share_on_line(sk, a1, Fr::from_u64(x1 + dx));
            prop_assert_eq!(recover_line_secret(&s1, &s2), Some(sk));
            prop_assert_eq!(recover_line_slope(&s1, &s2), Some(a1));
        }

        #[test]
        fn prop_kn_roundtrip(seed in any::<u64>(), k in 1usize..5, extra in 0usize..4) {
            let n = k + extra;
            let mut rng = StdRng::seed_from_u64(seed);
            let secret = Fr::random(&mut rng);
            let shares = split(secret, k, n, &mut rng);
            prop_assert_eq!(reconstruct(&shares[..k]), Some(secret));
        }

        #[test]
        fn prop_shares_from_different_lines_recover_different_secrets(
            sk1 in 1u64..u64::MAX, delta in 1u64..1_000_000
        ) {
            // two signals from *different* identities never frame each other:
            // mixing one share from each line reconstructs garbage, not sk1/sk2
            let sk1 = Fr::from_u64(sk1);
            let sk2 = sk1 + Fr::from_u64(delta);
            let a = Fr::from_u64(31337);
            let s1 = share_on_line(sk1, a, Fr::from_u64(5));
            let s2 = share_on_line(sk2, a, Fr::from_u64(6));
            let mixed = recover_line_secret(&s1, &s2).unwrap();
            prop_assert_ne!(mixed, sk1);
            prop_assert_ne!(mixed, sk2);
        }
    }
}
