//! The declarative scenario description.
//!
//! A [`ScenarioSpec`] is a complete, self-contained description of one
//! simulated world: how many peers of which kinds, how they are wired,
//! what the links look like, who publishes when, who attacks how, and
//! which peers crash or join at which simulated timestamps. Given the
//! same spec and seed, the engine replays the exact same run — the
//! resulting [`ScenarioReport`](crate::report::ScenarioReport) is
//! byte-identical.

use waku_rln_relay::{EpochScheme, PipelineConfig};

/// Bootstrap-topology family (the shapes used in p2p evaluations; the
/// GossipSub paper evaluates on random regular-ish graphs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologySpec {
    /// Random graph, each peer bootstrapped with `degree` random peers
    /// (edges symmetrized).
    RandomRegular {
        /// Bootstrap degree per peer.
        degree: usize,
    },
    /// A ring — worst-case diameter, used for propagation stress.
    Ring,
    /// Every peer knows every other peer (small networks only).
    FullMesh,
}

/// Link latency family (mirrors `wakurln_netsim::latency`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencySpec {
    /// Fixed latency on every link.
    Constant {
        /// One-way delay, milliseconds.
        ms: u64,
    },
    /// Uniformly random latency in `[min_ms, max_ms]`.
    Uniform {
        /// Lower bound (inclusive), milliseconds.
        min_ms: u64,
        /// Upper bound (inclusive), milliseconds.
        max_ms: u64,
    },
}

/// Honest traffic: recurring publish rounds.
///
/// Each round, `publishers` distinct live honest members publish one
/// unique payload each through the full RLN pipeline (proof generation,
/// epoch nullifier, rate limit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficSpec {
    /// Publishers per round.
    pub publishers: usize,
    /// Number of rounds.
    pub rounds: usize,
    /// Simulated time of the first round, milliseconds (leave room for
    /// mesh formation).
    pub start_ms: u64,
    /// Gap between rounds, milliseconds. Keep it above the epoch length
    /// if the same peer may be drawn twice, or the local rate limiter
    /// refuses the second publish.
    pub interval_ms: u64,
}

/// The double-signaling spam attack: `spammers` adversarial members each
/// publish `burst` distinct messages inside one epoch at `at_ms`,
/// bypassing their local rate limiters (§III — only the network-side
/// nullifier maps can catch this).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpamSpec {
    /// Number of spamming members.
    pub spammers: usize,
    /// Distinct messages per spammer inside the epoch.
    pub burst: usize,
    /// When the burst fires, milliseconds.
    pub at_ms: u64,
}

/// What happens at one churn timestamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnAction {
    /// `peers` live honest peers crash (process death: no goodbye, no
    /// slash — their stake stays on the contract).
    Crash {
        /// How many peers die.
        peers: usize,
    },
    /// `peers` fresh peers join: new identity, registration transaction,
    /// full §III group-synchronization bootstrap from the replay log.
    Join {
        /// How many peers join.
        peers: usize,
    },
}

/// One entry of the churn schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnEvent {
    /// Simulated time the event fires, milliseconds.
    pub at_ms: u64,
    /// What happens.
    pub action: ChurnAction,
}

/// The targeted censorship-eclipse attack: peer 0 (the victim) is
/// bootstrapped **exclusively** to `attackers` adversarial peers, and no
/// honest peer knows the victim. The attackers answer all control
/// traffic (subscriptions, grafts, pings) but silently drop every
/// message forward — the victim sees a healthy-looking mesh that never
/// delivers anything.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EclipseSpec {
    /// Size of the censoring bootstrap ring around the victim.
    pub attackers: usize,
}

/// The colluding passive-surveillance adversary: a fraction of the
/// honest relay population is secretly controlled by one adversary who
/// records, at each controlled node, every incoming message forward as
/// `(message_id, arrival_ms, previous_hop)`. After the run, attribution
/// estimators (first-spy / earliest-arrival, neighbour-weighted
/// centrality) pool those tapes and guess each message's publisher —
/// the deanonymization attack surface analysed in "Who started this
/// rumor?" (Bellet et al.) and "On the Inherent Anonymity of Gossiping"
/// (Guerraoui et al.), see `PAPERS.md`.
///
/// Observers stay protocol-honest (they relay, graft and gossip
/// normally) but are excluded from the honest publisher pool — the
/// adversary does not publish the traffic it is trying to attribute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurveillanceSpec {
    /// Fraction of the initial honest population the adversary controls,
    /// in `(0, 1]`. The observer count is `round(fraction · honest)`,
    /// clamped to leave at least two honest non-observers.
    pub observer_fraction: f64,
}

/// A device class for heterogeneous-network scenarios: a name, a proof
/// verification cost (the dominant validation cost, §IV: ≈30 ms on an
/// iPhone 8) and a relative share of the honest population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceClassSpec {
    /// Class label (reporting only).
    pub name: &'static str,
    /// Simulated zkSNARK verification cost, microseconds.
    pub verify_proof_micros: u64,
    /// Relative weight when assigning classes round-robin.
    pub share: u32,
}

/// The full declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report label; built-ins use their library name).
    pub name: String,
    /// Honest peers at start (includes the eclipse victim, when any).
    pub honest: usize,
    /// Determinism seed: topology, latencies, identity material, traffic
    /// draws and churn draws all derive from it.
    pub seed: u64,
    /// Membership tree depth; `0` = auto-size from the peer count.
    pub tree_depth: usize,
    /// Bootstrap topology for the honest population.
    pub topology: TopologySpec,
    /// Link latency model.
    pub latency: LatencySpec,
    /// I.i.d. packet-loss probability applied to every send.
    pub loss: f64,
    /// Epoch scheme (length `T` and delay bound `D` → `Thr = ⌈D/T⌉`).
    pub epoch: EpochScheme,
    /// Honest traffic schedule.
    pub traffic: TrafficSpec,
    /// Spam attack, if any.
    pub spam: Option<SpamSpec>,
    /// Churn schedule (must be sorted by `at_ms`; the engine asserts).
    pub churn: Vec<ChurnEvent>,
    /// Targeted eclipse attack, if any.
    pub eclipse: Option<EclipseSpec>,
    /// Colluding passive-surveillance adversary, if any. Enables the
    /// `anonymity_*` section of the report.
    pub surveillance: Option<SurveillanceSpec>,
    /// Source-anonymity countermeasure: publishers hold each first-hop
    /// copy of their own messages back for an independent uniform delay
    /// in `[0, publish_jitter_ms]`, drawn from the node's deterministic
    /// RNG stream (so the determinism contract is untouched). `0`
    /// disables the countermeasure. Costs propagation latency, buys
    /// attribution resistance — the trade-off curve the gossip-privacy
    /// papers predict.
    pub publish_jitter_ms: u64,
    /// Device mix; empty = every peer uses the default cost model.
    pub devices: Vec<DeviceClassSpec>,
    /// Batched-validation pipeline knobs for every relay (`max_batch`,
    /// `flush_interval_ms`, `cache_capacity`); `None` runs the serial
    /// per-message validator — the pre-pipeline behaviour, byte-identical
    /// reports included.
    pub pipeline: Option<PipelineConfig>,
    /// Worker threads for the sharded event scheduler (`0` = auto-detect
    /// from available parallelism). **Not part of the simulated world**:
    /// the scheduler guarantees byte-identical reports for every thread
    /// count, so this only trades wall-clock time for cores.
    pub threads: usize,
    /// Cool-down after the last scheduled event, milliseconds — time for
    /// gossip recovery, detection, slashing and sync to play out.
    pub drain_ms: u64,
    /// Lock-step slice for world advancement, milliseconds (network ↔
    /// chain synchronization granularity).
    pub slice_ms: u64,
}

impl ScenarioSpec {
    /// A quiet, attack-free starting point: `honest` peers on a random
    /// regular graph with internet-ish uniform latency, default epochs,
    /// and a small recurring traffic schedule. Library scenarios start
    /// from this and layer adversities on top.
    pub fn baseline(honest: usize, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: "baseline".to_string(),
            honest,
            seed,
            tree_depth: 0,
            topology: TopologySpec::RandomRegular { degree: 6 },
            latency: LatencySpec::Uniform {
                min_ms: 10,
                max_ms: 80,
            },
            loss: 0.0,
            epoch: EpochScheme::default(),
            traffic: TrafficSpec {
                publishers: (honest / 8).clamp(2, 24),
                rounds: 3,
                start_ms: 10_000,
                interval_ms: 12_000,
            },
            spam: None,
            churn: Vec::new(),
            eclipse: None,
            surveillance: None,
            publish_jitter_ms: 0,
            devices: Vec::new(),
            pipeline: None,
            threads: 1,
            drain_ms: 40_000,
            slice_ms: 1_000,
        }
    }

    /// Total peers at simulation start (honest + spammers + eclipse
    /// attackers).
    pub fn initial_peers(&self) -> usize {
        self.honest
            + self.spam.map(|s| s.spammers).unwrap_or(0)
            + self.eclipse.map(|e| e.attackers).unwrap_or(0)
    }

    /// The tree depth actually used: explicit, or auto-sized to hold the
    /// initial population plus scheduled joins with headroom.
    pub fn effective_tree_depth(&self) -> usize {
        if self.tree_depth != 0 {
            return self.tree_depth;
        }
        let joins: usize = self
            .churn
            .iter()
            .map(|e| match e.action {
                ChurnAction::Join { peers } => peers,
                ChurnAction::Crash { .. } => 0,
            })
            .sum();
        let capacity_needed = (self.initial_peers() + joins) * 2;
        let mut depth = 10;
        while (1usize << depth) < capacity_needed {
            depth += 1;
        }
        depth.min(20)
    }

    /// Number of colluding observers the surveillance adversary controls:
    /// `round(observer_fraction · honest)`, at least 1, leaving at least
    /// two honest non-observers to publish. 0 without surveillance.
    pub fn observer_count(&self) -> usize {
        match self.surveillance {
            None => 0,
            Some(s) => {
                let wanted = (self.honest as f64 * s.observer_fraction).round() as usize;
                wanted.clamp(1, self.honest.saturating_sub(2))
            }
        }
    }

    /// Simulated end time: last scheduled event plus the drain window.
    pub fn duration_ms(&self) -> u64 {
        let last_traffic = self.traffic.start_ms
            + self.traffic.interval_ms * self.traffic.rounds.saturating_sub(1) as u64;
        let last_spam = self.spam.map(|s| s.at_ms).unwrap_or(0);
        let last_churn = self.churn.last().map(|e| e.at_ms).unwrap_or(0);
        last_traffic.max(last_spam).max(last_churn) + self.drain_ms
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an impossible spec (no peers, unsorted churn, loss out
    /// of range, zero slice, eclipse without enough honest peers).
    pub fn validate(&self) {
        assert!(self.honest >= 2, "need at least two honest peers");
        assert!((0.0..=1.0).contains(&self.loss), "loss out of range");
        assert!(self.slice_ms > 0, "slice must be positive");
        assert!(
            self.churn.windows(2).all(|w| w[0].at_ms <= w[1].at_ms),
            "churn schedule must be sorted by time"
        );
        if let Some(e) = self.eclipse {
            assert!(e.attackers >= 1, "eclipse needs at least one attacker");
            assert!(
                self.honest >= 3,
                "eclipse needs a victim plus honest bystanders"
            );
        }
        if let Some(s) = self.spam {
            assert!(s.spammers >= 1 && s.burst >= 2, "spam needs a real burst");
        }
        if let Some(s) = self.surveillance {
            assert!(
                s.observer_fraction > 0.0 && s.observer_fraction <= 1.0,
                "observer fraction out of range"
            );
            assert!(
                self.honest >= 4,
                "surveillance needs observers plus honest publishers"
            );
        }
        if let Some(p) = self.pipeline {
            assert!(p.max_batch >= 1, "pipeline batch must hold a message");
            assert!(
                p.flush_interval_ms >= 1,
                "pipeline flush interval must be positive"
            );
        }
        let depth = self.effective_tree_depth();
        assert!(
            (1usize << depth) >= self.initial_peers(),
            "tree depth {depth} cannot hold {} peers",
            self.initial_peers()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid_at_many_sizes() {
        for n in [2, 8, 100, 1000, 2000] {
            ScenarioSpec::baseline(n, 1).validate();
        }
    }

    #[test]
    fn auto_depth_scales_with_population() {
        let small = ScenarioSpec::baseline(8, 1);
        assert_eq!(small.effective_tree_depth(), 10); // floor
        let big = ScenarioSpec::baseline(2000, 1);
        assert!((1 << big.effective_tree_depth()) >= 4000);
        let mut with_joins = ScenarioSpec::baseline(500, 1);
        with_joins.churn.push(ChurnEvent {
            at_ms: 1000,
            action: ChurnAction::Join { peers: 600 },
        });
        assert!((1 << with_joins.effective_tree_depth()) >= 2200);
    }

    #[test]
    fn duration_covers_last_event_plus_drain() {
        let mut spec = ScenarioSpec::baseline(8, 1);
        spec.traffic = TrafficSpec {
            publishers: 2,
            rounds: 2,
            start_ms: 10_000,
            interval_ms: 12_000,
        };
        spec.drain_ms = 5_000;
        assert_eq!(spec.duration_ms(), 27_000);
        spec.churn.push(ChurnEvent {
            at_ms: 60_000,
            action: ChurnAction::Crash { peers: 1 },
        });
        assert_eq!(spec.duration_ms(), 65_000);
    }

    #[test]
    fn observer_count_scales_and_leaves_publishers() {
        let mut spec = ScenarioSpec::baseline(100, 1);
        assert_eq!(spec.observer_count(), 0);
        spec.surveillance = Some(SurveillanceSpec {
            observer_fraction: 0.10,
        });
        assert_eq!(spec.observer_count(), 10);
        spec.validate();
        // even full collusion leaves two honest publishers
        spec.surveillance = Some(SurveillanceSpec {
            observer_fraction: 1.0,
        });
        assert_eq!(spec.observer_count(), 98);
        // a tiny fraction still fields at least one observer
        spec.surveillance = Some(SurveillanceSpec {
            observer_fraction: 0.001,
        });
        assert_eq!(spec.observer_count(), 1);
    }

    #[test]
    #[should_panic(expected = "observer fraction out of range")]
    fn zero_observer_fraction_rejected() {
        let mut spec = ScenarioSpec::baseline(10, 1);
        spec.surveillance = Some(SurveillanceSpec {
            observer_fraction: 0.0,
        });
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_churn_rejected() {
        let mut spec = ScenarioSpec::baseline(8, 1);
        spec.churn = vec![
            ChurnEvent {
                at_ms: 2000,
                action: ChurnAction::Crash { peers: 1 },
            },
            ChurnEvent {
                at_ms: 1000,
                action: ChurnAction::Crash { peers: 1 },
            },
        ];
        spec.validate();
    }
}
