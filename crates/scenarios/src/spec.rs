//! The declarative scenario description.
//!
//! A [`ScenarioSpec`] is a complete, self-contained description of one
//! simulated world: how many peers of which kinds, how they are wired,
//! what the links look like, who publishes when, who attacks how, and
//! which peers crash or join at which simulated timestamps. Given the
//! same spec and seed, the engine replays the exact same run — the
//! resulting [`ScenarioReport`](crate::report::ScenarioReport) is
//! byte-identical.

use waku_rln_relay::{EpochScheme, PipelineConfig};

/// Bootstrap-topology family (the shapes used in p2p evaluations; the
/// GossipSub paper evaluates on random regular-ish graphs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologySpec {
    /// Random graph, each peer bootstrapped with `degree` random peers
    /// (edges symmetrized).
    RandomRegular {
        /// Bootstrap degree per peer.
        degree: usize,
    },
    /// A ring — worst-case diameter, used for propagation stress.
    Ring,
    /// Every peer knows every other peer (small networks only).
    FullMesh,
}

/// Link latency family (mirrors `wakurln_netsim::latency`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencySpec {
    /// Fixed latency on every link.
    Constant {
        /// One-way delay, milliseconds.
        ms: u64,
    },
    /// Uniformly random latency in `[min_ms, max_ms]`.
    Uniform {
        /// Lower bound (inclusive), milliseconds.
        min_ms: u64,
        /// Upper bound (inclusive), milliseconds.
        max_ms: u64,
    },
}

/// Honest traffic: recurring publish rounds.
///
/// Each round, `publishers` distinct live honest members publish one
/// unique payload each through the full RLN pipeline (proof generation,
/// epoch nullifier, rate limit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficSpec {
    /// Publishers per round.
    pub publishers: usize,
    /// Number of rounds.
    pub rounds: usize,
    /// Simulated time of the first round, milliseconds (leave room for
    /// mesh formation).
    pub start_ms: u64,
    /// Gap between rounds, milliseconds. Keep it above the epoch length
    /// if the same peer may be drawn twice, or the local rate limiter
    /// refuses the second publish.
    pub interval_ms: u64,
}

/// The double-signaling spam attack: `spammers` adversarial members each
/// publish `burst` distinct messages inside one epoch at `at_ms`,
/// bypassing their local rate limiters (§III — only the network-side
/// nullifier maps can catch this).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpamSpec {
    /// Number of spamming members.
    pub spammers: usize,
    /// Distinct messages per spammer inside the epoch.
    pub burst: usize,
    /// When the burst fires, milliseconds.
    pub at_ms: u64,
}

/// What happens at one churn timestamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnAction {
    /// `peers` live honest peers crash (process death: no goodbye, no
    /// slash — their stake stays on the contract).
    Crash {
        /// How many peers die.
        peers: usize,
    },
    /// `peers` fresh peers join: new identity, registration transaction,
    /// full §III group-synchronization bootstrap from the replay log.
    Join {
        /// How many peers join.
        peers: usize,
    },
}

/// One entry of the churn schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnEvent {
    /// Simulated time the event fires, milliseconds.
    pub at_ms: u64,
    /// What happens.
    pub action: ChurnAction,
}

/// A timed crash→restart fault: `peers` live honest peers crash at
/// `at_ms` and restart `downtime_ms` later. Restarted peers come back in
/// their original slot (stable id, continuous per-node metrics), re-run
/// gossip startup (re-subscribe, re-graft bounded by the PRUNE backoff)
/// and resynchronize the group via the harness replay log — immediately
/// when the registration contract is reachable, with counted retries
/// when a [`ContractOutageEvent`] overlaps the restart.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RestartEvent {
    /// Crash time, milliseconds.
    pub at_ms: u64,
    /// How many live honest peers crash.
    pub peers: usize,
    /// Downtime before the restart, milliseconds.
    pub downtime_ms: u64,
    /// `true` = warm rejoin (tree/validator state survived on disk; only
    /// the missed events replay). `false` = cold rejoin (state wiped;
    /// full group resynchronization from genesis).
    pub warm: bool,
}

/// A network partition: at `at_ms` the live population splits into a
/// majority and a minority group; every cross-group send is dropped until
/// the partition heals `heal_after_ms` later. Keep `heal_after_ms` plus
/// the time to the next keepalive below the gossip `peer_timeout_ms`
/// (default 30 s), or the liveness sweep prunes cross-partition mesh
/// links permanently and the halves never re-merge on their own.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionEvent {
    /// Partition start, milliseconds.
    pub at_ms: u64,
    /// Time until the partition heals, milliseconds.
    pub heal_after_ms: u64,
    /// Fraction of live peers cut off into the minority group, in
    /// `(0, 0.5]`.
    pub minority_fraction: f64,
}

/// A link-degradation burst: for `duration_ms` every send additionally
/// loses with probability `extra_loss` (independent of the base loss) and
/// every delivered message takes `extra_latency_ms` longer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationEvent {
    /// Burst start, milliseconds.
    pub at_ms: u64,
    /// Burst length, milliseconds.
    pub duration_ms: u64,
    /// Additional i.i.d. loss probability in `[0, 1]`.
    pub extra_loss: f64,
    /// Additional per-message latency, milliseconds.
    pub extra_latency_ms: u64,
}

/// A registration-contract outage: from `at_ms` for `duration_ms`, every
/// `Register` transaction reverts (stake refunded) and restarted peers
/// cannot complete their group resync — each retries once per lock-step
/// slice (counted as `resync_retries`) until the outage lifts. Slashing
/// is unaffected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContractOutageEvent {
    /// Outage start, milliseconds.
    pub at_ms: u64,
    /// Outage length, milliseconds.
    pub duration_ms: u64,
}

/// The deterministic fault-injection plan: timed crash→restart cycles,
/// network partitions, link-degradation bursts and registration-contract
/// outages. Empty by default — and with an empty plan every
/// `resilience_*` report field is `null`, byte-identical to pre-fault
/// reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Crash→restart cycles.
    pub restarts: Vec<RestartEvent>,
    /// Partition/heal windows.
    pub partitions: Vec<PartitionEvent>,
    /// Link-degradation bursts.
    pub degradations: Vec<DegradationEvent>,
    /// Registration-contract outages.
    pub contract_outages: Vec<ContractOutageEvent>,
}

impl FaultPlan {
    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.restarts.is_empty()
            && self.partitions.is_empty()
            && self.degradations.is_empty()
            && self.contract_outages.is_empty()
    }

    /// Every fault window as `(start_ms, end_ms)` — restart downtimes,
    /// partition spans, degradation bursts and contract outages. The
    /// engine classifies traffic rounds as in-fault or post-heal against
    /// these.
    pub fn windows(&self) -> Vec<(u64, u64)> {
        let mut windows: Vec<(u64, u64)> = Vec::new();
        for r in &self.restarts {
            windows.push((r.at_ms, r.at_ms + r.downtime_ms));
        }
        for p in &self.partitions {
            windows.push((p.at_ms, p.at_ms + p.heal_after_ms));
        }
        for d in &self.degradations {
            windows.push((d.at_ms, d.at_ms + d.duration_ms));
        }
        for o in &self.contract_outages {
            windows.push((o.at_ms, o.at_ms + o.duration_ms));
        }
        windows
    }

    /// End of the last fault window (0 for an empty plan).
    pub fn last_end_ms(&self) -> u64 {
        self.windows()
            .iter()
            .map(|(_, end)| *end)
            .max()
            .unwrap_or(0)
    }

    /// Checks internal consistency (each schedule sorted by start time,
    /// all parameters in range).
    ///
    /// # Panics
    ///
    /// Panics on an impossible plan.
    pub fn validate(&self) {
        // lint:allow(panic-path, reason = "windows(2) yields exactly-two-element slices")
        let sorted = |starts: &[u64]| starts.windows(2).all(|w| w[0] <= w[1]);
        assert!(
            sorted(&self.restarts.iter().map(|r| r.at_ms).collect::<Vec<_>>()),
            "restart schedule must be sorted by time"
        );
        assert!(
            sorted(&self.partitions.iter().map(|p| p.at_ms).collect::<Vec<_>>()),
            "partition schedule must be sorted by time"
        );
        assert!(
            sorted(
                &self
                    .degradations
                    .iter()
                    .map(|d| d.at_ms)
                    .collect::<Vec<_>>()
            ),
            "degradation schedule must be sorted by time"
        );
        assert!(
            sorted(
                &self
                    .contract_outages
                    .iter()
                    .map(|o| o.at_ms)
                    .collect::<Vec<_>>()
            ),
            "contract-outage schedule must be sorted by time"
        );
        for r in &self.restarts {
            assert!(r.peers >= 1, "a restart event needs at least one peer");
            assert!(r.downtime_ms >= 1, "downtime must be positive");
        }
        for p in &self.partitions {
            assert!(p.heal_after_ms >= 1, "partition must last some time");
            assert!(
                p.minority_fraction > 0.0 && p.minority_fraction <= 0.5,
                "minority fraction must be in (0, 0.5]"
            );
        }
        for d in &self.degradations {
            assert!(d.duration_ms >= 1, "degradation must last some time");
            assert!(
                (0.0..=1.0).contains(&d.extra_loss),
                "extra loss out of range"
            );
        }
        for o in &self.contract_outages {
            assert!(o.duration_ms >= 1, "outage must last some time");
        }
    }
}

/// The targeted censorship-eclipse attack: peer 0 (the victim) is
/// bootstrapped **exclusively** to `attackers` adversarial peers, and no
/// honest peer knows the victim. The attackers answer all control
/// traffic (subscriptions, grafts, pings) but silently drop every
/// message forward — the victim sees a healthy-looking mesh that never
/// delivers anything.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EclipseSpec {
    /// Size of the censoring bootstrap ring around the victim.
    pub attackers: usize,
}

/// The colluding passive-surveillance adversary: a fraction of the
/// honest relay population is secretly controlled by one adversary who
/// records, at each controlled node, every incoming message forward as
/// `(message_id, arrival_ms, previous_hop)`. After the run, attribution
/// estimators (first-spy / earliest-arrival, neighbour-weighted
/// centrality) pool those tapes and guess each message's publisher —
/// the deanonymization attack surface analysed in "Who started this
/// rumor?" (Bellet et al.) and "On the Inherent Anonymity of Gossiping"
/// (Guerraoui et al.), see `PAPERS.md`.
///
/// Observers stay protocol-honest (they relay, graft and gossip
/// normally) but are excluded from the honest publisher pool — the
/// adversary does not publish the traffic it is trying to attribute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurveillanceSpec {
    /// Fraction of the initial honest population the adversary controls,
    /// in `(0, 1]`. The observer count is `round(fraction · honest)`,
    /// clamped to leave at least two honest non-observers.
    pub observer_fraction: f64,
}

/// A device class for heterogeneous-network scenarios: a name, a proof
/// verification cost (the dominant validation cost, §IV: ≈30 ms on an
/// iPhone 8) and a relative share of the honest population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceClassSpec {
    /// Class label (reporting only).
    pub name: &'static str,
    /// Simulated zkSNARK verification cost, microseconds.
    pub verify_proof_micros: u64,
    /// Relative weight when assigning classes round-robin.
    pub share: u32,
}

/// The full declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report label; built-ins use their library name).
    pub name: String,
    /// Honest peers at start (includes the eclipse victim, when any).
    pub honest: usize,
    /// Determinism seed: topology, latencies, identity material, traffic
    /// draws and churn draws all derive from it.
    pub seed: u64,
    /// Membership tree depth; `0` = auto-size from the peer count.
    pub tree_depth: usize,
    /// Bootstrap topology for the honest population.
    pub topology: TopologySpec,
    /// Link latency model.
    pub latency: LatencySpec,
    /// I.i.d. packet-loss probability applied to every send.
    pub loss: f64,
    /// Epoch scheme (length `T` and delay bound `D` → `Thr = ⌈D/T⌉`).
    pub epoch: EpochScheme,
    /// Honest traffic schedule.
    pub traffic: TrafficSpec,
    /// Spam attack, if any.
    pub spam: Option<SpamSpec>,
    /// Churn schedule (must be sorted by `at_ms`; the engine asserts).
    pub churn: Vec<ChurnEvent>,
    /// Deterministic fault-injection plan (crash→restart cycles,
    /// partitions, link-degradation bursts, contract outages). Empty
    /// disables fault injection and leaves every `resilience_*` report
    /// field `null`.
    pub faults: FaultPlan,
    /// Targeted eclipse attack, if any.
    pub eclipse: Option<EclipseSpec>,
    /// Colluding passive-surveillance adversary, if any. Enables the
    /// `anonymity_*` section of the report.
    pub surveillance: Option<SurveillanceSpec>,
    /// Source-anonymity countermeasure: publishers hold each first-hop
    /// copy of their own messages back for an independent uniform delay
    /// in `[0, publish_jitter_ms]`, drawn from the node's deterministic
    /// RNG stream (so the determinism contract is untouched). `0`
    /// disables the countermeasure. Costs propagation latency, buys
    /// attribution resistance — the trade-off curve the gossip-privacy
    /// papers predict.
    pub publish_jitter_ms: u64,
    /// Device mix; empty = every peer uses the default cost model.
    pub devices: Vec<DeviceClassSpec>,
    /// Batched-validation pipeline knobs for every relay (`max_batch`,
    /// `flush_interval_ms`, `cache_capacity`); `None` runs the serial
    /// per-message validator — the pre-pipeline behaviour, byte-identical
    /// reports included.
    pub pipeline: Option<PipelineConfig>,
    /// Worker threads for the sharded event scheduler (`0` = auto-detect
    /// from available parallelism). **Not part of the simulated world**:
    /// the scheduler guarantees byte-identical reports for every thread
    /// count, so this only trades wall-clock time for cores.
    pub threads: usize,
    /// Cool-down after the last scheduled event, milliseconds — time for
    /// gossip recovery, detection, slashing and sync to play out.
    pub drain_ms: u64,
    /// Lock-step slice for world advancement, milliseconds (network ↔
    /// chain synchronization granularity).
    pub slice_ms: u64,
}

impl ScenarioSpec {
    /// A quiet, attack-free starting point: `honest` peers on a random
    /// regular graph with internet-ish uniform latency, default epochs,
    /// and a small recurring traffic schedule. Library scenarios start
    /// from this and layer adversities on top.
    pub fn baseline(honest: usize, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: "baseline".to_string(),
            honest,
            seed,
            tree_depth: 0,
            topology: TopologySpec::RandomRegular { degree: 6 },
            latency: LatencySpec::Uniform {
                min_ms: 10,
                max_ms: 80,
            },
            loss: 0.0,
            epoch: EpochScheme::default(),
            traffic: TrafficSpec {
                publishers: (honest / 8).clamp(2, 24),
                rounds: 3,
                start_ms: 10_000,
                interval_ms: 12_000,
            },
            spam: None,
            churn: Vec::new(),
            faults: FaultPlan::default(),
            eclipse: None,
            surveillance: None,
            publish_jitter_ms: 0,
            devices: Vec::new(),
            pipeline: None,
            threads: 1,
            drain_ms: 40_000,
            slice_ms: 1_000,
        }
    }

    /// Total peers at simulation start (honest + spammers + eclipse
    /// attackers).
    pub fn initial_peers(&self) -> usize {
        self.honest
            + self.spam.map(|s| s.spammers).unwrap_or(0)
            + self.eclipse.map(|e| e.attackers).unwrap_or(0)
    }

    /// The tree depth actually used: explicit, or auto-sized to hold the
    /// initial population plus scheduled joins with headroom.
    pub fn effective_tree_depth(&self) -> usize {
        if self.tree_depth != 0 {
            return self.tree_depth;
        }
        let joins: usize = self
            .churn
            .iter()
            .map(|e| match e.action {
                ChurnAction::Join { peers } => peers,
                ChurnAction::Crash { .. } => 0,
            })
            .sum();
        let capacity_needed = (self.initial_peers() + joins) * 2;
        let mut depth = 10;
        while (1usize << depth) < capacity_needed {
            depth += 1;
        }
        depth.min(20)
    }

    /// Number of colluding observers the surveillance adversary controls:
    /// `round(observer_fraction · honest)`, at least 1, leaving at least
    /// two honest non-observers to publish. 0 without surveillance.
    pub fn observer_count(&self) -> usize {
        match self.surveillance {
            None => 0,
            Some(s) => {
                let wanted = (self.honest as f64 * s.observer_fraction).round() as usize;
                wanted.clamp(1, self.honest.saturating_sub(2))
            }
        }
    }

    /// Simulated end time: last scheduled event plus the drain window.
    pub fn duration_ms(&self) -> u64 {
        let last_traffic = self.traffic.start_ms
            + self.traffic.interval_ms * self.traffic.rounds.saturating_sub(1) as u64;
        let last_spam = self.spam.map(|s| s.at_ms).unwrap_or(0);
        let last_churn = self.churn.last().map(|e| e.at_ms).unwrap_or(0);
        let last_fault = self.faults.last_end_ms();
        last_traffic.max(last_spam).max(last_churn).max(last_fault) + self.drain_ms
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an impossible spec (no peers, unsorted churn, loss out
    /// of range, zero slice, eclipse without enough honest peers).
    pub fn validate(&self) {
        assert!(self.honest >= 2, "need at least two honest peers");
        assert!((0.0..=1.0).contains(&self.loss), "loss out of range");
        assert!(self.slice_ms > 0, "slice must be positive");
        assert!(
            // lint:allow(panic-path, reason = "windows(2) yields exactly-two-element slices")
            self.churn.windows(2).all(|w| w[0].at_ms <= w[1].at_ms),
            "churn schedule must be sorted by time"
        );
        self.faults.validate();
        if let Some(e) = self.eclipse {
            assert!(e.attackers >= 1, "eclipse needs at least one attacker");
            assert!(
                self.honest >= 3,
                "eclipse needs a victim plus honest bystanders"
            );
        }
        if let Some(s) = self.spam {
            assert!(s.spammers >= 1 && s.burst >= 2, "spam needs a real burst");
        }
        if let Some(s) = self.surveillance {
            assert!(
                s.observer_fraction > 0.0 && s.observer_fraction <= 1.0,
                "observer fraction out of range"
            );
            assert!(
                self.honest >= 4,
                "surveillance needs observers plus honest publishers"
            );
        }
        if let Some(p) = self.pipeline {
            assert!(p.max_batch >= 1, "pipeline batch must hold a message");
            assert!(
                p.flush_interval_ms >= 1,
                "pipeline flush interval must be positive"
            );
        }
        let depth = self.effective_tree_depth();
        assert!(
            (1usize << depth) >= self.initial_peers(),
            "tree depth {depth} cannot hold {} peers",
            self.initial_peers()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid_at_many_sizes() {
        for n in [2, 8, 100, 1000, 2000] {
            ScenarioSpec::baseline(n, 1).validate();
        }
    }

    #[test]
    fn auto_depth_scales_with_population() {
        let small = ScenarioSpec::baseline(8, 1);
        assert_eq!(small.effective_tree_depth(), 10); // floor
        let big = ScenarioSpec::baseline(2000, 1);
        assert!((1 << big.effective_tree_depth()) >= 4000);
        let mut with_joins = ScenarioSpec::baseline(500, 1);
        with_joins.churn.push(ChurnEvent {
            at_ms: 1000,
            action: ChurnAction::Join { peers: 600 },
        });
        assert!((1 << with_joins.effective_tree_depth()) >= 2200);
    }

    #[test]
    fn duration_covers_last_event_plus_drain() {
        let mut spec = ScenarioSpec::baseline(8, 1);
        spec.traffic = TrafficSpec {
            publishers: 2,
            rounds: 2,
            start_ms: 10_000,
            interval_ms: 12_000,
        };
        spec.drain_ms = 5_000;
        assert_eq!(spec.duration_ms(), 27_000);
        spec.churn.push(ChurnEvent {
            at_ms: 60_000,
            action: ChurnAction::Crash { peers: 1 },
        });
        assert_eq!(spec.duration_ms(), 65_000);
    }

    #[test]
    fn observer_count_scales_and_leaves_publishers() {
        let mut spec = ScenarioSpec::baseline(100, 1);
        assert_eq!(spec.observer_count(), 0);
        spec.surveillance = Some(SurveillanceSpec {
            observer_fraction: 0.10,
        });
        assert_eq!(spec.observer_count(), 10);
        spec.validate();
        // even full collusion leaves two honest publishers
        spec.surveillance = Some(SurveillanceSpec {
            observer_fraction: 1.0,
        });
        assert_eq!(spec.observer_count(), 98);
        // a tiny fraction still fields at least one observer
        spec.surveillance = Some(SurveillanceSpec {
            observer_fraction: 0.001,
        });
        assert_eq!(spec.observer_count(), 1);
    }

    #[test]
    #[should_panic(expected = "observer fraction out of range")]
    fn zero_observer_fraction_rejected() {
        let mut spec = ScenarioSpec::baseline(10, 1);
        spec.surveillance = Some(SurveillanceSpec {
            observer_fraction: 0.0,
        });
        spec.validate();
    }

    fn small_fault_plan() -> FaultPlan {
        FaultPlan {
            restarts: vec![RestartEvent {
                at_ms: 20_000,
                peers: 2,
                downtime_ms: 10_000,
                warm: true,
            }],
            partitions: vec![PartitionEvent {
                at_ms: 40_000,
                heal_after_ms: 20_000,
                minority_fraction: 0.3,
            }],
            degradations: vec![DegradationEvent {
                at_ms: 70_000,
                duration_ms: 10_000,
                extra_loss: 0.1,
                extra_latency_ms: 50,
            }],
            contract_outages: vec![ContractOutageEvent {
                at_ms: 75_000,
                duration_ms: 25_000,
            }],
        }
    }

    #[test]
    fn fault_plan_windows_and_duration_fold_into_the_spec() {
        let plan = small_fault_plan();
        plan.validate();
        assert!(!plan.is_empty());
        assert_eq!(plan.windows().len(), 4);
        assert_eq!(plan.last_end_ms(), 100_000);
        let mut spec = ScenarioSpec::baseline(8, 1);
        let quiet_duration = spec.duration_ms();
        spec.faults = plan;
        spec.validate();
        assert_eq!(spec.duration_ms(), 100_000 + spec.drain_ms);
        assert!(spec.duration_ms() > quiet_duration);
        // an empty plan keeps the quiet duration — schema-stable reports
        spec.faults = FaultPlan::default();
        assert!(spec.faults.is_empty());
        assert_eq!(spec.faults.last_end_ms(), 0);
        assert_eq!(spec.duration_ms(), quiet_duration);
    }

    #[test]
    #[should_panic(expected = "minority fraction must be in (0, 0.5]")]
    fn majority_partition_rejected() {
        let mut plan = small_fault_plan();
        plan.partitions[0].minority_fraction = 0.6;
        plan.validate();
    }

    #[test]
    #[should_panic(expected = "restart schedule must be sorted")]
    fn unsorted_restarts_rejected() {
        let mut plan = small_fault_plan();
        plan.restarts.push(RestartEvent {
            at_ms: 1_000,
            peers: 1,
            downtime_ms: 1_000,
            warm: false,
        });
        plan.validate();
    }

    #[test]
    #[should_panic(expected = "extra loss out of range")]
    fn degradation_loss_out_of_range_rejected() {
        let mut plan = small_fault_plan();
        plan.degradations[0].extra_loss = 1.5;
        plan.validate();
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_churn_rejected() {
        let mut spec = ScenarioSpec::baseline(8, 1);
        spec.churn = vec![
            ChurnEvent {
                at_ms: 2000,
                action: ChurnAction::Crash { peers: 1 },
            },
            ChurnEvent {
                at_ms: 1000,
                action: ChurnAction::Crash { peers: 1 },
            },
        ];
        spec.validate();
    }
}
