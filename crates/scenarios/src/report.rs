//! The structured outcome of one scenario run.
//!
//! Schema stability is a feature: CI, the sweep driver and downstream
//! dashboards parse this JSON, so every field is always present (absent
//! measurements are `null`), field order is fixed, and float formatting
//! is deterministic. Two runs of the same [`ScenarioSpec`] + seed emit
//! byte-identical reports.
//!
//! [`ScenarioSpec`]: crate::spec::ScenarioSpec

/// Aggregated measurements of one scenario run. See `docs/SCENARIOS.md`
/// for the field-by-field description of the emitted JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Determinism seed the run used.
    pub seed: u64,
    /// Peers at start (honest + spammers + eclipse attackers).
    pub peers_initial: u64,
    /// Live peers at the end (crashes subtracted, joins added).
    pub peers_final_live: u64,
    /// Honest peers at start.
    pub honest: u64,
    /// Spamming members at start.
    pub spammers: u64,
    /// Censoring eclipse attackers at start.
    pub eclipse_attackers: u64,
    /// Simulated run length, milliseconds.
    pub duration_ms: u64,
    /// Membership tree depth used.
    pub tree_depth: u64,

    /// Honest messages successfully handed to the RLN pipeline.
    pub honest_published: u64,
    /// Honest publish attempts refused (rate limit hit, member not yet
    /// synced, …).
    pub honest_publish_failures: u64,
    /// Fraction of (message, eligible receiver) pairs that were
    /// delivered; eligible receivers are peers alive at the end that had
    /// joined (plus sync grace) before the publish, minus the publisher
    /// and the censors.
    pub delivery_rate: f64,
    /// Median honest propagation latency, milliseconds (`null` when no
    /// honest message was delivered).
    pub propagation_p50_ms: Option<f64>,
    /// 99th-percentile honest propagation latency, milliseconds.
    pub propagation_p99_ms: Option<f64>,
    /// Worst observed honest propagation latency, milliseconds.
    pub propagation_max_ms: Option<f64>,

    /// Spam messages the attackers handed to the network.
    pub spam_attempted: u64,
    /// Spam attempts that failed at the source (membership already
    /// slashed mid-burst).
    pub spam_send_failures: u64,
    /// Distinct spam payloads that reached a majority of eligible
    /// receivers (the paper's containment metric: should stay ≤ 1 per
    /// spammer).
    pub spam_delivered_majority: u64,
    /// Double-signal detections summed over all validators.
    pub spam_detections: u64,
    /// Spammers whose membership was slashed on chain by the end.
    pub spammers_slashed: u64,

    /// Contract members after initial registration.
    pub members_start: u64,
    /// Contract members at the end (slashing subtracts, joins add).
    pub members_end: u64,
    /// Peers crashed by the churn schedule.
    pub peers_crashed: u64,
    /// Peers joined by the churn schedule.
    pub peers_joined: u64,

    /// Wire messages sent (post loss/removal filtering).
    pub messages_sent: u64,
    /// Wire messages delivered.
    pub messages_delivered: u64,
    /// Wire messages dropped because the destination had crashed.
    pub messages_to_removed_peer: u64,
    /// Total bytes on the wire.
    pub bytes_sent: u64,
    /// Mean bytes sent per peer (over every peer that ever lived).
    pub bytes_sent_mean_per_node: f64,
    /// Bytes sent by the busiest peer.
    pub bytes_sent_max_node: u64,
    /// Mean simulated validation CPU per peer, microseconds.
    pub cpu_micros_mean_per_node: f64,
    /// Simulated validation CPU of the busiest peer, microseconds.
    pub cpu_micros_max_node: u64,

    /// Accepted messages summed over all validators.
    pub valid_total: u64,
    /// Proof rejections summed over all validators.
    pub invalid_proof_total: u64,
    /// Epoch-window rejections summed over all validators (the §III
    /// `Thr` filter; nonzero under replay attacks or boundary races).
    pub epoch_out_of_window_total: u64,
    /// Exact duplicates summed over all validators.
    pub duplicates_total: u64,
    /// Undecodable frames summed over all validators.
    pub malformed_total: u64,

    /// Largest nullifier map across live peers at the end, bytes (E8:
    /// must stay bounded by the `Thr` window GC).
    pub nullifier_map_max_bytes: u64,
    /// Mean nullifier map across live peers at the end, bytes.
    pub nullifier_map_mean_bytes: f64,
    /// Largest light membership tree across live peers, bytes (E3).
    pub membership_tree_max_bytes: u64,

    /// Whether the event queue actually drained by the end of the run
    /// (`false` is the norm for live meshes: heartbeat timers re-arm
    /// forever — see `drain_pending_events` for how much was left).
    pub drain_quiescent: bool,
    /// Events still queued when the run's hard stop cut it off (0 when
    /// `drain_quiescent`).
    pub drain_pending_events: u64,

    /// Delivery rate seen by the eclipse victim alone (`null` when the
    /// scenario has no eclipse attack).
    pub eclipse_victim_delivery_rate: Option<f64>,

    /// **Anonymity section** (all `null` without a surveillance
    /// adversary): colluding observers the adversary controlled.
    pub anonymity_observers: Option<u64>,
    /// Wire-level records pooled across all observer tapes.
    pub anonymity_observations: Option<u64>,
    /// Honest messages the adversary saw at least once (the denominator
    /// of both precision figures).
    pub anonymity_messages_observed: Option<u64>,
    /// Fraction of observed honest messages whose publisher the
    /// first-spy (earliest arrival) estimator named correctly.
    pub anonymity_first_spy_precision_at1: Option<f64>,
    /// Fraction of observed honest messages whose publisher the
    /// neighbour-weighted centrality estimator named correctly.
    pub anonymity_centrality_precision_at1: Option<f64>,
    /// Mean anonymity-set size over observed messages (distinct
    /// suspects the observers' first sightings cannot separate).
    pub anonymity_set_mean_size: Option<f64>,
    /// Mean Shannon entropy of the pooled arrival-vote distribution,
    /// bits per observed message (0 = certain attribution).
    pub anonymity_arrival_entropy_bits: Option<f64>,

    /// **Resilience section** (all `null` unless the spec schedules a
    /// [`FaultPlan`]): fault transitions actually injected (each
    /// crash-set, partition, degradation burst and contract outage counts
    /// once).
    ///
    /// [`FaultPlan`]: crate::spec::FaultPlan
    pub resilience_faults_injected: Option<u64>,
    /// Peers brought back by the restart schedule.
    pub resilience_peers_restarted: Option<u64>,
    /// Resync attempts deferred because the registration contract was
    /// unreachable (each restarted peer retries once per harness tick
    /// until the outage lifts).
    pub resilience_resync_retries: Option<u64>,
    /// Wire messages dropped on links crossing an active partition.
    pub resilience_messages_lost_partition: Option<u64>,
    /// Time from the last restart/heal until every live peer held at
    /// least `min(2, live - 1)` mesh links again — the whole population
    /// re-knit into the relay mesh — in milliseconds (`null` if that
    /// never happened before the run ended).
    pub resilience_time_to_remesh_ms: Option<u64>,
    /// Pair delivery rate over traffic rounds published inside a fault
    /// window (`null` when no round landed inside one).
    pub resilience_delivery_during_fault: Option<f64>,
    /// Pair delivery rate over traffic rounds published at or after the
    /// end of the last fault window (`null` when no round landed there).
    pub resilience_delivery_post_heal: Option<f64>,
    /// Deepest per-round delivery dip: `1 - min(round delivery rate)`.
    pub resilience_delivery_dip_depth: Option<f64>,
    /// Rounds below the 0.99 delivery threshold × traffic interval — how
    /// long delivery stayed visibly degraded, milliseconds.
    pub resilience_delivery_dip_duration_ms: Option<u64>,
}

/// One parsed value of the flat report schema.
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    String(String),
    /// Kept as the raw token so integers round-trip exactly (no float
    /// detour for u64 fields).
    Number(String),
    Bool(bool),
    Null,
}

/// Parses a single flat JSON object (`{"key": scalar, ...}`) — exactly
/// the shape [`ScenarioReport::to_json`] emits. Nested containers are
/// rejected.
fn parse_flat_object(json: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = json.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while matches!(chars.peek(), Some(c) if c.is_ascii_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected opening quote".to_string());
            }
            let mut out = String::new();
            loop {
                match chars.next() {
                    None => return Err("unterminated string".to_string()),
                    Some('"') => return Ok(out),
                    Some('\\') => match chars.next() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape: {hex}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point {code}"))?,
                            );
                        }
                        other => return Err(format!("bad escape: {other:?}")),
                    },
                    Some(c) => out.push(c),
                }
            }
        };

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".to_string());
    }
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    let mut open = chars.peek() != Some(&'}');
    if !open {
        chars.next(); // empty object
    }
    while open {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::String(parse_string(&mut chars)?),
            Some('t') | Some('f') | Some('n') => {
                let word: String = std::iter::from_fn(|| {
                    matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic())
                        .then(|| chars.next())
                        .flatten()
                })
                .collect();
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    "null" => JsonValue::Null,
                    other => return Err(format!("unexpected token: {other}")),
                }
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let raw: String = std::iter::from_fn(|| {
                    matches!(chars.peek(), Some(c) if c.is_ascii_digit()
                        || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                    .then(|| chars.next())
                    .flatten()
                })
                .collect();
                JsonValue::Number(raw)
            }
            other => return Err(format!("unexpected value start: {other:?}")),
        };
        fields.push((key, value));
        // strict separators: exactly one ',' between fields, '}' to
        // close — a missing comma, a trailing comma or anything else is
        // a malformed report, not something to paper over
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => open = false,
            other => return Err(format!("expected ',' or '}}' after a field, got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing content after the closing brace: {c:?}"));
    }
    Ok(fields)
}

/// Escapes a string for embedding in a JSON string literal (scenario
/// names are caller-chosen, so quotes/backslashes/control characters
/// must not corrupt the output).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_string())
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map(|n| n.to_string())
        .unwrap_or_else(|| "null".to_string())
}

impl ScenarioReport {
    /// Serializes as a flat JSON object (hand-rolled; the workspace has
    /// no serde data formats). Field order and float formatting are
    /// fixed, so identical runs produce identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        let mut field = |key: &str, value: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  \"{key}\": {value}"));
        };
        field("scenario", json_string(&self.scenario));
        field("seed", self.seed.to_string());
        field("peers_initial", self.peers_initial.to_string());
        field("peers_final_live", self.peers_final_live.to_string());
        field("honest", self.honest.to_string());
        field("spammers", self.spammers.to_string());
        field("eclipse_attackers", self.eclipse_attackers.to_string());
        field("duration_ms", self.duration_ms.to_string());
        field("tree_depth", self.tree_depth.to_string());
        field("honest_published", self.honest_published.to_string());
        field(
            "honest_publish_failures",
            self.honest_publish_failures.to_string(),
        );
        field("delivery_rate", json_f64(self.delivery_rate));
        field("propagation_p50_ms", json_opt(self.propagation_p50_ms));
        field("propagation_p99_ms", json_opt(self.propagation_p99_ms));
        field("propagation_max_ms", json_opt(self.propagation_max_ms));
        field("spam_attempted", self.spam_attempted.to_string());
        field("spam_send_failures", self.spam_send_failures.to_string());
        field(
            "spam_delivered_majority",
            self.spam_delivered_majority.to_string(),
        );
        field("spam_detections", self.spam_detections.to_string());
        field("spammers_slashed", self.spammers_slashed.to_string());
        field("members_start", self.members_start.to_string());
        field("members_end", self.members_end.to_string());
        field("peers_crashed", self.peers_crashed.to_string());
        field("peers_joined", self.peers_joined.to_string());
        field("messages_sent", self.messages_sent.to_string());
        field("messages_delivered", self.messages_delivered.to_string());
        field(
            "messages_to_removed_peer",
            self.messages_to_removed_peer.to_string(),
        );
        field("bytes_sent", self.bytes_sent.to_string());
        field(
            "bytes_sent_mean_per_node",
            json_f64(self.bytes_sent_mean_per_node),
        );
        field("bytes_sent_max_node", self.bytes_sent_max_node.to_string());
        field(
            "cpu_micros_mean_per_node",
            json_f64(self.cpu_micros_mean_per_node),
        );
        field("cpu_micros_max_node", self.cpu_micros_max_node.to_string());
        field("valid_total", self.valid_total.to_string());
        field("invalid_proof_total", self.invalid_proof_total.to_string());
        field(
            "epoch_out_of_window_total",
            self.epoch_out_of_window_total.to_string(),
        );
        field("duplicates_total", self.duplicates_total.to_string());
        field("malformed_total", self.malformed_total.to_string());
        field(
            "nullifier_map_max_bytes",
            self.nullifier_map_max_bytes.to_string(),
        );
        field(
            "nullifier_map_mean_bytes",
            json_f64(self.nullifier_map_mean_bytes),
        );
        field(
            "membership_tree_max_bytes",
            self.membership_tree_max_bytes.to_string(),
        );
        field("drain_quiescent", self.drain_quiescent.to_string());
        field(
            "drain_pending_events",
            self.drain_pending_events.to_string(),
        );
        field(
            "eclipse_victim_delivery_rate",
            json_opt(self.eclipse_victim_delivery_rate),
        );
        field(
            "anonymity_observers",
            json_opt_u64(self.anonymity_observers),
        );
        field(
            "anonymity_observations",
            json_opt_u64(self.anonymity_observations),
        );
        field(
            "anonymity_messages_observed",
            json_opt_u64(self.anonymity_messages_observed),
        );
        field(
            "anonymity_first_spy_precision_at1",
            json_opt(self.anonymity_first_spy_precision_at1),
        );
        field(
            "anonymity_centrality_precision_at1",
            json_opt(self.anonymity_centrality_precision_at1),
        );
        field(
            "anonymity_set_mean_size",
            json_opt(self.anonymity_set_mean_size),
        );
        field(
            "anonymity_arrival_entropy_bits",
            json_opt(self.anonymity_arrival_entropy_bits),
        );
        field(
            "resilience_faults_injected",
            json_opt_u64(self.resilience_faults_injected),
        );
        field(
            "resilience_peers_restarted",
            json_opt_u64(self.resilience_peers_restarted),
        );
        field(
            "resilience_resync_retries",
            json_opt_u64(self.resilience_resync_retries),
        );
        field(
            "resilience_messages_lost_partition",
            json_opt_u64(self.resilience_messages_lost_partition),
        );
        field(
            "resilience_time_to_remesh_ms",
            json_opt_u64(self.resilience_time_to_remesh_ms),
        );
        field(
            "resilience_delivery_during_fault",
            json_opt(self.resilience_delivery_during_fault),
        );
        field(
            "resilience_delivery_post_heal",
            json_opt(self.resilience_delivery_post_heal),
        );
        field(
            "resilience_delivery_dip_depth",
            json_opt(self.resilience_delivery_dip_depth),
        );
        field(
            "resilience_delivery_dip_duration_ms",
            json_opt_u64(self.resilience_delivery_dip_duration_ms),
        );
        let _ = &mut field;
        out.push_str("\n}\n");
        out
    }

    /// Parses a report back from the JSON emitted by
    /// [`ScenarioReport::to_json`] — the inverse direction CI diffing and
    /// sweep tooling use. Only the flat schema this crate emits is
    /// supported (string / integer / float / bool / `null` values).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct or missing
    /// field.
    pub fn from_json(json: &str) -> Result<ScenarioReport, String> {
        let fields = parse_flat_object(json)?;
        let get = |key: &str| -> Result<&JsonValue, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field: {key}"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            match get(key)? {
                JsonValue::Number(raw) => raw
                    .parse::<u64>()
                    .map_err(|_| format!("field {key}: expected u64, got {raw}")),
                other => Err(format!("field {key}: expected u64, got {other:?}")),
            }
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            match get(key)? {
                JsonValue::Number(raw) => raw
                    .parse::<f64>()
                    .map_err(|_| format!("field {key}: expected f64, got {raw}")),
                other => Err(format!("field {key}: expected f64, got {other:?}")),
            }
        };
        let get_opt_f64 = |key: &str| -> Result<Option<f64>, String> {
            match get(key)? {
                JsonValue::Null => Ok(None),
                JsonValue::Number(raw) => raw
                    .parse::<f64>()
                    .map(Some)
                    .map_err(|_| format!("field {key}: expected f64, got {raw}")),
                other => Err(format!("field {key}: expected f64 or null, got {other:?}")),
            }
        };
        let get_opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match get(key)? {
                JsonValue::Null => Ok(None),
                JsonValue::Number(raw) => raw
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| format!("field {key}: expected u64, got {raw}")),
                other => Err(format!("field {key}: expected u64 or null, got {other:?}")),
            }
        };
        let get_bool = |key: &str| -> Result<bool, String> {
            match get(key)? {
                JsonValue::Bool(b) => Ok(*b),
                other => Err(format!("field {key}: expected bool, got {other:?}")),
            }
        };
        let scenario = match get("scenario")? {
            JsonValue::String(s) => s.clone(),
            other => return Err(format!("field scenario: expected string, got {other:?}")),
        };
        Ok(ScenarioReport {
            scenario,
            seed: get_u64("seed")?,
            peers_initial: get_u64("peers_initial")?,
            peers_final_live: get_u64("peers_final_live")?,
            honest: get_u64("honest")?,
            spammers: get_u64("spammers")?,
            eclipse_attackers: get_u64("eclipse_attackers")?,
            duration_ms: get_u64("duration_ms")?,
            tree_depth: get_u64("tree_depth")?,
            honest_published: get_u64("honest_published")?,
            honest_publish_failures: get_u64("honest_publish_failures")?,
            delivery_rate: get_f64("delivery_rate")?,
            propagation_p50_ms: get_opt_f64("propagation_p50_ms")?,
            propagation_p99_ms: get_opt_f64("propagation_p99_ms")?,
            propagation_max_ms: get_opt_f64("propagation_max_ms")?,
            spam_attempted: get_u64("spam_attempted")?,
            spam_send_failures: get_u64("spam_send_failures")?,
            spam_delivered_majority: get_u64("spam_delivered_majority")?,
            spam_detections: get_u64("spam_detections")?,
            spammers_slashed: get_u64("spammers_slashed")?,
            members_start: get_u64("members_start")?,
            members_end: get_u64("members_end")?,
            peers_crashed: get_u64("peers_crashed")?,
            peers_joined: get_u64("peers_joined")?,
            messages_sent: get_u64("messages_sent")?,
            messages_delivered: get_u64("messages_delivered")?,
            messages_to_removed_peer: get_u64("messages_to_removed_peer")?,
            bytes_sent: get_u64("bytes_sent")?,
            bytes_sent_mean_per_node: get_f64("bytes_sent_mean_per_node")?,
            bytes_sent_max_node: get_u64("bytes_sent_max_node")?,
            cpu_micros_mean_per_node: get_f64("cpu_micros_mean_per_node")?,
            cpu_micros_max_node: get_u64("cpu_micros_max_node")?,
            valid_total: get_u64("valid_total")?,
            invalid_proof_total: get_u64("invalid_proof_total")?,
            epoch_out_of_window_total: get_u64("epoch_out_of_window_total")?,
            duplicates_total: get_u64("duplicates_total")?,
            malformed_total: get_u64("malformed_total")?,
            nullifier_map_max_bytes: get_u64("nullifier_map_max_bytes")?,
            nullifier_map_mean_bytes: get_f64("nullifier_map_mean_bytes")?,
            membership_tree_max_bytes: get_u64("membership_tree_max_bytes")?,
            drain_quiescent: get_bool("drain_quiescent")?,
            drain_pending_events: get_u64("drain_pending_events")?,
            eclipse_victim_delivery_rate: get_opt_f64("eclipse_victim_delivery_rate")?,
            anonymity_observers: get_opt_u64("anonymity_observers")?,
            anonymity_observations: get_opt_u64("anonymity_observations")?,
            anonymity_messages_observed: get_opt_u64("anonymity_messages_observed")?,
            anonymity_first_spy_precision_at1: get_opt_f64("anonymity_first_spy_precision_at1")?,
            anonymity_centrality_precision_at1: get_opt_f64("anonymity_centrality_precision_at1")?,
            anonymity_set_mean_size: get_opt_f64("anonymity_set_mean_size")?,
            anonymity_arrival_entropy_bits: get_opt_f64("anonymity_arrival_entropy_bits")?,
            resilience_faults_injected: get_opt_u64("resilience_faults_injected")?,
            resilience_peers_restarted: get_opt_u64("resilience_peers_restarted")?,
            resilience_resync_retries: get_opt_u64("resilience_resync_retries")?,
            resilience_messages_lost_partition: get_opt_u64("resilience_messages_lost_partition")?,
            resilience_time_to_remesh_ms: get_opt_u64("resilience_time_to_remesh_ms")?,
            resilience_delivery_during_fault: get_opt_f64("resilience_delivery_during_fault")?,
            resilience_delivery_post_heal: get_opt_f64("resilience_delivery_post_heal")?,
            resilience_delivery_dip_depth: get_opt_f64("resilience_delivery_dip_depth")?,
            resilience_delivery_dip_duration_ms: get_opt_u64(
                "resilience_delivery_dip_duration_ms",
            )?,
        })
    }

    /// One human line for progress output (stderr; the JSON goes to
    /// stdout/files).
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "{}: {} peers, delivery {:.3}, p50 {} ms, spam {}/{} contained, {} slashed, {} crashed/{} joined",
            self.scenario,
            self.peers_initial,
            self.delivery_rate,
            self.propagation_p50_ms
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".to_string()),
            self.spam_attempted - self.spam_delivered_majority,
            self.spam_attempted,
            self.spammers_slashed,
            self.peers_crashed,
            self.peers_joined,
        );
        if let (Some(observers), Some(precision)) = (
            self.anonymity_observers,
            self.anonymity_first_spy_precision_at1,
        ) {
            line.push_str(&format!(
                ", {observers} observers first-spy p@1 {precision:.3}"
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> ScenarioReport {
        ScenarioReport {
            scenario: "t".to_string(),
            seed: 1,
            peers_initial: 10,
            peers_final_live: 9,
            honest: 10,
            spammers: 0,
            eclipse_attackers: 0,
            duration_ms: 1000,
            tree_depth: 10,
            honest_published: 5,
            honest_publish_failures: 0,
            delivery_rate: 0.987654321,
            propagation_p50_ms: Some(123.0),
            propagation_p99_ms: Some(456.0),
            propagation_max_ms: None,
            spam_attempted: 0,
            spam_send_failures: 0,
            spam_delivered_majority: 0,
            spam_detections: 0,
            spammers_slashed: 0,
            members_start: 10,
            members_end: 10,
            peers_crashed: 1,
            peers_joined: 0,
            messages_sent: 100,
            messages_delivered: 90,
            messages_to_removed_peer: 3,
            bytes_sent: 9999,
            bytes_sent_mean_per_node: 999.9,
            bytes_sent_max_node: 2000,
            cpu_micros_mean_per_node: 1.5,
            cpu_micros_max_node: 3,
            valid_total: 45,
            invalid_proof_total: 0,
            epoch_out_of_window_total: 0,
            duplicates_total: 2,
            malformed_total: 0,
            nullifier_map_max_bytes: 640,
            nullifier_map_mean_bytes: 320.0,
            membership_tree_max_bytes: 1300,
            drain_quiescent: false,
            drain_pending_events: 42,
            eclipse_victim_delivery_rate: None,
            anonymity_observers: None,
            anonymity_observations: None,
            anonymity_messages_observed: None,
            anonymity_first_spy_precision_at1: None,
            anonymity_centrality_precision_at1: None,
            anonymity_set_mean_size: None,
            anonymity_arrival_entropy_bits: None,
            resilience_faults_injected: None,
            resilience_peers_restarted: None,
            resilience_resync_retries: None,
            resilience_messages_lost_partition: None,
            resilience_time_to_remesh_ms: None,
            resilience_delivery_during_fault: None,
            resilience_delivery_post_heal: None,
            resilience_delivery_dip_depth: None,
            resilience_delivery_dip_duration_ms: None,
        }
    }

    #[test]
    fn json_has_fixed_schema_and_null_for_absent() {
        let json = dummy().to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"scenario\": \"t\""));
        assert!(json.contains("\"delivery_rate\": 0.987654"));
        assert!(json.contains("\"propagation_max_ms\": null"));
        assert!(json.contains("\"eclipse_victim_delivery_rate\": null"));
        // the anonymity section is always present, null without a
        // surveillance adversary
        assert!(json.contains("\"anonymity_observers\": null"));
        assert!(json.contains("\"anonymity_first_spy_precision_at1\": null"));
        assert!(json.contains("\"anonymity_arrival_entropy_bits\": null"));
        // the resilience section is always present, null without a
        // fault plan
        assert!(json.contains("\"resilience_faults_injected\": null"));
        assert!(json.contains("\"resilience_time_to_remesh_ms\": null"));
        assert!(json.contains("\"resilience_delivery_dip_depth\": null"));
        // no trailing comma before the closing brace
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn identical_reports_serialize_identically() {
        assert_eq!(dummy().to_json(), dummy().to_json());
    }

    #[test]
    fn scenario_names_are_json_escaped() {
        let mut report = dummy();
        report.scenario = "my\"run\\with\nweird chars".to_string();
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"my\\\"run\\\\with\\nweird chars\""));
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let report = dummy();
        let json = report.to_json();
        let parsed = ScenarioReport::from_json(&json).expect("parses");
        // byte-identical re-serialization is the contract CI diffing
        // relies on (float formatting is fixed-point, so struct equality
        // would be weaker than this)
        assert_eq!(parsed.to_json(), json);
        assert_eq!(parsed.scenario, "t");
        assert_eq!(parsed.drain_pending_events, 42);
        assert!(!parsed.drain_quiescent);
        assert_eq!(parsed.propagation_max_ms, None);

        let mut weird = dummy();
        weird.scenario = "we\"ird\nname".to_string();
        weird.propagation_p50_ms = None;
        weird.eclipse_victim_delivery_rate = Some(0.25);
        let json = weird.to_json();
        let parsed = ScenarioReport::from_json(&json).expect("parses escaped");
        assert_eq!(parsed.to_json(), json);
        assert_eq!(parsed.scenario, weird.scenario);
    }

    /// Table-driven round-trip over the optional report sections: the
    /// `anonymity_*` and `resilience_*` blocks each re-serialize
    /// byte-identically both when absent (all-null) and when populated,
    /// and a parse of one shape never bleeds values into the other
    /// section. One table, four rows — the shape matrix CI report
    /// diffing depends on.
    #[test]
    fn optional_sections_round_trip_null_and_populated() {
        fn with_anonymity(mut r: ScenarioReport) -> ScenarioReport {
            r.anonymity_observers = Some(25);
            r.anonymity_observations = Some(12_345);
            r.anonymity_messages_observed = Some(40);
            r.anonymity_first_spy_precision_at1 = Some(0.675);
            r.anonymity_centrality_precision_at1 = Some(0.725);
            r.anonymity_set_mean_size = Some(3.4);
            r.anonymity_arrival_entropy_bits = Some(1.58496);
            r
        }
        fn with_resilience(mut r: ScenarioReport) -> ScenarioReport {
            r.resilience_faults_injected = Some(4);
            r.resilience_peers_restarted = Some(11);
            r.resilience_resync_retries = Some(7);
            r.resilience_messages_lost_partition = Some(1234);
            r.resilience_time_to_remesh_ms = Some(3000);
            r.resilience_delivery_during_fault = Some(0.6125);
            r.resilience_delivery_post_heal = Some(0.9975);
            r.resilience_delivery_dip_depth = Some(0.3875);
            r.resilience_delivery_dip_duration_ms = Some(30_000);
            r
        }
        // (name, report, expected JSON fragments)
        let table: Vec<(&str, ScenarioReport, Vec<&str>)> = vec![
            (
                "both-null",
                dummy(),
                vec![
                    "\"anonymity_observers\": null",
                    "\"anonymity_arrival_entropy_bits\": null",
                    "\"resilience_faults_injected\": null",
                    "\"resilience_delivery_dip_duration_ms\": null",
                ],
            ),
            (
                "anonymity-only",
                with_anonymity(dummy()),
                vec![
                    "\"anonymity_observers\": 25",
                    "\"anonymity_first_spy_precision_at1\": 0.675000",
                    "\"resilience_faults_injected\": null",
                ],
            ),
            (
                "resilience-only",
                with_resilience(dummy()),
                vec![
                    "\"resilience_faults_injected\": 4",
                    "\"resilience_delivery_during_fault\": 0.612500",
                    "\"resilience_delivery_dip_duration_ms\": 30000",
                    "\"anonymity_observers\": null",
                ],
            ),
            (
                "both-populated",
                with_resilience(with_anonymity(dummy())),
                vec![
                    "\"anonymity_set_mean_size\": 3.400000",
                    "\"resilience_time_to_remesh_ms\": 3000",
                ],
            ),
        ];
        for (name, report, fragments) in table {
            let json = report.to_json();
            for fragment in fragments {
                assert!(json.contains(fragment), "{name}: missing {fragment}");
            }
            let parsed = ScenarioReport::from_json(&json)
                .unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
            assert_eq!(parsed.to_json(), json, "{name}: re-serialization drifted");
            // struct equality on the optional sections (the mandatory
            // floats round to 6 decimals on the wire, so whole-struct
            // equality would be wrong by design; the section values in
            // the table are chosen exactly representable)
            let anonymity = |r: &ScenarioReport| {
                (
                    r.anonymity_observers,
                    r.anonymity_observations,
                    r.anonymity_messages_observed,
                    r.anonymity_first_spy_precision_at1,
                    r.anonymity_centrality_precision_at1,
                    r.anonymity_set_mean_size,
                    r.anonymity_arrival_entropy_bits,
                )
            };
            let resilience = |r: &ScenarioReport| {
                (
                    r.resilience_faults_injected,
                    r.resilience_peers_restarted,
                    r.resilience_resync_retries,
                    r.resilience_messages_lost_partition,
                    r.resilience_time_to_remesh_ms,
                    r.resilience_delivery_during_fault,
                    r.resilience_delivery_post_heal,
                    r.resilience_delivery_dip_depth,
                    r.resilience_delivery_dip_duration_ms,
                )
            };
            assert_eq!(
                anonymity(&parsed),
                anonymity(&report),
                "{name}: anonymity section diverged"
            );
            assert_eq!(
                resilience(&parsed),
                resilience(&report),
                "{name}: resilience section diverged"
            );
        }
    }

    #[test]
    fn from_json_reports_missing_and_malformed_fields() {
        assert!(ScenarioReport::from_json("{}")
            .unwrap_err()
            .contains("missing field"));
        assert!(ScenarioReport::from_json("not json").is_err());
        let truncated = dummy().to_json().replace("\"seed\": 1", "\"seed\": true");
        assert!(ScenarioReport::from_json(&truncated)
            .unwrap_err()
            .contains("seed"));
    }

    #[test]
    fn from_json_rejects_sloppy_separators_and_trailing_garbage() {
        // missing comma between fields
        assert!(ScenarioReport::from_json("{\"a\": 1 \"b\": 2}")
            .unwrap_err()
            .contains("expected ','"));
        // trailing comma before the closing brace
        assert!(ScenarioReport::from_json("{\"a\": 1,}").is_err());
        // trailing garbage after a full, otherwise-valid report
        let mut json = dummy().to_json();
        json.push_str("garbage");
        assert!(ScenarioReport::from_json(&json)
            .unwrap_err()
            .contains("trailing content"));
        // whitespace after the brace stays fine
        let json = dummy().to_json();
        assert!(ScenarioReport::from_json(&format!("{json}\n  \n")).is_ok());
    }

    #[test]
    fn u64_fields_round_trip_at_full_width() {
        // wire stability: counters near u64::MAX survive the JSON detour
        // without a float detour truncating them
        let mut report = dummy();
        report.bytes_sent = u64::MAX - 1;
        report.messages_sent = u64::MAX;
        let parsed = ScenarioReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed.bytes_sent, u64::MAX - 1);
        assert_eq!(parsed.messages_sent, u64::MAX);
    }

    #[test]
    fn summary_line_mentions_scenario() {
        assert!(dummy().summary_line().starts_with("t: 10 peers"));
    }
}
