//! Source-attribution estimators over pooled passive-observer tapes.
//!
//! A colluding surveillance adversary (see
//! [`SurveillanceSpec`](crate::spec::SurveillanceSpec)) controls a
//! fraction of the relay population; each controlled node records every
//! incoming message forward as `(message_id, arrival_ms, previous_hop)`.
//! This module pools those tapes per message and implements the two
//! classic estimators of the gossip-privacy literature:
//!
//! * **first spy** (earliest arrival): the publisher is guessed to be
//!   the previous hop of the globally earliest observation — the
//!   estimator whose success probability both "Who started this rumor?"
//!   (Bellet et al.) and "On the Inherent Anonymity of Gossiping"
//!   (Guerraoui et al.) bound in their adversary models;
//! * **neighbour-weighted centrality**: every observer's *first*
//!   sighting casts a vote for its previous hop, weighted by how close
//!   the sighting is to the earliest one; the candidate with the
//!   largest pooled weight is guessed. More robust than first-spy when
//!   a single early observation is noisy (jittered first hops).
//!
//! Alongside the guesses the module quantifies residual uncertainty:
//! the **anonymity set** (distinct previous hops across the observers'
//! first sightings — the suspects timing alone cannot separate) and the
//! **arrival entropy** (Shannon entropy of the normalized vote
//! distribution, in bits: 0 = the adversary is certain, higher = the
//! countermeasure is working).
//!
//! Everything here is pure, allocation-light post-processing: iteration
//! orders are fixed by explicit sorts, so the computed metrics are as
//! deterministic as the simulation that produced the tapes.

/// One pooled record: `observer` saw neighbour `from` hand over the
/// message at `at_ms`. Node ids are the wire-stable `u64` form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PooledObservation {
    /// The colluding node that took the record.
    pub observer: u64,
    /// The previous hop it observed.
    pub from: u64,
    /// Simulated arrival time, milliseconds.
    pub at_ms: u64,
}

/// The estimators' verdict on a single message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageAttribution {
    /// First-spy guess: previous hop of the earliest pooled observation.
    pub first_spy_guess: u64,
    /// Neighbour-weighted centrality guess: largest pooled vote weight.
    pub centrality_guess: u64,
    /// Distinct suspects across the observers' first sightings.
    pub anonymity_set_size: usize,
    /// Shannon entropy of the normalized vote distribution, bits.
    pub arrival_entropy_bits: f64,
}

/// Runs both estimators over one message's pooled observations.
/// Returns `None` when the adversary saw nothing (no observation).
///
/// Ties are broken deterministically: earliest `(at_ms, from, observer)`
/// for first-spy, largest weight then smallest node id for centrality.
pub fn attribute(observations: &[PooledObservation]) -> Option<MessageAttribution> {
    if observations.is_empty() {
        return None;
    }
    let mut records = observations.to_vec();
    records.sort_unstable_by_key(|o| (o.at_ms, o.from, o.observer));
    // lint:allow(panic-path, reason = "guarded: empty observation sets returned None above")
    let earliest = records[0];

    // each observer's first sighting casts exactly one vote: later
    // arrivals at the same tap are mesh echo, not source evidence
    let mut voted: std::collections::HashSet<u64> = std::collections::HashSet::new();
    // (candidate, weight) accumulated in candidate-id order; the
    // candidate set doubles as the anonymity set (every vote names a
    // suspect, every suspect got a vote)
    let mut votes: Vec<(u64, f64)> = Vec::new();
    for record in &records {
        if !voted.insert(record.observer) {
            continue;
        }
        // a sighting Δms after the earliest still carries weight, but a
        // direct first hop dominates: w = 1 / (1 + Δ)
        let weight = 1.0 / (1.0 + (record.at_ms - earliest.at_ms) as f64);
        match votes.binary_search_by_key(&record.from, |(c, _)| *c) {
            Ok(i) => votes[i].1 += weight,
            Err(i) => votes.insert(i, (record.from, weight)),
        }
    }

    // argmax over candidates in ascending-id order: strictly-greater
    // comparison makes the smallest id win ties deterministically
    // lint:allow(panic-path, reason = "every record cast or merged a vote, and records is non-empty, so votes is too")
    let mut centrality_guess = votes[0].0;
    // lint:allow(panic-path, reason = "every record cast or merged a vote, and records is non-empty, so votes is too")
    let mut best = votes[0].1;
    for (candidate, weight) in votes.iter().skip(1) {
        if *weight > best {
            best = *weight;
            centrality_guess = *candidate;
        }
    }

    let total: f64 = votes.iter().map(|(_, w)| w).sum();
    let mut entropy = 0.0;
    for (_, weight) in &votes {
        let p = weight / total;
        if p > 0.0 {
            entropy -= p * p.log2();
        }
    }

    Some(MessageAttribution {
        first_spy_guess: earliest.from,
        centrality_guess,
        anonymity_set_size: votes.len(),
        arrival_entropy_bits: entropy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(observer: u64, from: u64, at_ms: u64) -> PooledObservation {
        PooledObservation {
            observer,
            from,
            at_ms,
        }
    }

    #[test]
    fn no_observations_no_attribution() {
        assert_eq!(attribute(&[]), None);
    }

    #[test]
    fn lone_direct_sighting_is_certain() {
        let a = attribute(&[obs(7, 3, 100)]).unwrap();
        assert_eq!(a.first_spy_guess, 3);
        assert_eq!(a.centrality_guess, 3);
        assert_eq!(a.anonymity_set_size, 1);
        assert_eq!(a.arrival_entropy_bits, 0.0);
    }

    #[test]
    fn earliest_arrival_wins_first_spy() {
        let a = attribute(&[obs(1, 9, 121), obs(2, 4, 120), obs(3, 9, 120)]).unwrap();
        // earliest (120, from 4) wins first-spy on the (at, from, observer)
        // tie-break against (120, from 9)
        assert_eq!(a.first_spy_guess, 4);
        // but the pooled vote — a simultaneous sighting of 9 (weight 1)
        // plus one 1 ms later (weight 1/2) — outweighs 4's single vote
        assert_eq!(a.centrality_guess, 9);
        assert_eq!(a.anonymity_set_size, 2);
        assert!(a.arrival_entropy_bits > 0.0);
    }

    #[test]
    fn duplicate_arrivals_at_one_observer_do_not_stuff_the_ballot() {
        // observer 1 hears candidate 5 three times (mesh echo); observer
        // 2 and 3 each hear candidate 6 once, slightly later
        let a = attribute(&[
            obs(1, 5, 100),
            obs(1, 5, 105),
            obs(1, 5, 110),
            obs(2, 6, 101),
            obs(3, 6, 101),
        ])
        .unwrap();
        assert_eq!(a.first_spy_guess, 5);
        // one vote for 5 (weight 1), two for 6 (weight 1/2 each): tie,
        // broken toward the smaller id
        assert_eq!(a.centrality_guess, 5);
        assert_eq!(a.anonymity_set_size, 2);
    }

    #[test]
    fn symmetric_two_way_split_is_one_bit_of_entropy() {
        let a = attribute(&[obs(1, 2, 50), obs(3, 4, 50)]).unwrap();
        assert!((a.arrival_entropy_bits - 1.0).abs() < 1e-12);
        assert_eq!(a.anonymity_set_size, 2);
        // deterministic tie-breaks: earliest sort puts (50, 2, 1) first,
        // equal weights resolve to the smaller candidate id
        assert_eq!(a.first_spy_guess, 2);
        assert_eq!(a.centrality_guess, 2);
    }

    #[test]
    fn attribution_is_input_order_independent() {
        let mut records = vec![
            obs(1, 9, 140),
            obs(2, 4, 120),
            obs(3, 9, 130),
            obs(2, 7, 119),
        ];
        let forward = attribute(&records).unwrap();
        records.reverse();
        assert_eq!(attribute(&records).unwrap(), forward);
    }
}
