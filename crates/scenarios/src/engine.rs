//! The scenario executor: turns a [`ScenarioSpec`] into a running world
//! and distills the run into a [`ScenarioReport`].
//!
//! Determinism contract: every random choice — topology, link latencies,
//! identity material, publisher draws, crash victims, join bootstraps —
//! derives from `spec.seed`, and simulated time is the only clock. Same
//! spec, same seed ⇒ byte-identical report (the
//! `tests/scenario_determinism.rs` suite holds the engine to this).

use crate::attribution::{attribute, PooledObservation};
use crate::report::ScenarioReport;
use crate::spec::{
    ChurnAction, DeviceClassSpec, EclipseSpec, LatencySpec, ScenarioSpec, TopologySpec,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
// lint:allow(host-time, reason = "wall-clock progress/elapsed reporting only; the simulation reads ctx.now() exclusively")
use std::time::Instant;
use waku_rln_relay::{CostModel, Testbed, TestbedConfig};
use wakurln_gossipsub::MessageId;
use wakurln_netsim::{topology, NodeId, QuiescenceOutcome};

/// A newly joined peer needs its registration mined, synced, and a mesh
/// formed before it can be expected to receive traffic; publishes earlier
/// than this after its join don't count it as an eligible receiver.
const JOIN_SYNC_GRACE_MS: u64 = 20_000;

/// A traffic round counts as delivery-dipped when its pair delivery rate
/// falls below this threshold (feeds `resilience_delivery_dip_*`).
const DIP_THRESHOLD: f64 = 0.99;

/// What the engine remembers about one honest publish.
struct PublishRecord {
    payload: Vec<u8>,
    /// Content-derived wire id — the key observer tapes are pooled by.
    id: MessageId,
    publisher: usize,
    at_ms: u64,
    /// Traffic round the publish belongs to (per-round delivery rates
    /// drive the resilience dip metrics).
    round: usize,
}

/// One timeline entry (churn before spam before fault transitions before
/// traffic at equal timestamps — the order adversaries would pick, and
/// faults land before the traffic that measures them).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Churn(usize),
    Spam,
    FaultCrash(usize),
    FaultRestore(usize),
    PartitionStart(usize),
    PartitionHeal(usize),
    DegradeStart(usize),
    DegradeEnd(usize),
    OutageStart(usize),
    Traffic(usize),
}

/// Samples time-to-remesh after a disruption ends: armed at every
/// restart/heal, it records how long until **every** live peer holds at
/// least `min(2, live - 1)` mesh links on the shared topic — i.e. the
/// whole population is knit back into the relay mesh. (The floor is
/// deliberately below `mesh_n_low`: prune-backoff windows keep
/// individual peers under the heartbeat's target degree for up to a
/// minute even in steady state, and the metric measures reconnection,
/// not full degree repair.) Sampling reads per-node state at lock-step
/// slice boundaries only, so it never influences the simulation and
/// stays thread-count independent. Re-arming resets the measurement; the
/// report carries the last completed one.
struct RemeshProbe {
    since: Option<u64>,
    recorded: Option<u64>,
    mesh_floor: usize,
}

impl RemeshProbe {
    fn arm(&mut self, now_ms: u64) {
        self.since = Some(now_ms);
        self.recorded = None;
    }

    fn sample(&mut self, tb: &Testbed) {
        let Some(since) = self.since else { return };
        if self.recorded.is_some() {
            return;
        }
        let live: Vec<usize> = (0..tb.peer_count()).filter(|i| tb.is_live(*i)).collect();
        let floor = self.mesh_floor.min(live.len().saturating_sub(1));
        if live.iter().all(|&i| tb.mesh_size(i) >= floor) {
            self.recorded = Some(tb.net.now().saturating_sub(since));
        }
    }
}

/// A progress snapshot emitted while a scenario advances (one per
/// lock-step slice). Consumers decide the printing cadence; emitting a
/// snapshot never influences the simulation, so progress-observed runs
/// stay byte-identical to silent ones.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Simulated time reached, milliseconds.
    pub sim_ms: u64,
    /// Total simulated time this run will cover, milliseconds.
    pub total_ms: u64,
    /// Events dispatched to node callbacks so far.
    pub events_dispatched: u64,
    /// Wall-clock time spent so far, milliseconds.
    pub wall_ms: u64,
}

/// Runs a scenario to completion and reports.
///
/// # Panics
///
/// Panics when the spec is internally inconsistent (see
/// [`ScenarioSpec::validate`]).
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioReport {
    run_scenario_detailed(spec).0
}

/// [`run_scenario`] with a progress observer: `observe` fires once per
/// lock-step slice (see [`Progress`]) — the hook behind `simctl run
/// --progress`, so hour-long 10k-node runs are not silent.
pub fn run_scenario_with_progress(
    spec: &ScenarioSpec,
    mut observe: impl FnMut(&Progress),
) -> ScenarioReport {
    run_scenario_impl(spec, Some(&mut observe)).0
}

/// [`run_scenario`], additionally handing back the finished [`Testbed`]
/// for assertions the report does not cover (ports of hand-wired tests
/// use this to keep their original fine-grained checks).
pub fn run_scenario_detailed(spec: &ScenarioSpec) -> (ScenarioReport, Testbed) {
    run_scenario_impl(spec, None)
}

fn run_scenario_impl(
    spec: &ScenarioSpec,
    mut observe: Option<&mut dyn FnMut(&Progress)>,
) -> (ScenarioReport, Testbed) {
    spec.validate();
    let depth = spec.effective_tree_depth();
    let honest = spec.honest;
    let spammers = spec.spam.map(|s| s.spammers).unwrap_or(0);
    let attackers = spec.eclipse.map(|e| e.attackers).unwrap_or(0);
    let n_initial = spec.initial_peers();
    let victim: Option<usize> = spec.eclipse.map(|_| 0);

    let (latency_min, latency_max) = match spec.latency {
        LatencySpec::Constant { ms } => (ms, ms),
        LatencySpec::Uniform { min_ms, max_ms } => (min_ms, max_ms),
    };
    let mut config = TestbedConfig {
        n_peers: n_initial,
        tree_depth: depth,
        epoch: spec.epoch,
        degree: match spec.topology {
            TopologySpec::RandomRegular { degree } => degree,
            _ => 6,
        },
        seed: spec.seed,
        latency_ms: (latency_min, latency_max),
        pipeline: spec.pipeline,
        threads: spec.threads,
        ..TestbedConfig::default()
    };
    // the source-anonymity countermeasure: publishers hold first-hop
    // copies back for per-target jitter drawn from their own RNG stream
    config.gossip.publish_jitter_ms = spec.publish_jitter_ms;

    // time-to-remesh after restarts/heals (see RemeshProbe for why the
    // floor is connectivity, not mesh_n_low)
    let mut remesh = RemeshProbe {
        since: None,
        recorded: None,
        mesh_floor: config.gossip.mesh_n_low.min(2),
    };

    let adjacency = build_adjacency(spec, honest + spammers, attackers);
    let costs = assign_costs(&spec.devices, honest, n_initial, config.cost);
    let mut tb = Testbed::build_custom(config, adjacency, |i| costs[i]);
    if spec.loss > 0.0 {
        tb.net.set_loss_probability(spec.loss);
    }
    for a in 0..attackers {
        tb.set_censor(honest + spammers + a, true);
    }
    let members_start = tb.active_members() as u64;

    // engine-side randomness, independent of the testbed's RNG stream
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x05ca_1ab1_e0dd_ba11);

    // surveillance: the adversary's colluding observers, drawn
    // deterministically from the initial honest population (minus the
    // eclipse victim — an eclipsed tap sees nothing anyway). Observers
    // stay protocol-honest but are kept out of the publisher pool: the
    // adversary does not publish the traffic it wants to attribute.
    let observers: Vec<usize> = match spec.surveillance {
        None => Vec::new(),
        Some(_) => {
            let mut pool: Vec<usize> = (0..honest).filter(|i| Some(*i) != victim).collect();
            pool.shuffle(&mut rng);
            pool.truncate(spec.observer_count());
            pool.sort_unstable();
            for &peer in &pool {
                tb.set_observer(peer, true);
            }
            pool
        }
    };
    let observer_set: HashSet<usize> = observers.iter().copied().collect();

    // assemble the timeline
    let mut events: Vec<(u64, EventKind)> = Vec::new();
    for (i, e) in spec.churn.iter().enumerate() {
        events.push((e.at_ms, EventKind::Churn(i)));
    }
    if let Some(s) = spec.spam {
        events.push((s.at_ms, EventKind::Spam));
    }
    for r in 0..spec.traffic.rounds {
        events.push((
            spec.traffic.start_ms + spec.traffic.interval_ms * r as u64,
            EventKind::Traffic(r),
        ));
    }
    for (i, r) in spec.faults.restarts.iter().enumerate() {
        events.push((r.at_ms, EventKind::FaultCrash(i)));
        events.push((r.at_ms + r.downtime_ms, EventKind::FaultRestore(i)));
    }
    for (i, p) in spec.faults.partitions.iter().enumerate() {
        events.push((p.at_ms, EventKind::PartitionStart(i)));
        events.push((p.at_ms + p.heal_after_ms, EventKind::PartitionHeal(i)));
    }
    for (i, d) in spec.faults.degradations.iter().enumerate() {
        events.push((d.at_ms, EventKind::DegradeStart(i)));
        events.push((d.at_ms + d.duration_ms, EventKind::DegradeEnd(i)));
    }
    for (i, o) in spec.faults.contract_outages.iter().enumerate() {
        events.push((o.at_ms, EventKind::OutageStart(i)));
    }
    events.sort();

    // run it
    // lint:allow(host-time, reason = "wall-clock elapsed printed as console progress; never enters simulation state or reports")
    let started_wall = Instant::now();
    let end_ms = spec.duration_ms();
    let advance = |tb: &mut Testbed,
                   to_ms: u64,
                   observe: &mut Option<&mut dyn FnMut(&Progress)>,
                   remesh: &mut RemeshProbe| {
        // slice at the engine level so a progress observer sees every
        // lock-step boundary; tb.run slices identically internally, so
        // the world evolves the same with or without an observer
        while tb.net.now() < to_ms {
            let next = (tb.net.now() + spec.slice_ms).min(to_ms);
            tb.run(next - tb.net.now(), spec.slice_ms);
            remesh.sample(tb);
            if let Some(observe) = observe.as_deref_mut() {
                observe(&Progress {
                    sim_ms: tb.net.now(),
                    total_ms: end_ms,
                    events_dispatched: tb.net.events_dispatched(),
                    wall_ms: started_wall.elapsed().as_millis() as u64,
                });
            }
        }
    };
    let mut publishes: Vec<PublishRecord> = Vec::new();
    let mut spam_payloads: Vec<(usize, Vec<u8>, u64)> = Vec::new();
    let mut honest_publish_failures = 0u64;
    let mut spam_attempted = 0u64;
    let mut spam_send_failures = 0u64;
    let mut peers_crashed = 0u64;
    let mut peers_joined = 0u64;
    // join time per peer id; initial peers joined at 0
    let mut joined_at: Vec<u64> = vec![0; n_initial];
    // fault bookkeeping: which peers each restart event took down (the
    // matching restore brings back exactly that set), and how many fault
    // transitions actually fired
    let mut restart_sets: Vec<Vec<usize>> = vec![Vec::new(); spec.faults.restarts.len()];
    let mut faults_injected = 0u64;

    for (at_ms, kind) in events {
        if at_ms > tb.net.now() {
            advance(&mut tb, at_ms, &mut observe, &mut remesh);
        }
        match kind {
            EventKind::Churn(i) => match spec.churn[i].action {
                ChurnAction::Crash { peers } => {
                    let mut candidates = honest_candidates(&tb, honest, &joined_at, victim);
                    candidates.shuffle(&mut rng);
                    for p in candidates.into_iter().take(peers) {
                        if tb.crash_peer(p) {
                            peers_crashed += 1;
                        }
                    }
                }
                ChurnAction::Join { peers } => {
                    for _ in 0..peers {
                        let mut candidates = honest_candidates(&tb, honest, &joined_at, victim);
                        candidates.shuffle(&mut rng);
                        candidates.truncate(3);
                        if candidates.is_empty() {
                            continue;
                        }
                        let id = tb.add_peer(&candidates);
                        debug_assert_eq!(id, joined_at.len());
                        joined_at.push(at_ms);
                        peers_joined += 1;
                    }
                }
            },
            EventKind::Spam => {
                // lint:allow(panic-path, reason = "the Spam event is only scheduled when spec.spam is Some")
                let s = spec.spam.expect("spam event implies spam spec");
                for spammer in honest..honest + s.spammers {
                    for k in 0..s.burst {
                        spam_attempted += 1;
                        let payload = format!("spam-{spammer}-{k}").into_bytes();
                        match tb.publish_spam(spammer, &payload) {
                            Ok(_) => spam_payloads.push((spammer, payload, tb.net.now())),
                            Err(_) => spam_send_failures += 1,
                        }
                    }
                }
            }
            EventKind::FaultCrash(i) => {
                let mut candidates = honest_candidates(&tb, honest, &joined_at, victim);
                candidates.shuffle(&mut rng);
                candidates.truncate(spec.faults.restarts[i].peers);
                candidates.sort_unstable();
                for &p in &candidates {
                    tb.crash_peer(p);
                }
                restart_sets[i] = candidates;
                faults_injected += 1;
            }
            EventKind::FaultRestore(i) => {
                let warm = spec.faults.restarts[i].warm;
                for &p in &restart_sets[i] {
                    tb.restart_peer(p, warm);
                }
                remesh.arm(tb.net.now());
            }
            EventKind::PartitionStart(i) => {
                // the minority group is drawn from the live population so
                // the split is meaningful even after churn/crashes
                let p = spec.faults.partitions[i];
                let mut live: Vec<usize> =
                    (0..tb.peer_count()).filter(|j| tb.is_live(*j)).collect();
                live.shuffle(&mut rng);
                let minority = ((live.len() as f64) * p.minority_fraction).round() as usize;
                let mut groups = vec![0u32; tb.peer_count()];
                for &j in live.iter().take(minority) {
                    groups[j] = 1;
                }
                tb.net.set_partition(groups);
                faults_injected += 1;
            }
            EventKind::PartitionHeal(_) => {
                tb.net.clear_partition();
                remesh.arm(tb.net.now());
            }
            EventKind::DegradeStart(i) => {
                let d = spec.faults.degradations[i];
                tb.net.set_degradation(d.extra_loss, d.extra_latency_ms);
                faults_injected += 1;
            }
            EventKind::DegradeEnd(_) => {
                tb.net.clear_degradation();
            }
            EventKind::OutageStart(i) => {
                // the chain clock ticks in seconds; round the end up so a
                // sub-second tail still covers its full window
                let o = spec.faults.contract_outages[i];
                tb.chain
                    .set_registration_outage((o.at_ms + o.duration_ms).div_ceil(1000));
                faults_injected += 1;
            }
            EventKind::Traffic(round) => {
                let mut candidates = honest_candidates(&tb, honest, &joined_at, victim);
                // only synced members can generate proofs, and the
                // surveillance adversary's taps never publish
                candidates.retain(|p| tb.is_member(*p) && !observer_set.contains(p));
                candidates.shuffle(&mut rng);
                for p in candidates.into_iter().take(spec.traffic.publishers) {
                    let payload = format!("r{round}-p{p}").into_bytes();
                    match tb.publish(p, &payload) {
                        Ok(id) => publishes.push(PublishRecord {
                            payload,
                            id,
                            publisher: p,
                            at_ms: tb.net.now(),
                            round,
                        }),
                        Err(_) => honest_publish_failures += 1,
                    }
                }
            }
        }
    }
    if end_ms > tb.net.now() {
        advance(&mut tb, end_ms, &mut observe, &mut remesh);
    }
    // classify the drain: did the network actually settle, or did the
    // hard stop cut it off with work still queued? (Live meshes keep
    // heartbeat timers armed forever, so pending > 0 is the norm — the
    // report records it instead of swallowing it.)
    let drain = tb.run_to_quiescence(end_ms, spec.slice_ms);
    let (drain_quiescent, drain_pending_events) = match drain {
        QuiescenceOutcome::Quiescent { .. } => (true, 0),
        QuiescenceOutcome::HardStop { pending_events, .. } => (false, pending_events),
    };

    // distill
    let n_total = tb.peer_count();
    let is_censor = |i: usize| i >= honest + spammers && i < n_initial;
    // one eligibility rule for every delivery metric (honest and spam):
    // the receiver is alive at the end, isn't the sender or a censor, and
    // had joined (plus sync grace) before the publish
    let eligible_receiver = |i: usize, sender: usize, published_at: u64| {
        i != sender
            && !is_censor(i)
            && tb.is_live(i)
            && (joined_at[i] == 0 || joined_at[i] + JOIN_SYNC_GRACE_MS <= published_at)
    };
    let mut arrivals: HashMap<Vec<u8>, HashMap<usize, u64>> = HashMap::new();
    for i in 0..n_total {
        for (payload, at) in tb.net.node(NodeId(i)).app_deliveries() {
            arrivals.entry(payload).or_default().entry(i).or_insert(at);
        }
    }

    let mut pairs_total = 0u64;
    let mut pairs_delivered = 0u64;
    let mut victim_pairs = 0u64;
    let mut victim_delivered = 0u64;
    // per-traffic-round pair counts: (publish time, total, delivered)
    let mut rounds: Vec<(u64, u64, u64)> = vec![(0, 0, 0); spec.traffic.rounds];
    let mut samples: Vec<f64> = Vec::new();
    for publish in &publishes {
        let delivered_to = arrivals.get(&publish.payload);
        rounds[publish.round].0 = publish.at_ms;
        for i in 0..n_total {
            if !eligible_receiver(i, publish.publisher, publish.at_ms) {
                continue;
            }
            pairs_total += 1;
            rounds[publish.round].1 += 1;
            let arrival = delivered_to.and_then(|m| m.get(&i));
            if let Some(at) = arrival {
                pairs_delivered += 1;
                rounds[publish.round].2 += 1;
                samples.push(at.saturating_sub(publish.at_ms) as f64);
            }
            if Some(i) == victim {
                victim_pairs += 1;
                if arrival.is_some() {
                    victim_delivered += 1;
                }
            }
        }
    }
    samples.sort_by(f64::total_cmp);
    let percentile = |p: f64| -> Option<f64> {
        if samples.is_empty() {
            None
        } else {
            let rank = ((samples.len() - 1) as f64 * p).round() as usize;
            Some(samples[rank])
        }
    };

    let mut spam_delivered_majority = 0u64;
    for (spammer, payload, sent_at) in &spam_payloads {
        let eligible: Vec<usize> = (0..n_total)
            .filter(|i| eligible_receiver(*i, *spammer, *sent_at))
            .collect();
        let got = arrivals
            .get(payload)
            .map(|m| eligible.iter().filter(|i| m.contains_key(i)).count())
            .unwrap_or(0);
        if got * 2 >= eligible.len() && !eligible.is_empty() {
            spam_delivered_majority += 1;
        }
    }
    let spammers_slashed = (honest..honest + spammers)
        .filter(|s| !tb.is_member(*s))
        .count() as u64;

    let mut stats_sum = waku_rln_relay::ValidationStats::default();
    let mut nullifier_max = 0u64;
    let mut nullifier_sum = 0u64;
    let mut nullifier_live = 0u64;
    let mut tree_max = 0u64;
    let mut bytes_max = 0u64;
    let mut bytes_sum = 0u64;
    let mut cpu_max = 0u64;
    let mut cpu_sum = 0u64;
    for i in 0..n_total {
        let node = tb.net.node(NodeId(i));
        let s = node.validator().stats();
        stats_sum.valid += s.valid;
        stats_sum.malformed += s.malformed;
        stats_sum.invalid_proof += s.invalid_proof;
        stats_sum.epoch_out_of_window += s.epoch_out_of_window;
        stats_sum.duplicates += s.duplicates;
        stats_sum.spam_detected += s.spam_detected;
        if tb.is_live(i) {
            let nb = node.validator().nullifier_map_bytes() as u64;
            nullifier_max = nullifier_max.max(nb);
            nullifier_sum += nb;
            nullifier_live += 1;
            tree_max = tree_max.max(node.membership_storage_bytes() as u64);
        }
        let b = tb.net.metrics().node_bytes_sent(i as u64);
        bytes_max = bytes_max.max(b);
        bytes_sum += b;
        let c = tb.net.metrics().node_counter(i as u64, "cpu_micros");
        cpu_max = cpu_max.max(c);
        cpu_sum += c;
    }

    // the adversary's post-run analysis: pool every observer tape by
    // message id and run the attribution estimators over each honest
    // publish. Pure post-processing over per-node state in fixed order —
    // thread-count independent like everything else in the report.
    let mut anonymity_observers = None;
    let mut anonymity_observations = None;
    let mut anonymity_messages_observed = None;
    let mut anonymity_first_spy_precision_at1 = None;
    let mut anonymity_centrality_precision_at1 = None;
    let mut anonymity_set_mean_size = None;
    let mut anonymity_arrival_entropy_bits = None;
    if spec.surveillance.is_some() {
        let mut pooled: HashMap<MessageId, Vec<PooledObservation>> = HashMap::new();
        let mut observations_total = 0u64;
        for &peer in &observers {
            for obs in tb.observations(peer) {
                observations_total += 1;
                pooled.entry(obs.id).or_default().push(PooledObservation {
                    observer: peer as u64,
                    from: obs.from.as_u64(),
                    at_ms: obs.at_ms,
                });
            }
        }
        let mut observed = 0u64;
        let mut first_spy_hits = 0u64;
        let mut centrality_hits = 0u64;
        let mut set_size_sum = 0u64;
        let mut entropy_sum = 0.0f64;
        for publish in &publishes {
            let Some(verdict) = pooled.get(&publish.id).and_then(|r| attribute(r)) else {
                continue;
            };
            observed += 1;
            if verdict.first_spy_guess == publish.publisher as u64 {
                first_spy_hits += 1;
            }
            if verdict.centrality_guess == publish.publisher as u64 {
                centrality_hits += 1;
            }
            set_size_sum += verdict.anonymity_set_size as u64;
            entropy_sum += verdict.arrival_entropy_bits;
        }
        anonymity_observers = Some(observers.len() as u64);
        anonymity_observations = Some(observations_total);
        anonymity_messages_observed = Some(observed);
        if observed > 0 {
            anonymity_first_spy_precision_at1 = Some(first_spy_hits as f64 / observed as f64);
            anonymity_centrality_precision_at1 = Some(centrality_hits as f64 / observed as f64);
            anonymity_set_mean_size = Some(set_size_sum as f64 / observed as f64);
            anonymity_arrival_entropy_bits = Some(entropy_sum / observed as f64);
        }
    }

    let metrics = tb.net.metrics();

    // resilience distillation — populated only when the spec schedules
    // faults, so fault-free reports keep every resilience_* field null
    let mut resilience_faults_injected = None;
    let mut resilience_peers_restarted = None;
    let mut resilience_resync_retries = None;
    let mut resilience_messages_lost_partition = None;
    let mut resilience_time_to_remesh_ms = None;
    let mut resilience_delivery_during_fault = None;
    let mut resilience_delivery_post_heal = None;
    let mut resilience_delivery_dip_depth = None;
    let mut resilience_delivery_dip_duration_ms = None;
    if !spec.faults.is_empty() {
        let windows = spec.faults.windows();
        let last_end = spec.faults.last_end_ms();
        let in_fault = |t: u64| windows.iter().any(|(s, e)| t >= *s && t < *e);
        let mut during = (0u64, 0u64);
        let mut post = (0u64, 0u64);
        let mut min_rate: Option<f64> = None;
        let mut dip_rounds = 0u64;
        for &(at, total, delivered) in &rounds {
            if total == 0 {
                continue;
            }
            let rate = delivered as f64 / total as f64;
            min_rate = Some(min_rate.map_or(rate, |m: f64| m.min(rate)));
            if rate < DIP_THRESHOLD {
                dip_rounds += 1;
            }
            if in_fault(at) {
                during.0 += total;
                during.1 += delivered;
            }
            if at >= last_end {
                post.0 += total;
                post.1 += delivered;
            }
        }
        resilience_faults_injected = Some(faults_injected);
        resilience_peers_restarted = Some(metrics.counter("peer_restarts"));
        resilience_resync_retries = Some(metrics.counter("resync_retries"));
        resilience_messages_lost_partition = Some(metrics.counter("messages_lost_partition"));
        resilience_time_to_remesh_ms = remesh.recorded;
        resilience_delivery_during_fault =
            (during.0 > 0).then(|| during.1 as f64 / during.0 as f64);
        resilience_delivery_post_heal = (post.0 > 0).then(|| post.1 as f64 / post.0 as f64);
        resilience_delivery_dip_depth = min_rate.map(|m| 1.0 - m);
        resilience_delivery_dip_duration_ms = Some(dip_rounds * spec.traffic.interval_ms);
    }

    let report = ScenarioReport {
        scenario: spec.name.clone(),
        seed: spec.seed,
        peers_initial: n_initial as u64,
        peers_final_live: tb.live_peer_count() as u64,
        honest: honest as u64,
        spammers: spammers as u64,
        eclipse_attackers: attackers as u64,
        duration_ms: end_ms,
        tree_depth: depth as u64,
        honest_published: publishes.len() as u64,
        honest_publish_failures,
        delivery_rate: pairs_delivered as f64 / pairs_total as f64,
        propagation_p50_ms: percentile(0.50),
        propagation_p99_ms: percentile(0.99),
        propagation_max_ms: percentile(1.0),
        spam_attempted,
        spam_send_failures,
        spam_delivered_majority,
        spam_detections: tb.total_spam_detections(),
        spammers_slashed,
        members_start,
        members_end: tb.active_members() as u64,
        peers_crashed,
        peers_joined,
        messages_sent: metrics.counter("messages_sent"),
        messages_delivered: metrics.counter("messages_delivered"),
        messages_to_removed_peer: metrics.counter("messages_to_removed_peer"),
        bytes_sent: metrics.counter("bytes_sent"),
        bytes_sent_mean_per_node: bytes_sum as f64 / n_total as f64,
        bytes_sent_max_node: bytes_max,
        cpu_micros_mean_per_node: cpu_sum as f64 / n_total as f64,
        cpu_micros_max_node: cpu_max,
        valid_total: stats_sum.valid,
        invalid_proof_total: stats_sum.invalid_proof,
        epoch_out_of_window_total: stats_sum.epoch_out_of_window,
        duplicates_total: stats_sum.duplicates,
        malformed_total: stats_sum.malformed,
        nullifier_map_max_bytes: nullifier_max,
        nullifier_map_mean_bytes: nullifier_sum as f64 / nullifier_live.max(1) as f64,
        membership_tree_max_bytes: tree_max,
        drain_quiescent,
        drain_pending_events,
        eclipse_victim_delivery_rate: spec
            .eclipse
            .map(|_| victim_delivered as f64 / victim_pairs.max(1) as f64),
        anonymity_observers,
        anonymity_observations,
        anonymity_messages_observed,
        anonymity_first_spy_precision_at1,
        anonymity_centrality_precision_at1,
        anonymity_set_mean_size,
        anonymity_arrival_entropy_bits,
        resilience_faults_injected,
        resilience_peers_restarted,
        resilience_resync_retries,
        resilience_messages_lost_partition,
        resilience_time_to_remesh_ms,
        resilience_delivery_during_fault,
        resilience_delivery_post_heal,
        resilience_delivery_dip_depth,
        resilience_delivery_dip_duration_ms,
    };
    (report, tb)
}

/// Live honest peers (initial honest plus joiners), excluding the
/// eclipse victim — the pool traffic, crash and bootstrap draws come
/// from. `joined_at[i]` is peer `i`'s join time (0 for the initial
/// population), so joiners are exactly the peers with a nonzero entry.
/// Sorted ascending, so shuffles are reproducible.
fn honest_candidates(
    tb: &Testbed,
    honest: usize,
    joined_at: &[u64],
    victim: Option<usize>,
) -> Vec<usize> {
    (0..tb.peer_count())
        .filter(|i| *i < honest || joined_at[*i] > 0)
        .filter(|i| tb.is_live(*i) && Some(*i) != victim)
        .collect()
}

/// Builds the bootstrap adjacency for the whole population: the chosen
/// topology over honest + spammer peers, plus the eclipse wiring (victim
/// cut out of the honest graph and ringed by censors) when requested.
fn build_adjacency(spec: &ScenarioSpec, n_hs: usize, attackers: usize) -> Vec<Vec<NodeId>> {
    let mut adjacency: Vec<Vec<NodeId>> = match spec.topology {
        TopologySpec::RandomRegular { degree } => topology::random_regular(n_hs, degree, spec.seed),
        TopologySpec::Ring => topology::ring(n_hs),
        TopologySpec::FullMesh => topology::full_mesh(n_hs),
    };
    if let Some(EclipseSpec { attackers: k }) = spec.eclipse {
        debug_assert_eq!(attackers, k);
        let victim = NodeId(0);
        // no honest peer may know the victim, or it would graft honest
        // links into the victim's mesh and break the eclipse
        for adj in adjacency.iter_mut() {
            adj.retain(|p| *p != victim);
        }
        let attacker_ids: Vec<NodeId> = (n_hs..n_hs + k).map(NodeId).collect();
        // lint:allow(panic-path, reason = "adjacency holds n_hs + k >= 1 rows; row 0 is the supernode under construction")
        adjacency[0] = attacker_ids.clone();
        for (j, _) in attacker_ids.iter().enumerate() {
            // each censor knows the victim and a couple of honest peers,
            // so it blends into the overlay
            let mut known = vec![victim];
            known.push(NodeId(1 + (j % (n_hs - 1))));
            known.push(NodeId(1 + ((j + 1) % (n_hs - 1))));
            adjacency.push(known);
        }
    } else {
        debug_assert_eq!(attackers, 0);
    }
    adjacency
}

/// Device classes assigned weighted round-robin over the honest
/// population; spammers and attackers run the default profile.
fn assign_costs(
    devices: &[DeviceClassSpec],
    honest: usize,
    n_total: usize,
    default: CostModel,
) -> Vec<CostModel> {
    let mut costs = vec![default; n_total];
    if devices.is_empty() {
        return costs;
    }
    let total_share: u32 = devices.iter().map(|d| d.share).sum();
    assert!(total_share > 0, "device shares must not all be zero");
    // expand the shares into a repeating assignment pattern:
    // shares [3, 1] → pattern [c0, c0, c0, c1]
    let pattern: Vec<CostModel> = devices
        .iter()
        .flat_map(|d| {
            std::iter::repeat_n(
                CostModel {
                    verify_proof_micros: d.verify_proof_micros,
                    ..default
                },
                d.share as usize,
            )
        })
        .collect();
    for (i, cost) in costs.iter_mut().take(honest).enumerate() {
        *cost = pattern[i % pattern.len()];
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrafficSpec;

    fn tiny(seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::baseline(8, seed);
        spec.traffic = TrafficSpec {
            publishers: 2,
            rounds: 2,
            start_ms: 8_000,
            interval_ms: 12_000,
        };
        spec.drain_ms = 20_000;
        spec
    }

    #[test]
    fn baseline_delivers() {
        let report = run_scenario(&tiny(7));
        assert_eq!(report.peers_initial, 8);
        assert_eq!(report.honest_published, 4);
        assert!(report.delivery_rate > 0.9, "rate {}", report.delivery_rate);
        assert!(report.propagation_p50_ms.is_some());
        assert_eq!(report.spam_attempted, 0);
        assert_eq!(report.members_start, 8);
        assert_eq!(report.members_end, 8);
    }

    #[test]
    fn engine_is_deterministic() {
        let a = run_scenario(&tiny(9)).to_json();
        let b = run_scenario(&tiny(9)).to_json();
        assert_eq!(a, b);
        let c = run_scenario(&tiny(10)).to_json();
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn eclipse_adjacency_cuts_victim_out_of_honest_graph() {
        let mut spec = ScenarioSpec::baseline(10, 3);
        spec.eclipse = Some(EclipseSpec { attackers: 4 });
        let adjacency = build_adjacency(&spec, 10, 4);
        assert_eq!(adjacency.len(), 14);
        // victim knows exactly the attackers
        assert_eq!(
            adjacency[0],
            vec![NodeId(10), NodeId(11), NodeId(12), NodeId(13)]
        );
        // no honest peer knows the victim
        for adj in &adjacency[1..10] {
            assert!(!adj.contains(&NodeId(0)));
        }
        // every attacker knows the victim
        for adj in &adjacency[10..] {
            assert!(adj.contains(&NodeId(0)));
        }
    }

    #[test]
    fn fault_free_runs_leave_the_resilience_section_null() {
        let report = run_scenario(&tiny(7));
        assert_eq!(report.resilience_faults_injected, None);
        assert_eq!(report.resilience_time_to_remesh_ms, None);
        assert_eq!(report.resilience_delivery_dip_depth, None);
    }

    #[test]
    fn partition_heal_dips_then_recovers() {
        let report = run_scenario(&crate::library::partition_heal(24, 3));
        assert_eq!(report.resilience_faults_injected, Some(1));
        let during = report
            .resilience_delivery_during_fault
            .expect("rounds land inside the partition window");
        let post = report
            .resilience_delivery_post_heal
            .expect("a round lands after the heal");
        // the acceptance claim: delivery visibly dips while the cut
        // holds and comes back once the partition heals
        assert!(during < 1.0, "during {during}");
        assert!(post >= 0.99, "post {post}");
        assert!(report.resilience_delivery_dip_depth.unwrap() > 0.0);
        assert!(report.resilience_messages_lost_partition.unwrap() > 0);
        assert!(
            report.resilience_time_to_remesh_ms.is_some(),
            "mesh must re-form after the heal"
        );
    }

    #[test]
    fn fault_storm_restarts_and_retries_resync_through_the_outage() {
        let report = run_scenario(&crate::library::fault_storm(16, 2));
        // 2 crash waves + 1 degradation + 1 contract outage
        assert_eq!(report.resilience_faults_injected, Some(4));
        assert_eq!(report.resilience_peers_restarted, Some(2));
        // the cold restore lands mid-outage, so the Merkle resync has to
        // retry until the contract returns
        assert!(report.resilience_resync_retries.unwrap() > 0);
        let post = report.resilience_delivery_post_heal.unwrap();
        assert!(post >= 0.99, "post-recovery delivery {post}");
    }

    #[test]
    fn fault_reports_are_thread_count_invariant() {
        let mut spec = crate::library::fault_storm(16, 11);
        spec.threads = 1;
        let t1 = run_scenario(&spec).to_json();
        spec.threads = 4;
        let t4 = run_scenario(&spec).to_json();
        assert_eq!(t1, t4, "fault injection must not break the merge order");
    }

    #[test]
    fn simulated_hour_soak_keeps_per_node_state_bounded() {
        use crate::spec::{ContractOutageEvent, DegradationEvent, PartitionEvent, RestartEvent};
        // an hour of continuous traffic with every fault class in play:
        // the long-horizon leak check for the nullifier window GC, the
        // verdict cache, the mcache and the publisher's own-message map
        let mut spec = ScenarioSpec::baseline(8, 13);
        spec.name = "hour_soak".to_string();
        spec.traffic = TrafficSpec {
            publishers: 2,
            rounds: 30,
            start_ms: 10_000,
            interval_ms: 120_000,
        };
        spec.faults.restarts = vec![
            RestartEvent {
                at_ms: 600_000,
                peers: 1,
                downtime_ms: 10_000,
                warm: true,
            },
            RestartEvent {
                at_ms: 1_800_000,
                peers: 1,
                downtime_ms: 10_000,
                warm: false,
            },
        ];
        spec.faults.partitions = vec![PartitionEvent {
            at_ms: 1_200_000,
            heal_after_ms: 20_000,
            minority_fraction: 0.3,
        }];
        spec.faults.degradations = vec![DegradationEvent {
            at_ms: 2_400_000,
            duration_ms: 30_000,
            extra_loss: 0.1,
            extra_latency_ms: 50,
        }];
        // covers the cold restore at 1_810_000, forcing resync retries
        spec.faults.contract_outages = vec![ContractOutageEvent {
            at_ms: 1_795_000,
            duration_ms: 30_000,
        }];
        spec.drain_ms = 120_000;
        let (report, tb) = run_scenario_detailed(&spec);
        assert!(report.duration_ms >= 3_600_000);
        assert!(report.resilience_resync_retries.unwrap() > 0);
        assert!(report.delivery_rate > 0.9, "rate {}", report.delivery_rate);
        for i in 0..tb.peer_count() {
            if !tb.is_live(i) {
                continue;
            }
            let node = tb.net.node(NodeId(i));
            // epoch-window GC: far below one entry per message ever sent
            assert!(
                node.validator().nullifier_map_bytes() < 16_384,
                "peer {i}: nullifier map grew unbounded"
            );
            let gs = node.relay().gossipsub();
            assert!(gs.mcache_len() < 200, "peer {i}: mcache leaks");
            assert!(
                gs.own_published_len() < 200,
                "peer {i}: own_published leaks"
            );
            assert!(gs.seen_len() < 2_000, "peer {i}: seen cache leaks");
        }
    }

    #[test]
    fn device_mix_assignment_covers_honest_peers() {
        let devices = [
            DeviceClassSpec {
                name: "phone",
                verify_proof_micros: 30_000,
                share: 3,
            },
            DeviceClassSpec {
                name: "server",
                verify_proof_micros: 1_000,
                share: 1,
            },
        ];
        let default = CostModel::default();
        let costs = assign_costs(&devices, 8, 10, default);
        let phones = costs[..8]
            .iter()
            .filter(|c| c.verify_proof_micros == 30_000)
            .count();
        let servers = costs[..8]
            .iter()
            .filter(|c| c.verify_proof_micros == 1_000)
            .count();
        assert_eq!(phones + servers, 8);
        assert!(phones > servers);
        // non-honest tail untouched
        assert_eq!(costs[8].verify_proof_micros, default.verify_proof_micros);
        assert_eq!(costs[9].verify_proof_micros, default.verify_proof_micros);
    }
}
