//! The scenario executor: turns a [`ScenarioSpec`] into a running world
//! and distills the run into a [`ScenarioReport`].
//!
//! Determinism contract: every random choice — topology, link latencies,
//! identity material, publisher draws, crash victims, join bootstraps —
//! derives from `spec.seed`, and simulated time is the only clock. Same
//! spec, same seed ⇒ byte-identical report (the
//! `tests/scenario_determinism.rs` suite holds the engine to this).

use crate::attribution::{attribute, PooledObservation};
use crate::report::ScenarioReport;
use crate::spec::{
    ChurnAction, DeviceClassSpec, EclipseSpec, LatencySpec, ScenarioSpec, TopologySpec,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use waku_rln_relay::{CostModel, Testbed, TestbedConfig};
use wakurln_gossipsub::MessageId;
use wakurln_netsim::{topology, NodeId, QuiescenceOutcome};

/// A newly joined peer needs its registration mined, synced, and a mesh
/// formed before it can be expected to receive traffic; publishes earlier
/// than this after its join don't count it as an eligible receiver.
const JOIN_SYNC_GRACE_MS: u64 = 20_000;

/// What the engine remembers about one honest publish.
struct PublishRecord {
    payload: Vec<u8>,
    /// Content-derived wire id — the key observer tapes are pooled by.
    id: MessageId,
    publisher: usize,
    at_ms: u64,
}

/// One timeline entry (churn before spam before traffic at equal
/// timestamps — the order adversaries would pick).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Churn(usize),
    Spam,
    Traffic(usize),
}

/// A progress snapshot emitted while a scenario advances (one per
/// lock-step slice). Consumers decide the printing cadence; emitting a
/// snapshot never influences the simulation, so progress-observed runs
/// stay byte-identical to silent ones.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Simulated time reached, milliseconds.
    pub sim_ms: u64,
    /// Total simulated time this run will cover, milliseconds.
    pub total_ms: u64,
    /// Events dispatched to node callbacks so far.
    pub events_dispatched: u64,
    /// Wall-clock time spent so far, milliseconds.
    pub wall_ms: u64,
}

/// Runs a scenario to completion and reports.
///
/// # Panics
///
/// Panics when the spec is internally inconsistent (see
/// [`ScenarioSpec::validate`]).
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioReport {
    run_scenario_detailed(spec).0
}

/// [`run_scenario`] with a progress observer: `observe` fires once per
/// lock-step slice (see [`Progress`]) — the hook behind `simctl run
/// --progress`, so hour-long 10k-node runs are not silent.
pub fn run_scenario_with_progress(
    spec: &ScenarioSpec,
    mut observe: impl FnMut(&Progress),
) -> ScenarioReport {
    run_scenario_impl(spec, Some(&mut observe)).0
}

/// [`run_scenario`], additionally handing back the finished [`Testbed`]
/// for assertions the report does not cover (ports of hand-wired tests
/// use this to keep their original fine-grained checks).
pub fn run_scenario_detailed(spec: &ScenarioSpec) -> (ScenarioReport, Testbed) {
    run_scenario_impl(spec, None)
}

fn run_scenario_impl(
    spec: &ScenarioSpec,
    mut observe: Option<&mut dyn FnMut(&Progress)>,
) -> (ScenarioReport, Testbed) {
    spec.validate();
    let depth = spec.effective_tree_depth();
    let honest = spec.honest;
    let spammers = spec.spam.map(|s| s.spammers).unwrap_or(0);
    let attackers = spec.eclipse.map(|e| e.attackers).unwrap_or(0);
    let n_initial = spec.initial_peers();
    let victim: Option<usize> = spec.eclipse.map(|_| 0);

    let (latency_min, latency_max) = match spec.latency {
        LatencySpec::Constant { ms } => (ms, ms),
        LatencySpec::Uniform { min_ms, max_ms } => (min_ms, max_ms),
    };
    let mut config = TestbedConfig {
        n_peers: n_initial,
        tree_depth: depth,
        epoch: spec.epoch,
        degree: match spec.topology {
            TopologySpec::RandomRegular { degree } => degree,
            _ => 6,
        },
        seed: spec.seed,
        latency_ms: (latency_min, latency_max),
        pipeline: spec.pipeline,
        threads: spec.threads,
        ..TestbedConfig::default()
    };
    // the source-anonymity countermeasure: publishers hold first-hop
    // copies back for per-target jitter drawn from their own RNG stream
    config.gossip.publish_jitter_ms = spec.publish_jitter_ms;

    let adjacency = build_adjacency(spec, honest + spammers, attackers);
    let costs = assign_costs(&spec.devices, honest, n_initial, config.cost);
    let mut tb = Testbed::build_custom(config, adjacency, |i| costs[i]);
    if spec.loss > 0.0 {
        tb.net.set_loss_probability(spec.loss);
    }
    for a in 0..attackers {
        tb.set_censor(honest + spammers + a, true);
    }
    let members_start = tb.active_members() as u64;

    // engine-side randomness, independent of the testbed's RNG stream
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x05ca_1ab1_e0dd_ba11);

    // surveillance: the adversary's colluding observers, drawn
    // deterministically from the initial honest population (minus the
    // eclipse victim — an eclipsed tap sees nothing anyway). Observers
    // stay protocol-honest but are kept out of the publisher pool: the
    // adversary does not publish the traffic it wants to attribute.
    let observers: Vec<usize> = match spec.surveillance {
        None => Vec::new(),
        Some(_) => {
            let mut pool: Vec<usize> = (0..honest).filter(|i| Some(*i) != victim).collect();
            pool.shuffle(&mut rng);
            pool.truncate(spec.observer_count());
            pool.sort_unstable();
            for &peer in &pool {
                tb.set_observer(peer, true);
            }
            pool
        }
    };
    let observer_set: HashSet<usize> = observers.iter().copied().collect();

    // assemble the timeline
    let mut events: Vec<(u64, EventKind)> = Vec::new();
    for (i, e) in spec.churn.iter().enumerate() {
        events.push((e.at_ms, EventKind::Churn(i)));
    }
    if let Some(s) = spec.spam {
        events.push((s.at_ms, EventKind::Spam));
    }
    for r in 0..spec.traffic.rounds {
        events.push((
            spec.traffic.start_ms + spec.traffic.interval_ms * r as u64,
            EventKind::Traffic(r),
        ));
    }
    events.sort();

    // run it
    let started_wall = Instant::now();
    let end_ms = spec.duration_ms();
    let advance =
        |tb: &mut Testbed, to_ms: u64, observe: &mut Option<&mut dyn FnMut(&Progress)>| {
            // slice at the engine level so a progress observer sees every
            // lock-step boundary; tb.run slices identically internally, so
            // the world evolves the same with or without an observer
            while tb.net.now() < to_ms {
                let next = (tb.net.now() + spec.slice_ms).min(to_ms);
                tb.run(next - tb.net.now(), spec.slice_ms);
                if let Some(observe) = observe.as_deref_mut() {
                    observe(&Progress {
                        sim_ms: tb.net.now(),
                        total_ms: end_ms,
                        events_dispatched: tb.net.events_dispatched(),
                        wall_ms: started_wall.elapsed().as_millis() as u64,
                    });
                }
            }
        };
    let mut publishes: Vec<PublishRecord> = Vec::new();
    let mut spam_payloads: Vec<(usize, Vec<u8>, u64)> = Vec::new();
    let mut honest_publish_failures = 0u64;
    let mut spam_attempted = 0u64;
    let mut spam_send_failures = 0u64;
    let mut peers_crashed = 0u64;
    let mut peers_joined = 0u64;
    // join time per peer id; initial peers joined at 0
    let mut joined_at: Vec<u64> = vec![0; n_initial];

    for (at_ms, kind) in events {
        if at_ms > tb.net.now() {
            advance(&mut tb, at_ms, &mut observe);
        }
        match kind {
            EventKind::Churn(i) => match spec.churn[i].action {
                ChurnAction::Crash { peers } => {
                    let mut candidates = honest_candidates(&tb, honest, &joined_at, victim);
                    candidates.shuffle(&mut rng);
                    for p in candidates.into_iter().take(peers) {
                        if tb.crash_peer(p) {
                            peers_crashed += 1;
                        }
                    }
                }
                ChurnAction::Join { peers } => {
                    for _ in 0..peers {
                        let mut candidates = honest_candidates(&tb, honest, &joined_at, victim);
                        candidates.shuffle(&mut rng);
                        candidates.truncate(3);
                        if candidates.is_empty() {
                            continue;
                        }
                        let id = tb.add_peer(&candidates);
                        debug_assert_eq!(id, joined_at.len());
                        joined_at.push(at_ms);
                        peers_joined += 1;
                    }
                }
            },
            EventKind::Spam => {
                let s = spec.spam.expect("spam event implies spam spec");
                for spammer in honest..honest + s.spammers {
                    for k in 0..s.burst {
                        spam_attempted += 1;
                        let payload = format!("spam-{spammer}-{k}").into_bytes();
                        match tb.publish_spam(spammer, &payload) {
                            Ok(_) => spam_payloads.push((spammer, payload, tb.net.now())),
                            Err(_) => spam_send_failures += 1,
                        }
                    }
                }
            }
            EventKind::Traffic(round) => {
                let mut candidates = honest_candidates(&tb, honest, &joined_at, victim);
                // only synced members can generate proofs, and the
                // surveillance adversary's taps never publish
                candidates.retain(|p| tb.is_member(*p) && !observer_set.contains(p));
                candidates.shuffle(&mut rng);
                for p in candidates.into_iter().take(spec.traffic.publishers) {
                    let payload = format!("r{round}-p{p}").into_bytes();
                    match tb.publish(p, &payload) {
                        Ok(id) => publishes.push(PublishRecord {
                            payload,
                            id,
                            publisher: p,
                            at_ms: tb.net.now(),
                        }),
                        Err(_) => honest_publish_failures += 1,
                    }
                }
            }
        }
    }
    if end_ms > tb.net.now() {
        advance(&mut tb, end_ms, &mut observe);
    }
    // classify the drain: did the network actually settle, or did the
    // hard stop cut it off with work still queued? (Live meshes keep
    // heartbeat timers armed forever, so pending > 0 is the norm — the
    // report records it instead of swallowing it.)
    let drain = tb.run_to_quiescence(end_ms, spec.slice_ms);
    let (drain_quiescent, drain_pending_events) = match drain {
        QuiescenceOutcome::Quiescent { .. } => (true, 0),
        QuiescenceOutcome::HardStop { pending_events, .. } => (false, pending_events),
    };

    // distill
    let n_total = tb.peer_count();
    let is_censor = |i: usize| i >= honest + spammers && i < n_initial;
    // one eligibility rule for every delivery metric (honest and spam):
    // the receiver is alive at the end, isn't the sender or a censor, and
    // had joined (plus sync grace) before the publish
    let eligible_receiver = |i: usize, sender: usize, published_at: u64| {
        i != sender
            && !is_censor(i)
            && tb.is_live(i)
            && (joined_at[i] == 0 || joined_at[i] + JOIN_SYNC_GRACE_MS <= published_at)
    };
    let mut arrivals: HashMap<Vec<u8>, HashMap<usize, u64>> = HashMap::new();
    for i in 0..n_total {
        for (payload, at) in tb.net.node(NodeId(i)).app_deliveries() {
            arrivals.entry(payload).or_default().entry(i).or_insert(at);
        }
    }

    let mut pairs_total = 0u64;
    let mut pairs_delivered = 0u64;
    let mut victim_pairs = 0u64;
    let mut victim_delivered = 0u64;
    let mut samples: Vec<f64> = Vec::new();
    for publish in &publishes {
        let delivered_to = arrivals.get(&publish.payload);
        for i in 0..n_total {
            if !eligible_receiver(i, publish.publisher, publish.at_ms) {
                continue;
            }
            pairs_total += 1;
            let arrival = delivered_to.and_then(|m| m.get(&i));
            if let Some(at) = arrival {
                pairs_delivered += 1;
                samples.push(at.saturating_sub(publish.at_ms) as f64);
            }
            if Some(i) == victim {
                victim_pairs += 1;
                if arrival.is_some() {
                    victim_delivered += 1;
                }
            }
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let percentile = |p: f64| -> Option<f64> {
        if samples.is_empty() {
            None
        } else {
            let rank = ((samples.len() - 1) as f64 * p).round() as usize;
            Some(samples[rank])
        }
    };

    let mut spam_delivered_majority = 0u64;
    for (spammer, payload, sent_at) in &spam_payloads {
        let eligible: Vec<usize> = (0..n_total)
            .filter(|i| eligible_receiver(*i, *spammer, *sent_at))
            .collect();
        let got = arrivals
            .get(payload)
            .map(|m| eligible.iter().filter(|i| m.contains_key(i)).count())
            .unwrap_or(0);
        if got * 2 >= eligible.len() && !eligible.is_empty() {
            spam_delivered_majority += 1;
        }
    }
    let spammers_slashed = (honest..honest + spammers)
        .filter(|s| !tb.is_member(*s))
        .count() as u64;

    let mut stats_sum = waku_rln_relay::ValidationStats::default();
    let mut nullifier_max = 0u64;
    let mut nullifier_sum = 0u64;
    let mut nullifier_live = 0u64;
    let mut tree_max = 0u64;
    let mut bytes_max = 0u64;
    let mut bytes_sum = 0u64;
    let mut cpu_max = 0u64;
    let mut cpu_sum = 0u64;
    for i in 0..n_total {
        let node = tb.net.node(NodeId(i));
        let s = node.validator().stats();
        stats_sum.valid += s.valid;
        stats_sum.malformed += s.malformed;
        stats_sum.invalid_proof += s.invalid_proof;
        stats_sum.epoch_out_of_window += s.epoch_out_of_window;
        stats_sum.duplicates += s.duplicates;
        stats_sum.spam_detected += s.spam_detected;
        if tb.is_live(i) {
            let nb = node.validator().nullifier_map_bytes() as u64;
            nullifier_max = nullifier_max.max(nb);
            nullifier_sum += nb;
            nullifier_live += 1;
            tree_max = tree_max.max(node.membership_storage_bytes() as u64);
        }
        let b = tb.net.metrics().node_bytes_sent(i as u64);
        bytes_max = bytes_max.max(b);
        bytes_sum += b;
        let c = tb.net.metrics().node_counter(i as u64, "cpu_micros");
        cpu_max = cpu_max.max(c);
        cpu_sum += c;
    }

    // the adversary's post-run analysis: pool every observer tape by
    // message id and run the attribution estimators over each honest
    // publish. Pure post-processing over per-node state in fixed order —
    // thread-count independent like everything else in the report.
    let mut anonymity_observers = None;
    let mut anonymity_observations = None;
    let mut anonymity_messages_observed = None;
    let mut anonymity_first_spy_precision_at1 = None;
    let mut anonymity_centrality_precision_at1 = None;
    let mut anonymity_set_mean_size = None;
    let mut anonymity_arrival_entropy_bits = None;
    if spec.surveillance.is_some() {
        let mut pooled: HashMap<MessageId, Vec<PooledObservation>> = HashMap::new();
        let mut observations_total = 0u64;
        for &peer in &observers {
            for obs in tb.observations(peer) {
                observations_total += 1;
                pooled.entry(obs.id).or_default().push(PooledObservation {
                    observer: peer as u64,
                    from: obs.from.as_u64(),
                    at_ms: obs.at_ms,
                });
            }
        }
        let mut observed = 0u64;
        let mut first_spy_hits = 0u64;
        let mut centrality_hits = 0u64;
        let mut set_size_sum = 0u64;
        let mut entropy_sum = 0.0f64;
        for publish in &publishes {
            let Some(verdict) = pooled.get(&publish.id).and_then(|r| attribute(r)) else {
                continue;
            };
            observed += 1;
            if verdict.first_spy_guess == publish.publisher as u64 {
                first_spy_hits += 1;
            }
            if verdict.centrality_guess == publish.publisher as u64 {
                centrality_hits += 1;
            }
            set_size_sum += verdict.anonymity_set_size as u64;
            entropy_sum += verdict.arrival_entropy_bits;
        }
        anonymity_observers = Some(observers.len() as u64);
        anonymity_observations = Some(observations_total);
        anonymity_messages_observed = Some(observed);
        if observed > 0 {
            anonymity_first_spy_precision_at1 = Some(first_spy_hits as f64 / observed as f64);
            anonymity_centrality_precision_at1 = Some(centrality_hits as f64 / observed as f64);
            anonymity_set_mean_size = Some(set_size_sum as f64 / observed as f64);
            anonymity_arrival_entropy_bits = Some(entropy_sum / observed as f64);
        }
    }

    let metrics = tb.net.metrics();
    let report = ScenarioReport {
        scenario: spec.name.clone(),
        seed: spec.seed,
        peers_initial: n_initial as u64,
        peers_final_live: tb.live_peer_count() as u64,
        honest: honest as u64,
        spammers: spammers as u64,
        eclipse_attackers: attackers as u64,
        duration_ms: end_ms,
        tree_depth: depth as u64,
        honest_published: publishes.len() as u64,
        honest_publish_failures,
        delivery_rate: pairs_delivered as f64 / pairs_total as f64,
        propagation_p50_ms: percentile(0.50),
        propagation_p99_ms: percentile(0.99),
        propagation_max_ms: percentile(1.0),
        spam_attempted,
        spam_send_failures,
        spam_delivered_majority,
        spam_detections: tb.total_spam_detections(),
        spammers_slashed,
        members_start,
        members_end: tb.active_members() as u64,
        peers_crashed,
        peers_joined,
        messages_sent: metrics.counter("messages_sent"),
        messages_delivered: metrics.counter("messages_delivered"),
        messages_to_removed_peer: metrics.counter("messages_to_removed_peer"),
        bytes_sent: metrics.counter("bytes_sent"),
        bytes_sent_mean_per_node: bytes_sum as f64 / n_total as f64,
        bytes_sent_max_node: bytes_max,
        cpu_micros_mean_per_node: cpu_sum as f64 / n_total as f64,
        cpu_micros_max_node: cpu_max,
        valid_total: stats_sum.valid,
        invalid_proof_total: stats_sum.invalid_proof,
        epoch_out_of_window_total: stats_sum.epoch_out_of_window,
        duplicates_total: stats_sum.duplicates,
        malformed_total: stats_sum.malformed,
        nullifier_map_max_bytes: nullifier_max,
        nullifier_map_mean_bytes: nullifier_sum as f64 / nullifier_live.max(1) as f64,
        membership_tree_max_bytes: tree_max,
        drain_quiescent,
        drain_pending_events,
        eclipse_victim_delivery_rate: spec
            .eclipse
            .map(|_| victim_delivered as f64 / victim_pairs.max(1) as f64),
        anonymity_observers,
        anonymity_observations,
        anonymity_messages_observed,
        anonymity_first_spy_precision_at1,
        anonymity_centrality_precision_at1,
        anonymity_set_mean_size,
        anonymity_arrival_entropy_bits,
    };
    (report, tb)
}

/// Live honest peers (initial honest plus joiners), excluding the
/// eclipse victim — the pool traffic, crash and bootstrap draws come
/// from. `joined_at[i]` is peer `i`'s join time (0 for the initial
/// population), so joiners are exactly the peers with a nonzero entry.
/// Sorted ascending, so shuffles are reproducible.
fn honest_candidates(
    tb: &Testbed,
    honest: usize,
    joined_at: &[u64],
    victim: Option<usize>,
) -> Vec<usize> {
    (0..tb.peer_count())
        .filter(|i| *i < honest || joined_at[*i] > 0)
        .filter(|i| tb.is_live(*i) && Some(*i) != victim)
        .collect()
}

/// Builds the bootstrap adjacency for the whole population: the chosen
/// topology over honest + spammer peers, plus the eclipse wiring (victim
/// cut out of the honest graph and ringed by censors) when requested.
fn build_adjacency(spec: &ScenarioSpec, n_hs: usize, attackers: usize) -> Vec<Vec<NodeId>> {
    let mut adjacency: Vec<Vec<NodeId>> = match spec.topology {
        TopologySpec::RandomRegular { degree } => topology::random_regular(n_hs, degree, spec.seed),
        TopologySpec::Ring => topology::ring(n_hs),
        TopologySpec::FullMesh => topology::full_mesh(n_hs),
    };
    if let Some(EclipseSpec { attackers: k }) = spec.eclipse {
        debug_assert_eq!(attackers, k);
        let victim = NodeId(0);
        // no honest peer may know the victim, or it would graft honest
        // links into the victim's mesh and break the eclipse
        for adj in adjacency.iter_mut() {
            adj.retain(|p| *p != victim);
        }
        let attacker_ids: Vec<NodeId> = (n_hs..n_hs + k).map(NodeId).collect();
        adjacency[0] = attacker_ids.clone();
        for (j, _) in attacker_ids.iter().enumerate() {
            // each censor knows the victim and a couple of honest peers,
            // so it blends into the overlay
            let mut known = vec![victim];
            known.push(NodeId(1 + (j % (n_hs - 1))));
            known.push(NodeId(1 + ((j + 1) % (n_hs - 1))));
            adjacency.push(known);
        }
    } else {
        debug_assert_eq!(attackers, 0);
    }
    adjacency
}

/// Device classes assigned weighted round-robin over the honest
/// population; spammers and attackers run the default profile.
fn assign_costs(
    devices: &[DeviceClassSpec],
    honest: usize,
    n_total: usize,
    default: CostModel,
) -> Vec<CostModel> {
    let mut costs = vec![default; n_total];
    if devices.is_empty() {
        return costs;
    }
    let total_share: u32 = devices.iter().map(|d| d.share).sum();
    assert!(total_share > 0, "device shares must not all be zero");
    // expand the shares into a repeating assignment pattern:
    // shares [3, 1] → pattern [c0, c0, c0, c1]
    let pattern: Vec<CostModel> = devices
        .iter()
        .flat_map(|d| {
            std::iter::repeat_n(
                CostModel {
                    verify_proof_micros: d.verify_proof_micros,
                    ..default
                },
                d.share as usize,
            )
        })
        .collect();
    for (i, cost) in costs.iter_mut().take(honest).enumerate() {
        *cost = pattern[i % pattern.len()];
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrafficSpec;

    fn tiny(seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::baseline(8, seed);
        spec.traffic = TrafficSpec {
            publishers: 2,
            rounds: 2,
            start_ms: 8_000,
            interval_ms: 12_000,
        };
        spec.drain_ms = 20_000;
        spec
    }

    #[test]
    fn baseline_delivers() {
        let report = run_scenario(&tiny(7));
        assert_eq!(report.peers_initial, 8);
        assert_eq!(report.honest_published, 4);
        assert!(report.delivery_rate > 0.9, "rate {}", report.delivery_rate);
        assert!(report.propagation_p50_ms.is_some());
        assert_eq!(report.spam_attempted, 0);
        assert_eq!(report.members_start, 8);
        assert_eq!(report.members_end, 8);
    }

    #[test]
    fn engine_is_deterministic() {
        let a = run_scenario(&tiny(9)).to_json();
        let b = run_scenario(&tiny(9)).to_json();
        assert_eq!(a, b);
        let c = run_scenario(&tiny(10)).to_json();
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn eclipse_adjacency_cuts_victim_out_of_honest_graph() {
        let mut spec = ScenarioSpec::baseline(10, 3);
        spec.eclipse = Some(EclipseSpec { attackers: 4 });
        let adjacency = build_adjacency(&spec, 10, 4);
        assert_eq!(adjacency.len(), 14);
        // victim knows exactly the attackers
        assert_eq!(
            adjacency[0],
            vec![NodeId(10), NodeId(11), NodeId(12), NodeId(13)]
        );
        // no honest peer knows the victim
        for adj in &adjacency[1..10] {
            assert!(!adj.contains(&NodeId(0)));
        }
        // every attacker knows the victim
        for adj in &adjacency[10..] {
            assert!(adj.contains(&NodeId(0)));
        }
    }

    #[test]
    fn device_mix_assignment_covers_honest_peers() {
        let devices = [
            DeviceClassSpec {
                name: "phone",
                verify_proof_micros: 30_000,
                share: 3,
            },
            DeviceClassSpec {
                name: "server",
                verify_proof_micros: 1_000,
                share: 1,
            },
        ];
        let default = CostModel::default();
        let costs = assign_costs(&devices, 8, 10, default);
        let phones = costs[..8]
            .iter()
            .filter(|c| c.verify_proof_micros == 30_000)
            .count();
        let servers = costs[..8]
            .iter()
            .filter(|c| c.verify_proof_micros == 1_000)
            .count();
        assert_eq!(phones + servers, 8);
        assert!(phones > servers);
        // non-honest tail untouched
        assert_eq!(costs[8].verify_proof_micros, default.verify_proof_micros);
        assert_eq!(costs[9].verify_proof_micros, default.verify_proof_micros);
    }
}
