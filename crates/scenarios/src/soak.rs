//! The simulated-days soak harness: long-horizon leak detection via
//! engine checkpoint/restore and streaming report deltas.
//!
//! Scenario runs measure protocol behaviour over minutes of simulated
//! time; the soak mode instead drives the full testbed for simulated
//! *days* of continuous honest traffic and asserts that every piece of
//! per-node state the paper requires to be windowed actually stays
//! bounded over horizons ≥ 100× longer than any scenario: the RLN
//! nullifier map (§III epoch-window GC), the pipeline's proof-verdict
//! cache, the gossipsub `mcache`, `seen` and `own_published` caches,
//! and the peer-score table.
//!
//! Two design points keep day-scale runs honest:
//!
//! * **Streaming deltas.** The run is cut into segments; after each one
//!   the harness emits a [`SoakDelta`] — per-segment counters plus the
//!   *current* size of every bounded structure — and drains the
//!   delivery tapes, so the harness itself holds O(segment) state, not
//!   O(run). Deltas are checked against [`SoakBounds`] as they stream.
//!
//! * **Checkpoint/restore.** Every `checkpoint_every` segments the
//!   world is checkpointed by deep [`Clone`] (the testbed's whole state:
//!   network, queue, chain, RNG streams), the live world advances one
//!   segment, and the restored checkpoint replays the same segment. The
//!   two must reach byte-identical [fingerprints](SoakWorld::fingerprint)
//!   — the determinism contract that makes long runs resumable and
//!   failures replayable from the nearest checkpoint.
//!
//! The `simctl soak` subcommand drives this from the command line
//! (`--sim-hours`, `--checkpoint-every`); the module tests, the
//! hard-stop replay test in `tests/scheduler_determinism.rs` and the CI
//! soak smoke pin the invariants.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;
use waku_rln_relay::{PipelineConfig, Testbed, TestbedConfig};
use wakurln_netsim::NodeId;

/// Configuration for one soak run.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Number of peers in the world.
    pub nodes: usize,
    /// Determinism seed (topology, identities, traffic draws).
    pub seed: u64,
    /// Scheduler worker threads (`0` = auto; any value is
    /// byte-identical).
    pub threads: usize,
    /// Total simulated time, milliseconds.
    pub total_ms: u64,
    /// Streaming-report segment length, milliseconds. Deltas, bounds
    /// checks and delivery-tape drains happen at segment boundaries.
    pub segment_ms: u64,
    /// Checkpoint/restore cadence in segments (`0` disables the
    /// byte-identity replay check).
    pub checkpoint_every: u64,
    /// Honest publishes attempted per traffic tick.
    pub publishers: usize,
    /// Traffic tick interval, milliseconds.
    pub publish_interval_ms: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            nodes: 8,
            seed: 2022,
            threads: 1,
            total_ms: 24 * 3_600_000,
            segment_ms: 3_600_000,
            checkpoint_every: 4,
            publishers: 2,
            publish_interval_ms: 120_000,
        }
    }
}

impl SoakConfig {
    /// Number of whole segments the run covers (the tail shorter than a
    /// segment is dropped — bounds are only ever checked at segment
    /// boundaries).
    pub fn segments(&self) -> u64 {
        self.total_ms / self.segment_ms
    }
}

/// Upper bounds the soak holds per-node state to, checked after every
/// segment. Defaults are sized for the default traffic load with ample
/// headroom: a leak grows linearly with simulated time, so any cache
/// missing its GC blows through these within a few simulated hours.
#[derive(Clone, Copy, Debug)]
pub struct SoakBounds {
    /// `RlnValidator` nullifier-map storage per node, bytes.
    pub nullifier_map_bytes: u64,
    /// Pipeline proof-verdict cache entries per node.
    pub verdict_cache: u64,
    /// Gossipsub `mcache` entries per node.
    pub mcache: u64,
    /// Publisher-side `own_published` jitter-hold set entries per node.
    pub own_published: u64,
    /// Gossipsub `seen` first-delivery cache entries per node.
    pub seen: u64,
    /// Peer-score table entries per node (must track the peer set, not
    /// traffic volume).
    pub score_table: u64,
}

impl Default for SoakBounds {
    fn default() -> SoakBounds {
        SoakBounds {
            nullifier_map_bytes: 16_384,
            verdict_cache: 8_192,
            mcache: 200,
            own_published: 200,
            seen: 2_000,
            score_table: 10_000,
        }
    }
}

/// One streaming report entry: what changed during the segment, and how
/// large every bounded structure currently is (maximum over live
/// nodes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoakDelta {
    /// Segment index, starting at 0.
    pub segment: u64,
    /// Simulated time at the end of the segment, milliseconds.
    pub sim_ms: u64,
    /// Publishes attempted during the segment.
    pub published: u64,
    /// Publish attempts refused (per-epoch rate limit, not yet synced).
    pub publish_failures: u64,
    /// Application-level deliveries drained from the tapes this segment.
    pub deliveries: u64,
    /// Node-callback events dispatched during the segment.
    pub events: u64,
    /// Max live-node nullifier-map bytes at the boundary.
    pub nullifier_map_max_bytes: u64,
    /// Max live-node verdict-cache entries (0 when the pipeline is off).
    pub verdict_cache_max: u64,
    /// Max live-node `mcache` entries.
    pub mcache_max: u64,
    /// Max live-node `own_published` entries.
    pub own_published_max: u64,
    /// Max live-node `seen` entries.
    pub seen_max: u64,
    /// Max live-node peer-score-table entries.
    pub score_table_max: u64,
    /// Lowest peer score held by any live node about any tracked peer.
    pub score_min: f64,
    /// Highest peer score held by any live node about any tracked peer.
    pub score_max: f64,
    /// Whether this segment's checkpoint replay was verified
    /// byte-identical (false on segments without a checkpoint).
    pub checkpoint_verified: bool,
}

impl SoakDelta {
    /// One JSON object on one line (the streaming wire format `simctl
    /// soak` emits — one line per segment, parseable with any JSONL
    /// reader). Field order is fixed; floats use Rust's shortest
    /// round-trip formatting, so equal runs emit byte-identical lines.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"segment\":{},\"sim_ms\":{},\"published\":{},\"publish_failures\":{},\
             \"deliveries\":{},\"events\":{},\"nullifier_map_max_bytes\":{},\
             \"verdict_cache_max\":{},\"mcache_max\":{},\"own_published_max\":{},\
             \"seen_max\":{},\"score_table_max\":{},\"score_min\":{:?},\
             \"score_max\":{:?},\"checkpoint_verified\":{}}}",
            self.segment,
            self.sim_ms,
            self.published,
            self.publish_failures,
            self.deliveries,
            self.events,
            self.nullifier_map_max_bytes,
            self.verdict_cache_max,
            self.mcache_max,
            self.own_published_max,
            self.seen_max,
            self.score_table_max,
            self.score_min,
            self.score_max,
            self.checkpoint_verified,
        )
    }

    /// Checks the delta against `bounds`, returning every violated
    /// bound as a human-readable string.
    pub fn check(&self, bounds: &SoakBounds) -> Vec<String> {
        let mut violations = Vec::new();
        let mut check = |what: &str, value: u64, bound: u64| {
            if value >= bound {
                violations.push(format!(
                    "segment {}: {what} reached {value} (bound {bound})",
                    self.segment
                ));
            }
        };
        check(
            "nullifier_map_bytes",
            self.nullifier_map_max_bytes,
            bounds.nullifier_map_bytes,
        );
        check(
            "verdict_cache",
            self.verdict_cache_max,
            bounds.verdict_cache,
        );
        check("mcache", self.mcache_max, bounds.mcache);
        check(
            "own_published",
            self.own_published_max,
            bounds.own_published,
        );
        check("seen", self.seen_max, bounds.seen);
        check("score_table", self.score_table_max, bounds.score_table);
        if !self.score_min.is_finite() || !self.score_max.is_finite() {
            violations.push(format!(
                "segment {}: peer score diverged ({} ..= {})",
                self.segment, self.score_min, self.score_max
            ));
        }
        violations
    }
}

/// The final outcome of a soak run.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// Simulated time covered, milliseconds.
    pub sim_ms: u64,
    /// Segments completed.
    pub segments: u64,
    /// Total publishes attempted.
    pub published: u64,
    /// Total application-level deliveries drained.
    pub deliveries: u64,
    /// Checkpoints whose restored replay matched the live run
    /// byte-for-byte.
    pub checkpoints_verified: u64,
    /// Every bound violation observed, in segment order (empty on a
    /// clean run).
    pub violations: Vec<String>,
    /// Fingerprint of the final world state (two runs of the same
    /// config must end on the same string).
    pub final_fingerprint: String,
}

impl SoakOutcome {
    /// True when every bound held and every checkpoint replay matched.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The running world: the full testbed plus the traffic generator's
/// state. `Clone` is the checkpoint operation — everything that
/// influences the future (network queue, chain, RNG streams, traffic
/// cursor) is deep-copied, so a clone replays identically.
#[derive(Clone)]
pub struct SoakWorld {
    tb: Testbed,
    rng: StdRng,
    next_publish_ms: u64,
    publishers: usize,
    publish_interval_ms: u64,
    published: u64,
    publish_failures: u64,
    deliveries_drained: u64,
}

/// Lock-step slice used for soak advancement (coarser than scenario
/// runs — soak measures state bounds, not propagation latency).
const SOAK_SLICE_MS: u64 = 1_000;

impl SoakWorld {
    /// Builds the world: a testbed with the batching pipeline enabled
    /// (so the verdict cache is exercised) and meshes warmed up for 10
    /// simulated seconds.
    pub fn new(config: &SoakConfig) -> SoakWorld {
        assert!(config.nodes >= 2, "soak needs at least two peers");
        assert!(config.segment_ms > 0, "segment must be positive");
        let defaults = TestbedConfig::default();
        let tb_config = TestbedConfig {
            n_peers: config.nodes,
            seed: config.seed,
            threads: config.threads,
            pipeline: Some(PipelineConfig::default()),
            degree: defaults.degree.min(config.nodes - 1),
            ..defaults
        };
        let mut world = SoakWorld {
            tb: Testbed::build(tb_config),
            rng: StdRng::seed_from_u64(config.seed ^ SOAK_RNG_TAG),
            next_publish_ms: 10_000,
            publishers: config.publishers,
            publish_interval_ms: config.publish_interval_ms,
            published: 0,
            publish_failures: 0,
            deliveries_drained: 0,
        };
        world.tb.run(10_000, SOAK_SLICE_MS);
        world
    }

    /// Advances the world by `segment_ms` of continuous traffic, then
    /// drains the delivery tapes (streaming: the harness never holds
    /// more than one segment of deliveries).
    pub fn run_segment(&mut self, segment_ms: u64) {
        let end = self.tb.net.now() + segment_ms;
        while self.next_publish_ms < end {
            if self.next_publish_ms > self.tb.net.now() {
                let dt = self.next_publish_ms - self.tb.net.now();
                self.tb.run(dt, SOAK_SLICE_MS);
            }
            let mut candidates: Vec<usize> = (0..self.tb.peer_count())
                .filter(|&i| self.tb.is_live(i) && self.tb.is_member(i))
                .collect();
            candidates.shuffle(&mut self.rng);
            for p in candidates.into_iter().take(self.publishers) {
                self.published += 1;
                let payload = format!("soak-{}-{p}", self.next_publish_ms).into_bytes();
                if self.tb.publish(p, &payload).is_err() {
                    self.publish_failures += 1;
                }
            }
            self.next_publish_ms += self.publish_interval_ms;
        }
        if end > self.tb.net.now() {
            let dt = end - self.tb.net.now();
            self.tb.run(dt, SOAK_SLICE_MS);
        }
        // drain the per-node delivery tapes so day-long runs hold
        // O(segment) harness state; part of run_segment so checkpoint
        // replays drain at the same boundaries
        for i in 0..self.tb.peer_count() {
            let drained = self
                .tb
                .net
                .node_mut(NodeId(i))
                .relay_mut()
                .gossipsub_mut()
                .take_delivered()
                .len();
            self.deliveries_drained += drained as u64;
        }
    }

    /// Measures the current world into a [`SoakDelta`], relative to the
    /// counters captured at the previous boundary.
    fn measure(&self, segment: u64, prev: &SoakCounters, checkpoint_verified: bool) -> SoakDelta {
        let mut delta = SoakDelta {
            segment,
            sim_ms: self.tb.net.now(),
            published: self.published - prev.published,
            publish_failures: self.publish_failures - prev.publish_failures,
            deliveries: self.deliveries_drained - prev.deliveries,
            events: self.tb.net.events_dispatched() - prev.events,
            nullifier_map_max_bytes: 0,
            verdict_cache_max: 0,
            mcache_max: 0,
            own_published_max: 0,
            seen_max: 0,
            score_table_max: 0,
            score_min: 0.0,
            score_max: 0.0,
            checkpoint_verified,
        };
        for i in 0..self.tb.peer_count() {
            if !self.tb.is_live(i) {
                continue;
            }
            let node = self.tb.net.node(NodeId(i));
            let v = node.validator();
            delta.nullifier_map_max_bytes = delta
                .nullifier_map_max_bytes
                .max(v.nullifier_map_bytes() as u64);
            delta.verdict_cache_max = delta
                .verdict_cache_max
                .max(v.verdict_cache_len().unwrap_or(0) as u64);
            let gs = node.relay().gossipsub();
            delta.mcache_max = delta.mcache_max.max(gs.mcache_len() as u64);
            delta.own_published_max = delta.own_published_max.max(gs.own_published_len() as u64);
            delta.seen_max = delta.seen_max.max(gs.seen_len() as u64);
            let score = gs.peer_score();
            delta.score_table_max = delta.score_table_max.max(score.tracked_len() as u64);
            for peer in score.tracked_peers() {
                let s = score.score(peer);
                delta.score_min = delta.score_min.min(s);
                delta.score_max = delta.score_max.max(s);
            }
        }
        delta
    }

    /// A deterministic digest of everything the soak holds bounded plus
    /// the global progress counters. Two worlds that evolved through
    /// the same inputs produce byte-identical fingerprints — the
    /// checkpoint/restore contract is `fingerprint(live) ==
    /// fingerprint(restored)` after replaying the same segment.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        let metrics = self.tb.net.metrics();
        let _ = write!(
            out,
            "now={} events={} pending={} published={} failures={} drained={} \
             sent={} delivered={} bytes={} height={} chain_events={}",
            self.tb.net.now(),
            self.tb.net.events_dispatched(),
            self.tb.net.pending_events(),
            self.published,
            self.publish_failures,
            self.deliveries_drained,
            metrics.counter("messages_sent"),
            metrics.counter("messages_delivered"),
            metrics.counter("bytes_sent"),
            self.tb.chain.height(),
            self.tb.chain.events_since(0).0.len(),
        );
        for i in 0..self.tb.peer_count() {
            if !self.tb.is_live(i) {
                let _ = write!(out, "\n{i}: down");
                continue;
            }
            let node = self.tb.net.node(NodeId(i));
            let v = node.validator();
            let s = v.stats();
            let gs = node.relay().gossipsub();
            let _ = write!(
                out,
                "\n{i}: valid={} dup={} oow={} invalid={} spam={} malformed={} \
                 nmap={} cache={} mcache={} own={} seen={} scores={} mesh={}",
                s.valid,
                s.duplicates,
                s.epoch_out_of_window,
                s.invalid_proof,
                s.spam_detected,
                s.malformed,
                v.nullifier_map_bytes(),
                v.verdict_cache_len().unwrap_or(0),
                gs.mcache_len(),
                gs.own_published_len(),
                gs.seen_len(),
                gs.peer_score().tracked_len(),
                self.tb.mesh_size(i),
            );
        }
        out
    }

    /// Read access to the underlying testbed (assertions in tests).
    pub fn testbed(&self) -> &Testbed {
        &self.tb
    }
}

/// Snapshot of the cumulative counters at a segment boundary.
#[derive(Clone, Copy, Default)]
struct SoakCounters {
    published: u64,
    publish_failures: u64,
    deliveries: u64,
    events: u64,
}

impl SoakCounters {
    fn capture(world: &SoakWorld) -> SoakCounters {
        SoakCounters {
            published: world.published,
            publish_failures: world.publish_failures,
            deliveries: world.deliveries_drained,
            events: world.tb.net.events_dispatched(),
        }
    }
}

/// RNG domain tag for the soak traffic stream (distinct from the
/// testbed's and the scenario engine's streams).
const SOAK_RNG_TAG: u64 = 0x50a6_0a6b_ed00_0001;

/// Runs a soak to completion with default bounds, streaming each delta
/// to `on_delta`. Violated bounds and failed checkpoint replays are
/// collected into the outcome, not panicked on — callers decide
/// (tests assert `clean()`, `simctl soak` exits nonzero).
pub fn run_soak_with(config: &SoakConfig, mut on_delta: impl FnMut(&SoakDelta)) -> SoakOutcome {
    run_soak_bounded(config, &SoakBounds::default(), &mut on_delta)
}

/// [`run_soak_with`] with explicit bounds.
pub fn run_soak_bounded(
    config: &SoakConfig,
    bounds: &SoakBounds,
    on_delta: &mut dyn FnMut(&SoakDelta),
) -> SoakOutcome {
    let mut world = SoakWorld::new(config);
    let mut violations = Vec::new();
    let mut checkpoints_verified = 0u64;
    let segments = config.segments();
    for segment in 0..segments {
        let prev = SoakCounters::capture(&world);
        // checkpoint: deep-clone the world, advance the live copy, then
        // replay the same segment from the restored clone — the two
        // must land on byte-identical fingerprints
        let checkpoint = (config.checkpoint_every > 0 && segment % config.checkpoint_every == 0)
            .then(|| world.clone());
        world.run_segment(config.segment_ms);
        let mut verified = false;
        if let Some(mut restored) = checkpoint {
            restored.run_segment(config.segment_ms);
            let live = world.fingerprint();
            let replayed = restored.fingerprint();
            if live == replayed {
                checkpoints_verified += 1;
                verified = true;
            } else {
                violations.push(format!(
                    "segment {segment}: restored checkpoint diverged from live run"
                ));
            }
        }
        let delta = world.measure(segment, &prev, verified);
        violations.extend(delta.check(bounds));
        on_delta(&delta);
    }
    SoakOutcome {
        sim_ms: world.tb.net.now(),
        segments,
        published: world.published,
        deliveries: world.deliveries_drained,
        checkpoints_verified,
        violations,
        final_fingerprint: world.fingerprint(),
    }
}

/// [`run_soak_with`] without an observer.
pub fn run_soak(config: &SoakConfig) -> SoakOutcome {
    run_soak_with(config, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SoakConfig {
        SoakConfig {
            nodes: 6,
            seed: 7,
            total_ms: 180_000,
            segment_ms: 60_000,
            checkpoint_every: 1,
            publish_interval_ms: 20_000,
            ..SoakConfig::default()
        }
    }

    /// `quick` without checkpoint replay (half the work) for tests that
    /// don't exercise restore.
    fn quick_unchecked() -> SoakConfig {
        SoakConfig {
            checkpoint_every: 0,
            ..quick()
        }
    }

    #[test]
    fn short_soak_is_clean_and_verifies_every_checkpoint() {
        let mut deltas = Vec::new();
        let outcome = run_soak_with(&quick(), |d| deltas.push(*d));
        assert!(outcome.clean(), "violations: {:?}", outcome.violations);
        assert_eq!(outcome.segments, 3);
        assert_eq!(outcome.checkpoints_verified, 3);
        assert_eq!(deltas.len(), 3);
        assert!(outcome.published > 0);
        assert!(outcome.deliveries > 0, "traffic must actually deliver");
        assert!(deltas.iter().all(|d| d.checkpoint_verified));
    }

    #[test]
    fn soak_runs_are_deterministic() {
        let a = run_soak(&quick_unchecked());
        let b = run_soak(&quick_unchecked());
        assert_eq!(a.final_fingerprint, b.final_fingerprint);
        assert_eq!(a.published, b.published);
        let different = SoakConfig {
            seed: 8,
            ..quick_unchecked()
        };
        let c = run_soak(&different);
        assert_ne!(a.final_fingerprint, c.final_fingerprint);
    }

    #[test]
    fn delta_json_lines_are_stable_and_parse_shaped() {
        let mut lines = Vec::new();
        run_soak_with(&quick_unchecked(), |d| lines.push(d.to_json_line()));
        for line in &lines {
            assert!(line.starts_with("{\"segment\":"));
            assert!(line.ends_with('}'));
            assert!(line.contains("\"nullifier_map_max_bytes\":"));
        }
    }

    #[test]
    fn bounds_check_reports_violations() {
        let tight = SoakBounds {
            seen: 1, // any delivered traffic trips this immediately
            ..SoakBounds::default()
        };
        let outcome = run_soak_bounded(&quick_unchecked(), &tight, &mut |_| {});
        assert!(!outcome.clean());
        assert!(outcome.violations.iter().any(|v| v.contains("seen")));
    }
}
