//! The built-in scenario library.
//!
//! Thirteen canonical workloads, each parameterized by network size and
//! seed so the same scenario runs at 8 peers in a unit test and at
//! 1000–10000 peers under `simctl`. Attack intensity and traffic volume
//! scale with the population. See `docs/SCENARIOS.md` for what each
//! scenario stresses and which paper claim it exercises.

use crate::spec::{
    ChurnAction, ChurnEvent, ContractOutageEvent, DegradationEvent, DeviceClassSpec, EclipseSpec,
    PartitionEvent, RestartEvent, ScenarioSpec, SpamSpec, SurveillanceSpec, TrafficSpec,
};
use waku_rln_relay::{EpochScheme, PipelineConfig};

/// Names of all built-in scenarios, in canonical order.
pub const BUILTIN_NAMES: [&str; 13] = [
    "baseline",
    "spam_burst",
    "targeted_eclipse",
    "heterogeneous_devices",
    "mass_churn",
    "epoch_boundary_race",
    "high_throughput",
    "massive_population",
    "metropolis",
    "passive_surveillance",
    "deanonymization_sweep",
    "partition_heal",
    "fault_storm",
];

/// Builds a built-in scenario by name, sized to `nodes` honest peers.
/// Returns `None` for an unknown name (see [`BUILTIN_NAMES`]).
pub fn builtin(name: &str, nodes: usize, seed: u64) -> Option<ScenarioSpec> {
    let spec = match name {
        "baseline" => baseline(nodes, seed),
        "spam_burst" => spam_burst(nodes, seed),
        "targeted_eclipse" => targeted_eclipse(nodes, seed),
        "heterogeneous_devices" => heterogeneous_devices(nodes, seed),
        "mass_churn" => mass_churn(nodes, seed),
        "epoch_boundary_race" => epoch_boundary_race(nodes, seed),
        "high_throughput" => high_throughput(nodes, seed),
        "massive_population" => massive_population(nodes, seed),
        "metropolis" => metropolis(nodes, seed),
        "passive_surveillance" => passive_surveillance(nodes, seed),
        "deanonymization_sweep" => deanonymization_sweep(nodes, seed),
        "partition_heal" => partition_heal(nodes, seed),
        "fault_storm" => fault_storm(nodes, seed),
        _ => return None,
    };
    Some(spec)
}

/// Honest relays only: the paper's steady-state. Measures delivery rate,
/// propagation percentiles and per-node bandwidth with no adversary.
pub fn baseline(nodes: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec::baseline(nodes, seed)
}

/// The double-signaling flood (§III): ~1% of members spam `burst`
/// distinct messages inside one epoch. The claim under test: spam is
/// contained (≤ 1 majority delivery per spammer) and every spammer is
/// slashed, while honest traffic keeps flowing.
pub fn spam_burst(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "spam_burst".to_string();
    spec.spam = Some(SpamSpec {
        spammers: (nodes / 100).max(1),
        burst: 6,
        at_ms: 15_000,
    });
    // spam lands between honest rounds so containment and delivery are
    // measured on the same run
    spec.drain_ms = 60_000;
    spec
}

/// The targeted censorship eclipse: peer 0 bootstraps exclusively to
/// censoring adversaries who answer control traffic but drop all
/// forwards. The claim under test: gossip delivers network-wide while
/// the victim starves — quantifying what a bootstrap-level eclipse buys
/// an adversary (cf. the gossip-privacy literature's adversary models).
pub fn targeted_eclipse(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "targeted_eclipse".to_string();
    spec.eclipse = Some(EclipseSpec {
        attackers: 8.min(nodes / 2).max(1),
    });
    spec
}

/// Heterogeneous devices (§I "resource-restricted devices"): a mix of
/// iot-sensor / phone / laptop / server validation profiles. The claim
/// under test: RLN's validation cost stays feasible for weak devices
/// (cpu per node scales with the profile, delivery unaffected).
pub fn heterogeneous_devices(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "heterogeneous_devices".to_string();
    spec.devices = vec![
        DeviceClassSpec {
            name: "iot-sensor",
            verify_proof_micros: 300_000,
            share: 1,
        },
        DeviceClassSpec {
            name: "phone",
            verify_proof_micros: 30_000,
            share: 4,
        },
        DeviceClassSpec {
            name: "laptop",
            verify_proof_micros: 5_000,
            share: 4,
        },
        DeviceClassSpec {
            name: "server",
            verify_proof_micros: 1_000,
            share: 1,
        },
    ];
    spec
}

/// Mass churn: 10% of the network crashes mid-run, more peers join, and
/// another 10% crashes — with honest rounds before, between and after.
/// The claim under test: meshes repair around the holes (liveness
/// sweep, then re-graft) and late joiners bootstrap via §III group
/// sync, keeping delivery high for the survivors.
pub fn mass_churn(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "mass_churn".to_string();
    let tenth = (nodes / 10).max(1);
    spec.traffic = TrafficSpec {
        publishers: (nodes / 8).clamp(2, 24),
        rounds: 4,
        start_ms: 10_000,
        interval_ms: 45_000,
    };
    spec.churn = vec![
        ChurnEvent {
            at_ms: 20_000,
            action: ChurnAction::Crash { peers: tenth },
        },
        ChurnEvent {
            at_ms: 60_000,
            action: ChurnAction::Join {
                peers: (tenth / 2).max(1),
            },
        },
        ChurnEvent {
            at_ms: 110_000,
            action: ChurnAction::Crash { peers: tenth },
        },
    ];
    spec.drain_ms = 60_000;
    spec
}

/// The epoch-boundary race: high-latency links (up to the full delay
/// bound `D`) with publish rounds timed moments before each epoch
/// boundary, so messages are in flight when their epoch expires. The
/// claim under test: the `Thr = ⌈D/T⌉` window (§III) accepts honest
/// cross-boundary traffic — deliveries stay high and almost nothing is
/// dropped as out-of-window.
pub fn epoch_boundary_race(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "epoch_boundary_race".to_string();
    let epoch = EpochScheme::new(10, 20_000); // Thr = 2
    spec.epoch = epoch;
    spec.latency = crate::spec::LatencySpec::Uniform {
        min_ms: 200,
        max_ms: 4_000,
    };
    let period = epoch.epoch_secs * 1000;
    // rounds fire 300 ms before successive epoch boundaries; the mesh has
    // had two epochs to form
    spec.traffic = TrafficSpec {
        publishers: (nodes / 8).clamp(2, 24),
        rounds: 4,
        start_ms: 3 * period - 300,
        interval_ms: period,
    };
    spec.drain_ms = 45_000;
    spec
}

/// Heavy traffic through the batched validation pipeline: half the
/// honest population publishes every round while a spam burst lands
/// mid-run, so every relay's validator drains real batches. The claim
/// under test: batched validation (statement dedup + verdict caching
/// before zkSNARK work, bounded flush staleness) changes **no**
/// validation outcome — delivery, containment and slashing match the
/// serial validator — while decision latency stays bounded by
/// `flush_interval_ms`. The wall-clock amortization itself is measured
/// off-simulation by `bench_pipeline` (`BENCH_pipeline.json`).
pub fn high_throughput(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "high_throughput".to_string();
    spec.traffic = TrafficSpec {
        publishers: (nodes / 2).clamp(2, 400),
        rounds: 3,
        start_ms: 10_000,
        interval_ms: 12_000,
    };
    spec.spam = Some(SpamSpec {
        spammers: (nodes / 50).max(1),
        burst: 4,
        at_ms: 16_000,
    });
    spec.pipeline = Some(PipelineConfig::default());
    spec.drain_ms = 60_000;
    spec
}

/// The scale workload: an order of magnitude beyond the other built-ins
/// (run it at 10,000+ nodes: `simctl run massive_population --nodes
/// 10000`). Both gossip-privacy papers in `PAPERS.md` state their
/// guarantees as asymptotics in network size, so empirical
/// delivery/containment numbers only start meaning something here.
/// Traffic is sized per capita (publisher pool grows with the
/// population, per-node load stays flat) and the scheduler runs with
/// auto-detected worker threads — reports stay byte-identical for any
/// thread count, so scale costs cores, not reproducibility.
pub fn massive_population(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "massive_population".to_string();
    spec.traffic = TrafficSpec {
        publishers: (nodes / 200).clamp(2, 100),
        rounds: 2,
        start_ms: 10_000,
        interval_ms: 12_000,
    };
    spec.threads = 0; // auto-detect: the 10k runs want every core
    spec.drain_ms = 30_000;
    spec
}

/// The 100k-node workload — an order of magnitude past
/// [`massive_population`], sized to finish on **one core** (run it at
/// 100,000 nodes: `simctl run metropolis --nodes 100000`). Feasible
/// because membership sync hashes each registration burst once at the
/// canonical shared tree (peers apply `O(depth)` delta lookups, no
/// local hashing) and the scheduler's timing wheel pops event batches
/// in `O(1)` instead of `O(log n)` heap churn. The publisher pool is
/// kept small and absolute (not per capita): the point is group-sync
/// and event-floor scalability at census scale, not traffic volume —
/// per-node load must stay far below saturation or the run measures
/// queueing, not the protocol.
pub fn metropolis(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "metropolis".to_string();
    spec.traffic = TrafficSpec {
        publishers: (nodes / 10_000).clamp(2, 12),
        rounds: 2,
        start_ms: 10_000,
        interval_ms: 12_000,
    };
    spec.threads = 1; // single-core by design: the target the docs quote
    spec.drain_ms = 8_000;
    spec
}

/// Passive surveillance (the gossip-privacy adversary model of both
/// PAPERS.md privacy works): 10% of the honest relays are colluding
/// observers recording `(message_id, arrival_ms, previous_hop)` on
/// every forward; the rest publish as usual. The claim under test: with
/// no countermeasure, first-spy / earliest-arrival attribution names
/// the true publisher for a substantial fraction of messages — WAKU's
/// PII-free envelope alone does **not** hide the source from a
/// network-level adversary (the `anonymity_*` report section
/// quantifies by how much).
pub fn passive_surveillance(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "passive_surveillance".to_string();
    spec.surveillance = Some(SurveillanceSpec {
        observer_fraction: 0.10,
    });
    // extra rounds stabilize the precision estimate
    spec.traffic.rounds = 4;
    spec
}

/// The deanonymization trade-off workload: a stronger colluding
/// adversary (25% of honest relays) against publishers whose first-hop
/// forward delay is the `publish_jitter_ms` countermeasure knob
/// (default off — sweep it, or the adversary fraction, from `simctl`
/// via `--publish-jitter` / `--adversary-fraction`). The claim under
/// test, from the related gossip-privacy analyses: attribution
/// precision falls as forward-delay jitter rises, while delivery stays
/// intact — privacy is bought with propagation latency, not loss.
pub fn deanonymization_sweep(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "deanonymization_sweep".to_string();
    spec.surveillance = Some(SurveillanceSpec {
        observer_fraction: 0.25,
    });
    spec.traffic.rounds = 4;
    spec
}

/// The partition-and-heal drill: 30% of the live network splits away
/// for 22 seconds — long enough to starve deliveries across the cut,
/// short enough that the 30-second gossipsub liveness sweep never prunes
/// the silent mesh links — with traffic rounds before, during and after.
/// The claim under test: delivery dips below 1.0 while the partition
/// holds and recovers to ≥ 0.99 after the heal, with the time-to-remesh
/// and the cross-cut message loss reported deterministically
/// (`resilience_*` section).
pub fn partition_heal(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "partition_heal".to_string();
    spec.traffic = TrafficSpec {
        publishers: (nodes / 8).clamp(2, 24),
        rounds: 4,
        start_ms: 10_000,
        interval_ms: 15_000,
    };
    // rounds at 10/25/40/55 s; the partition covers the 25 s and 40 s
    // rounds and heals at 42 s, so the 55 s round measures recovery
    spec.faults.partitions = vec![PartitionEvent {
        at_ms: 20_000,
        heal_after_ms: 22_000,
        minority_fraction: 0.3,
    }];
    spec.drain_ms = 45_000;
    spec
}

/// The combined fault storm: a warm restart wave (5% of the network down
/// for 10 s), a link-degradation burst, a registration-contract outage,
/// and a cold restart whose recovery lands **inside** the outage — so
/// the Merkle resync path has to retry until the contract returns. The
/// claim under test: every recovery path (re-subscribe/re-graft, warm
/// delta replay, cold genesis rebuild, bounded resync retry) composes
/// under overlapping faults, and the run stays byte-identical at any
/// thread count.
pub fn fault_storm(nodes: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(nodes, seed);
    spec.name = "fault_storm".to_string();
    spec.traffic = TrafficSpec {
        publishers: (nodes / 8).clamp(2, 24),
        rounds: 5,
        start_ms: 10_000,
        interval_ms: 20_000,
    };
    spec.faults.restarts = vec![
        RestartEvent {
            at_ms: 25_000,
            peers: (nodes / 20).max(1),
            downtime_ms: 10_000,
            warm: true,
        },
        // restores at 65 s, mid-outage: resync must retry until 85 s
        RestartEvent {
            at_ms: 60_000,
            peers: 1,
            downtime_ms: 5_000,
            warm: false,
        },
    ];
    spec.faults.degradations = vec![DegradationEvent {
        at_ms: 45_000,
        duration_ms: 10_000,
        extra_loss: 0.10,
        extra_latency_ms: 50,
    }];
    spec.faults.contract_outages = vec![ContractOutageEvent {
        at_ms: 55_000,
        duration_ms: 30_000,
    }];
    spec.drain_ms = 60_000;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_resolves_and_validates() {
        for name in BUILTIN_NAMES {
            for nodes in [8, 100, 1000] {
                let spec = builtin(name, nodes, 1).expect("known name");
                assert_eq!(spec.name, name);
                spec.validate();
            }
        }
    }

    #[test]
    fn massive_population_scales_publishers_per_capita() {
        assert_eq!(massive_population(10_000, 1).traffic.publishers, 50);
        assert_eq!(massive_population(100, 1).traffic.publishers, 2);
        assert_eq!(massive_population(10_000, 1).threads, 0);
    }

    #[test]
    fn metropolis_is_single_core_with_a_bounded_publisher_pool() {
        let spec = metropolis(100_000, 1);
        assert_eq!(spec.threads, 1, "metropolis quotes a single-core target");
        assert_eq!(spec.traffic.publishers, 10);
        // publisher pool is absolute, not per capita: load per node must
        // not grow with the census
        assert_eq!(metropolis(1_000_000, 1).traffic.publishers, 12);
        assert_eq!(metropolis(1_000, 1).traffic.publishers, 2);
        // a 100k census auto-sizes the tree within the depth cap
        assert_eq!(spec.effective_tree_depth(), 18);
        spec.validate();
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(builtin("not-a-scenario", 10, 1).is_none());
    }

    #[test]
    fn surveillance_builtins_field_observers() {
        let spec = passive_surveillance(100, 1);
        assert_eq!(spec.observer_count(), 10);
        assert_eq!(spec.publish_jitter_ms, 0);
        let sweep = deanonymization_sweep(100, 1);
        assert_eq!(sweep.observer_count(), 25);
        assert_eq!(sweep.traffic.rounds, 4);
    }

    #[test]
    fn spam_burst_scales_attackers_with_population() {
        assert_eq!(spam_burst(100, 1).spam.unwrap().spammers, 1);
        assert_eq!(spam_burst(1000, 1).spam.unwrap().spammers, 10);
    }

    #[test]
    fn partition_heal_beats_the_liveness_sweep() {
        // the partition must heal before peer_timeout_ms (30 s) of mesh
        // silence, or the sweep prunes the cut links and the scenario
        // would measure mesh death instead of recovery
        let spec = partition_heal(200, 1);
        let p = spec.faults.partitions[0];
        assert!(p.heal_after_ms < 30_000);
        // at least one traffic round lands inside the window and at
        // least one after the heal
        let during = (0..spec.traffic.rounds)
            .map(|r| spec.traffic.start_ms + spec.traffic.interval_ms * r as u64)
            .filter(|t| *t >= p.at_ms && *t < p.at_ms + p.heal_after_ms)
            .count();
        let after = (0..spec.traffic.rounds)
            .map(|r| spec.traffic.start_ms + spec.traffic.interval_ms * r as u64)
            .filter(|t| *t >= spec.faults.last_end_ms())
            .count();
        assert!(during >= 1 && after >= 1);
    }

    #[test]
    fn fault_storm_cold_restore_lands_inside_the_outage() {
        let spec = fault_storm(200, 1);
        let cold = spec.faults.restarts[1];
        assert!(!cold.warm);
        let outage = spec.faults.contract_outages[0];
        let restore = cold.at_ms + cold.downtime_ms;
        assert!(restore >= outage.at_ms && restore < outage.at_ms + outage.duration_ms);
        // scaled restart wave: 10 peers at 200 nodes, never zero
        assert_eq!(spec.faults.restarts[0].peers, 10);
        assert_eq!(fault_storm(8, 1).faults.restarts[0].peers, 1);
    }

    #[test]
    fn boundary_race_rounds_straddle_epochs() {
        let spec = epoch_boundary_race(50, 1);
        let period = spec.epoch.epoch_secs * 1000;
        assert_eq!(spec.traffic.interval_ms, period);
        assert_eq!((spec.traffic.start_ms + 300) % period, 0);
    }
}
