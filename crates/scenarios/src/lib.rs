//! # wakurln-scenarios
//!
//! The declarative scenario engine: thousand-node adversarial
//! simulations of WAKU-RLN-RELAY (*Privacy-Preserving Spam-Protected
//! Gossip-Based Routing*, ICDCS 2022), described as data and replayed
//! deterministically from a seed.
//!
//! A [`ScenarioSpec`] composes, on top of the full testbed
//! ([`waku_rln_relay::Testbed`] — peers, gossip meshes, simulated chain):
//!
//! * a **topology** and **latency/loss model** (`wakurln_netsim`),
//! * a **node mix** — honest relays, double-signaling spammers (§III),
//!   censorship-eclipse adversaries, heterogeneous device profiles (§I),
//! * a **churn schedule** — crashes and §III group-sync joins at
//!   simulated timestamps,
//! * a **fault plan** — timed crash→restart waves (warm or cold
//!   rejoin), network partitions with heal, link-degradation bursts and
//!   registration-contract outages, distilled into the report's
//!   `resilience_*` section,
//! * **epoch/RLN parameters** — `T`, `D`, and therefore `Thr = ⌈D/T⌉`,
//! * an honest **traffic schedule**.
//!
//! [`run_scenario`] executes the spec and emits a [`ScenarioReport`]:
//! delivery rate, propagation percentiles, spam containment and
//! slashing, bandwidth and CPU per node, nullifier-map growth — as
//! schema-stable JSON (byte-identical for the same spec + seed).
//!
//! The [`library`] module ships the canonical workloads
//! ([`BUILTIN_NAMES`]), including the source-anonymity adversary
//! scenarios (`passive_surveillance`, `deanonymization_sweep`) whose
//! colluding observer taps feed the [`attribution`] estimators; the
//! `simctl` binary (in `wakurln-bench`) runs them from the command
//! line, including parameter sweeps over network size, seed and
//! adversary fraction. See `docs/SCENARIOS.md` for the full schema
//! reference.
//!
//! # Example
//!
//! ```
//! use wakurln_scenarios::{library, run_scenario};
//!
//! let mut spec = library::spam_burst(12, 42);
//! spec.traffic.publishers = 2; // keep the doctest quick
//! let report = run_scenario(&spec);
//! assert!(report.spammers_slashed >= 1);
//! assert!(report.delivery_rate > 0.8);
//! println!("{}", report.to_json());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attribution;
pub mod engine;
pub mod library;
pub mod report;
pub mod soak;
pub mod spec;

pub use attribution::{attribute, MessageAttribution, PooledObservation};
pub use engine::{run_scenario, run_scenario_detailed, run_scenario_with_progress, Progress};
pub use library::{builtin, BUILTIN_NAMES};
pub use report::ScenarioReport;
pub use soak::{run_soak, run_soak_with, SoakBounds, SoakConfig, SoakDelta, SoakOutcome};
pub use spec::{
    ChurnAction, ChurnEvent, ContractOutageEvent, DegradationEvent, DeviceClassSpec, EclipseSpec,
    FaultPlan, LatencySpec, PartitionEvent, RestartEvent, ScenarioSpec, SpamSpec, SurveillanceSpec,
    TopologySpec, TrafficSpec,
};
