//! Fixture corpus: every rule must fire on its known-bad snippet at the
//! exact expected lines (`//~ <rule>` trailing comments) and stay silent
//! on the allowed/suppressed variant.

use std::collections::BTreeSet;
use std::path::PathBuf;
use wakurln_lint::config::FileClass;
use wakurln_lint::rules::lint_source;

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {name}: {e}"));
    (name.to_string(), src)
}

/// `//~ <rule>` comments name the rule expected to fire on that line.
fn expectations(src: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(at) = line.find("//~") {
            let rule = line[at + 3..].split_whitespace().next().unwrap_or("");
            assert!(!rule.is_empty(), "empty //~ expectation on line {}", i + 1);
            out.insert((i as u32 + 1, rule.to_string()));
        }
    }
    out
}

fn check_bad(name: &str) {
    let (name, src) = fixture(name);
    let expected = expectations(&src);
    assert!(
        !expected.is_empty(),
        "{name}: bad fixture carries no //~ expectations"
    );
    let findings = lint_source(&name, FileClass::DETERMINISTIC_LIBRARY, &src);
    let got: BTreeSet<(u32, String)> = findings
        .iter()
        .filter(|f| f.allowed.is_none())
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    assert_eq!(
        got, expected,
        "{name}: findings (left) do not match //~ expectations (right)"
    );
}

fn check_allowed(name: &str) {
    let (name, src) = fixture(name);
    let findings = lint_source(&name, FileClass::DETERMINISTIC_LIBRARY, &src);
    let unannotated: Vec<_> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    assert!(
        unannotated.is_empty(),
        "{name}: expected a clean fixture, got findings: {unannotated:?}"
    );
    let markers = src.matches("lint:allow(").count();
    let suppressed = findings.iter().filter(|f| f.allowed.is_some()).count();
    assert_eq!(
        suppressed, markers,
        "{name}: every lint:allow marker must suppress exactly one finding \
         (markers: {markers}, suppressed: {suppressed})"
    );
}

#[test]
fn map_iteration_fires_and_suppresses() {
    check_bad("map_iteration_bad.rs");
    check_allowed("map_iteration_allowed.rs");
}

#[test]
fn host_time_fires_and_suppresses() {
    check_bad("host_time_bad.rs");
    check_allowed("host_time_allowed.rs");
}

#[test]
fn rng_in_branch_fires_and_suppresses() {
    check_bad("rng_branch_bad.rs");
    check_allowed("rng_branch_allowed.rs");
}

#[test]
fn unsafe_audit_fires_and_safety_comments_suppress() {
    check_bad("unsafe_bad.rs");
    check_allowed("unsafe_allowed.rs");
}

#[test]
fn panic_path_fires_and_suppresses() {
    check_bad("panic_path_bad.rs");
    check_allowed("panic_path_allowed.rs");
}

#[test]
fn malformed_markers_are_findings() {
    check_bad("bad_marker.rs");
}

#[test]
fn host_side_class_disables_determinism_rules() {
    let (_, src) = fixture("host_time_bad.rs");
    let findings = lint_source("host_time_bad.rs", FileClass::HOST_SIDE, &src);
    assert!(
        findings.iter().all(|f| f.rule != "host-time"),
        "host-side files may read the wall clock"
    );
}

#[test]
fn non_library_class_disables_panic_path() {
    let (_, src) = fixture("panic_path_bad.rs");
    let findings = lint_source("panic_path_bad.rs", FileClass::HOST_SIDE, &src);
    assert!(
        findings.iter().all(|f| f.rule != "panic-path"),
        "host-side files may unwrap"
    );
}
