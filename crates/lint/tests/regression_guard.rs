//! Regression guard: the workspace must stay lint-clean.
//!
//! Two assertions hold the line: a fresh in-process run over the live
//! sources must produce zero unannotated findings, and the committed
//! `lint-report.json` snapshot must agree — so a PR that introduces a
//! violation *or* quietly regenerates the report with findings in it
//! fails `cargo test` even before the CI lint job runs.

use wakurln_lint::report::committed_findings_count;
use wakurln_lint::{lint_workspace, workspace_root};

#[test]
fn workspace_has_zero_unannotated_findings() {
    let root = workspace_root();
    let report = lint_workspace(&root).expect("walk workspace");
    let unannotated: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        unannotated.is_empty(),
        "workspace lint regressions (fix or add a reasoned lint:allow):\n{}",
        unannotated.join("\n")
    );
}

#[test]
fn committed_report_is_clean_and_current_schema() {
    let root = workspace_root();
    let json = std::fs::read_to_string(root.join("lint-report.json"))
        .expect("lint-report.json must be committed at the workspace root");
    let count = committed_findings_count(&json)
        .unwrap_or_else(|e| panic!("committed lint-report.json is invalid: {e}"));
    assert_eq!(
        count, 0,
        "committed lint-report.json records {count} unannotated finding(s); \
         regenerate it with `cargo run -p wakurln-lint -- --json lint-report.json` \
         after fixing or annotating them"
    );
}

#[test]
fn suppression_inventory_matches_committed_report() {
    // The committed snapshot must reflect the live tree: same number of
    // reasoned suppressions, so stale reports are caught when markers
    // are added or removed without regenerating.
    let root = workspace_root();
    let report = lint_workspace(&root).expect("walk workspace");
    let json = std::fs::read_to_string(root.join("lint-report.json")).expect("committed report");
    let needle = "\"allowed_count\":";
    let at = json.find(needle).expect("report carries allowed_count");
    let rest = json[at + needle.len()..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    let committed: usize = digits.parse().expect("allowed_count is an integer");
    assert_eq!(
        committed,
        report.allowed.len(),
        "committed lint-report.json is stale: regenerate it with \
         `cargo run -p wakurln-lint -- --json lint-report.json`"
    );
}
