// Fixture: an RNG draw whose execution depends on unordered collection
// state must fire — the stream position becomes content-dependent.
use std::collections::HashSet;

pub struct World {
    inflight: HashSet<u64>,
}

pub fn step(world: &mut World, rng: &mut SimRng, id: u64) -> u64 {
    if world.inflight.contains(&id) {
        return rng.gen_range(0, 10); //~ rng-in-branch
    }
    while world.inflight.len() > 8 {
        let jitter = rng.gen_bool(0.5); //~ rng-in-branch
        if jitter {
            break;
        }
    }
    match world.inflight.get(&id) {
        Some(_) => rng.next_u64(), //~ rng-in-branch
        None => 0,
    }
}
