// Fixture: malformed or unknown markers are findings themselves.

pub fn missing_reason(v: &Vec<u64>) -> u64 {
    // lint:allow(panic-path) //~ bad-marker
    v.first().copied().unwrap_or(0)
}

pub fn unknown_rule(v: &Vec<u64>) -> u64 {
    // lint:allow(made-up-rule, reason = "nope") //~ bad-marker
    v.first().copied().unwrap_or(0)
}

pub fn empty_reason(v: &Vec<u64>) -> u64 {
    // lint:allow(panic-path, reason = "  ") //~ bad-marker
    v.first().copied().unwrap_or(0)
}
