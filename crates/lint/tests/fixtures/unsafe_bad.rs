// Fixture: `unsafe` without an adjacent SAFETY comment must fire.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() } //~ unsafe-audit
}

pub struct Raw(*const u8);

unsafe impl Send for Raw {} //~ unsafe-audit
