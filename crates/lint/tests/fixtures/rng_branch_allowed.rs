// Fixture: the same shape, justified — e.g. the draw happens on a
// reserved stream consumed in canonical merge order.
use std::collections::HashSet;

pub struct World {
    inflight: HashSet<u64>,
}

pub fn step(world: &mut World, rng: &mut SimRng, id: u64) -> u64 {
    if world.inflight.contains(&id) {
        // lint:allow(rng-in-branch, reason = "membership test is keyed by the event's own id, not by iteration; draw count is a pure function of the timeline")
        return rng.gen_range(0, 10);
    }
    0
}
