// Fixture: panic-capable constructs on library paths must fire.

pub fn pick(v: &Vec<u64>, opt: Option<u64>) -> u64 {
    let first = v[0]; //~ panic-path
    let head = v.first().unwrap(); //~ panic-path
    let tail = v.last().expect("nonempty"); //~ panic-path
    if *head > *tail {
        panic!("unsorted"); //~ panic-path
    }
    first + opt.unwrap() //~ panic-path
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely: no finding expected here.
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
        let x: Vec<u8> = Vec::new();
        let _ = x;
        let boom = v[0];
        let _ = boom;
    }
}
