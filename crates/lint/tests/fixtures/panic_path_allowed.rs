// Fixture: justified panic sites are suppressed by reasoned markers;
// fixed-size array indexing needs no marker at all.

pub struct Frame {
    words: [u64; 4],
}

pub fn decode(frame: &Frame, v: &Vec<u64>) -> u64 {
    // Compiler-checked: `words` is a fixed-size array, no marker needed.
    let fixed = frame.words[0] + frame.words[3];
    // lint:allow(panic-path, reason = "caller contract: `v` is the non-empty batch the stage just built")
    let head = v.first().unwrap();
    let second = v[1]; // lint:allow(panic-path, reason = "guarded by the arity check in the constructor")
    fixed + head + second
}
