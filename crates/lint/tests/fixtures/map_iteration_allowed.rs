// Fixture: the same iteration patterns, suppressed by reasoned markers.
use std::collections::{HashMap, HashSet};

pub struct State {
    counters: HashMap<u64, u64>,
    seen: HashSet<u64>,
}

impl State {
    pub fn total(&self) -> u64 {
        // lint:allow(map-iteration, reason = "commutative sum — iteration order cannot reach any report byte")
        self.counters.values().sum()
    }

    pub fn prune(&mut self) {
        self.seen.retain(|x| *x > 10); // lint:allow(map-iteration, reason = "pure predicate, retained set is order-independent")
    }
}
