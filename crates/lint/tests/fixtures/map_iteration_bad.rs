// Fixture: HashMap/HashSet iteration in deterministic code must fire.
// Tilde-comments mark the line each finding is expected on.
use std::collections::{HashMap, HashSet};

pub struct State {
    peers: HashMap<u64, u32>,
    seen: HashSet<u64>,
}

impl State {
    pub fn sum(&self) -> u32 {
        let mut total = 0;
        for (_, v) in self.peers.iter() { //~ map-iteration
            total += v;
        }
        total
    }

    pub fn first_key(&self) -> Option<u64> {
        self.peers.keys().next().copied() //~ map-iteration
    }

    pub fn prune(&mut self) {
        self.seen.retain(|x| *x > 10); //~ map-iteration
    }

    pub fn walk(&self) -> u64 {
        let mut acc = 0;
        for id in &self.seen { //~ map-iteration
            acc ^= id;
        }
        acc
    }

    pub fn flush(&mut self) -> Vec<u64> {
        self.seen.drain().collect() //~ map-iteration
    }
}
