// Fixture: host clocks / ambient entropy in deterministic code must fire.

pub fn stamp_ms() -> u128 {
    let t = std::time::Instant::now(); //~ host-time
    t.elapsed().as_millis()
}

pub fn wall() -> std::time::SystemTime { //~ host-time
    std::time::SystemTime::now() //~ host-time
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng(); //~ host-time
    rng.next_u64()
}

pub fn who_am_i() -> String {
    format!("{:?}", std::thread::current().id()) //~ host-time
}
