// Fixture: `unsafe` with an adjacent SAFETY justification is clean.

pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: non-emptiness is asserted on the line above, so the
    // pointer read stays in bounds.
    unsafe { *bytes.as_ptr() }
}

pub struct Raw(*const u8);

// SAFETY: the pointer is only dereferenced behind a mutex held by the
// owning scheduler; see the aliasing argument on SchedulerSlot.
unsafe impl Send for Raw {}

pub fn same_line(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr().add(0) } // SAFETY: offset 0 of a valid slice pointer
}
