// Fixture: a justified host-side measurement, suppressed by markers.

pub struct PhaseTimings {
    /// Milliseconds spent in dispatch, host-side only.
    pub dispatch_ms: u128,
}

pub fn measure<F: FnOnce()>(f: F) -> u128 {
    // lint:allow(host-time, reason = "wall-clock accumulator feeding BENCH_sim.json only; never read by simulation state")
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_millis()
}
