//! Lexer round-trip: token spans must tile every workspace source file
//! (strictly ascending, whitespace-only gaps, byte-exact reassembly),
//! and randomly composed token soup must lex and round-trip too.

use proptest::prelude::*;
use wakurln_lint::config::workspace_sources;
use wakurln_lint::lexer::{check_roundtrip, lex};
use wakurln_lint::workspace_root;

#[test]
fn every_workspace_source_file_roundtrips() {
    let root = workspace_root();
    let files = workspace_sources(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks too small: {} files",
        files.len()
    );
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("read source");
        let tokens = lex(&src).unwrap_or_else(|e| panic!("{rel}: lex error: {e:?}"));
        if let Some(violation) = check_roundtrip(&src, &tokens) {
            panic!("{rel}: round-trip violation: {violation}");
        }
    }
}

/// Fragments that are individually lexable; random concatenations of
/// them (joined by single spaces) must stay lexable and round-trip.
const FRAGMENTS: &[&str] = &[
    "fn",
    "unsafe",
    "ident_1",
    "HashMap",
    "r#async",
    "'a",
    "'static",
    "'x'",
    "'\\n'",
    "b'\\t'",
    "0",
    "42_u64",
    "0xff",
    "1.5",
    "1.0e-3",
    "1..10",
    "x.0",
    "\"str with \\\" escape\"",
    "r#\"raw \" body\"#",
    "b\"bytes\"",
    "// line comment\n",
    "/* block /* nested */ comment */",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "::",
    ".",
    "->",
    "=>",
    "#",
    "!",
    "&&",
    "<<=",
    ";",
    ",",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_token_soup_roundtrips(picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..64)) {
        let mut src = String::new();
        for p in picks {
            src.push_str(FRAGMENTS[p]);
            src.push(' ');
        }
        let tokens = lex(&src).expect("fragment soup must lex");
        prop_assert_eq!(check_roundtrip(&src, &tokens), None);
    }

    #[test]
    fn arbitrary_ascii_never_breaks_span_invariants(bytes in proptest::collection::vec(0x20u8..0x7f, 0..128)) {
        let src = String::from_utf8(bytes).expect("printable ascii");
        // Arbitrary text may fail to lex (unterminated string), but a
        // successful lex must uphold the span invariants.
        if let Ok(tokens) = lex(&src) {
            prop_assert_eq!(check_roundtrip(&src, &tokens), None);
        }
    }
}
