//! CLI entry point: walk the workspace, print diagnostics, optionally
//! emit the JSON report, exit nonzero under `--deny-all` when any
//! unannotated finding exists.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
wakurln-lint — workspace determinism / unsafe / panic-path contract checker

USAGE:
    cargo run -p wakurln-lint -- [OPTIONS]

OPTIONS:
    --deny-all        exit 1 if any unannotated finding exists (CI mode)
    --json <PATH>     write the machine-readable report (use `-` for stdout)
    --root <DIR>      workspace root (default: auto-detected)
    --quiet           suppress per-finding human diagnostics
    --help            print this help
";

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut json_path: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => return usage_error("--json needs a path (or `-`)"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a directory"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.unwrap_or_else(wakurln_lint::workspace_root);
    let report = match wakurln_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wakurln-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if !quiet {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
    }
    let counts = report.rule_counts();
    let fired: Vec<String> = counts
        .iter()
        .filter(|(_, n)| **n > 0)
        .map(|(r, n)| format!("{r}: {n}"))
        .collect();
    println!(
        "wakurln-lint: {} files, {} unannotated finding(s){}, {} allowed suppression(s)",
        report.files_scanned,
        report.findings.len(),
        if fired.is_empty() {
            String::new()
        } else {
            format!(" ({})", fired.join(", "))
        },
        report.allowed.len(),
    );

    if let Some(path) = json_path {
        let json = report.to_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("wakurln-lint: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if deny_all && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("wakurln-lint: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}
